"""Sectorized base-station antenna patterns.

Standard 3GPP parabolic horizontal pattern: attenuation grows quadratically
with the angle off boresight up to a front-to-back limit.  Each cell in a
deployment is one sector; its ``direction`` attribute (degrees clockwise from
north) is part of GenDT's network-context features.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

Array = Union[float, np.ndarray]


@dataclass(frozen=True)
class SectorAntenna:
    """3GPP-style horizontal sector pattern.

    Attributes:
        max_gain_dbi: boresight gain.
        beamwidth_deg: 3 dB horizontal beamwidth (65 deg is typical macro).
        front_to_back_db: maximum attenuation off boresight.
    """

    max_gain_dbi: float = 15.0
    beamwidth_deg: float = 65.0
    front_to_back_db: float = 25.0

    def gain_dbi(self, offset_deg: Array) -> Array:
        """Gain toward a direction ``offset_deg`` away from boresight."""
        offset = wrap_angle_deg(offset_deg)
        attenuation = np.minimum(
            12.0 * (np.abs(offset) / self.beamwidth_deg) ** 2, self.front_to_back_db
        )
        return self.max_gain_dbi - attenuation


@dataclass(frozen=True)
class OmniAntenna:
    """Omnidirectional pattern (small cells)."""

    max_gain_dbi: float = 5.0

    def gain_dbi(self, offset_deg: Array) -> Array:
        offset = np.asarray(offset_deg, dtype=float)
        return np.broadcast_to(np.float64(self.max_gain_dbi), offset.shape).copy() if offset.ndim else self.max_gain_dbi


def wrap_angle_deg(angle: Array) -> Array:
    """Wrap an angle (difference) into [-180, 180)."""
    return (np.asarray(angle, dtype=float) + 180.0) % 360.0 - 180.0
