"""LTE radio KPI definitions and their analytic relationships.

Implements the representative KPI set of paper §2.2 — RSRP, RSRQ, RSSI,
SINR, CQI — together with the relations the paper states:

* ``RSRP(dBm) = RSSI(dBm) - 10*log10(12*N_RB)`` (full-load approximation),
* ``RSRQ(dB)  = 10*log10(N_RB) + RSRP(dBm) - RSSI(dBm)``,

so that, given any two of RSRP/RSRQ/RSSI, the third can be derived.  CQI is
obtained from SINR via the standard 3GPP-flavored threshold table used for
link adaptation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Union

import numpy as np

Array = Union[float, np.ndarray]


class KPI(str, Enum):
    """Radio KPIs GenDT generates (serving cell is the handover use case)."""

    RSRP = "rsrp"
    RSRQ = "rsrq"
    RSSI = "rssi"
    SINR = "sinr"
    CQI = "cqi"
    SERVING_CELL = "serving_cell"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Plausible physical ranges (used for clipping generated output and for
#: property tests).  RSRP: -140 (bad) .. -44 (good) dBm; RSRQ: -19.5 .. -3 dB.
KPI_RANGES: Dict[KPI, tuple] = {
    KPI.RSRP: (-140.0, -44.0),
    KPI.RSRQ: (-19.5, -3.0),
    KPI.RSSI: (-113.0, -10.0),
    KPI.SINR: (-10.0, 30.0),
    KPI.CQI: (1.0, 15.0),
}

#: Default LTE bandwidth configuration: 10 MHz -> 50 resource blocks.
DEFAULT_N_RB = 50


def rsrp_from_rssi(rssi_dbm: Array, n_rb: int = DEFAULT_N_RB) -> Array:
    """RSRP from wideband RSSI under the full-allocation assumption."""
    return np.asarray(rssi_dbm) - 10.0 * np.log10(12.0 * n_rb)


def rssi_from_rsrp(rsrp_dbm: Array, n_rb: int = DEFAULT_N_RB) -> Array:
    """Invert :func:`rsrp_from_rssi`."""
    return np.asarray(rsrp_dbm) + 10.0 * np.log10(12.0 * n_rb)


def rsrq_db(rsrp_dbm: Array, rssi_dbm: Array, n_rb: int = DEFAULT_N_RB) -> Array:
    """RSRQ = N_RB * RSRP / RSSI, expressed in dB."""
    return 10.0 * np.log10(n_rb) + np.asarray(rsrp_dbm) - np.asarray(rssi_dbm)


def rssi_from_rsrp_rsrq(rsrp_dbm: Array, rsrq_db_: Array, n_rb: int = DEFAULT_N_RB) -> Array:
    """Derive RSSI given RSRP and RSRQ (the 'any two give the third' relation)."""
    return 10.0 * np.log10(n_rb) + np.asarray(rsrp_dbm) - np.asarray(rsrq_db_)


# ----------------------------------------------------------------------
# SINR <-> CQI
# ----------------------------------------------------------------------
#: SINR thresholds (dB) at which each CQI index 1..15 becomes usable,
#: following the commonly used link-level mapping for LTE CQI reporting.
CQI_SINR_THRESHOLDS_DB = np.array(
    [-6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7]
)

#: Spectral efficiency (bit/s/Hz) of the MCS selected at each CQI index,
#: from the 3GPP 4-bit CQI table (QPSK 78/1024 ... 64QAM 948/1024).
CQI_SPECTRAL_EFFICIENCY = np.array(
    [0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766,
     1.9141, 2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547]
)


def cqi_from_sinr(sinr_db: Array) -> Array:
    """Map SINR (dB) to the discrete CQI index in {1..15}."""
    sinr = np.atleast_1d(np.asarray(sinr_db, dtype=float))
    cqi = np.searchsorted(CQI_SINR_THRESHOLDS_DB, sinr, side="right")
    cqi = np.clip(cqi, 1, 15).astype(float)
    if np.isscalar(sinr_db) or np.asarray(sinr_db).ndim == 0:
        return float(cqi[0])
    return cqi


def spectral_efficiency_from_cqi(cqi: Array) -> Array:
    """Spectral efficiency (bit/s/Hz) for a CQI index (vectorized)."""
    idx = np.clip(np.asarray(cqi, dtype=int) - 1, 0, 14)
    out = CQI_SPECTRAL_EFFICIENCY[idx]
    if np.asarray(cqi).ndim == 0:
        return float(out)
    return out


# ----------------------------------------------------------------------
# dB helpers
# ----------------------------------------------------------------------
def db_to_linear(db: Array) -> Array:
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear: Array) -> Array:
    return 10.0 * np.log10(np.maximum(np.asarray(linear, dtype=float), 1e-30))


def dbm_to_mw(dbm: Array) -> Array:
    return db_to_linear(dbm)


def mw_to_dbm(mw: Array) -> Array:
    return linear_to_db(mw)


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 7.0) -> float:
    """Thermal noise floor: -174 dBm/Hz + 10log10(BW) + receiver noise figure."""
    return -174.0 + 10.0 * np.log10(bandwidth_hz) + noise_figure_db


@dataclass(frozen=True)
class KpiSpec:
    """Which KPI channels a model generates, in which order."""

    kpis: tuple

    def __init__(self, kpis: Sequence[KPI] = (KPI.RSRP, KPI.RSRQ, KPI.SINR, KPI.CQI)) -> None:
        object.__setattr__(self, "kpis", tuple(KPI(k) for k in kpis))

    @property
    def n_channels(self) -> int:
        return len(self.kpis)

    def index_of(self, kpi: KPI) -> int:
        return self.kpis.index(KPI(kpi))

    def names(self) -> List[str]:
        return [k.value for k in self.kpis]

    def clip(self, values: np.ndarray) -> np.ndarray:
        """Clip a [T, n_channels] array to physical KPI ranges; snap CQI."""
        out = np.array(values, dtype=float, copy=True)
        for idx, kpi in enumerate(self.kpis):
            if kpi in KPI_RANGES:
                lo, hi = KPI_RANGES[kpi]
                out[:, idx] = np.clip(out[:, idx], lo, hi)
            if kpi == KPI.CQI:
                out[:, idx] = np.round(out[:, idx])
        return out
