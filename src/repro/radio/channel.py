"""Link budget: from geometry + propagation to per-cell RSRP and link KPIs.

The :class:`LinkBudget` computes, for a trajectory and a set of candidate
cells, the full [T, N] matrix of per-cell RSRP (pathloss + antenna gain +
correlated shadowing + fast fading), then derives the serving-cell KPI
series: RSSI (sum of all received wideband powers plus noise, weighted by
cell load), RSRQ, SINR and CQI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.coords import LocalFrame
from ..geo.trajectory import Trajectory
from .antenna import wrap_angle_deg
from .cells import Cell, CellDeployment
from .kpis import (
    DEFAULT_N_RB,
    cqi_from_sinr,
    db_to_linear,
    linear_to_db,
    rsrq_db,
    rssi_from_rsrp,
    thermal_noise_dbm,
)
from .propagation import FastFadingModel, PathlossModel, ShadowingModel


@dataclass
class LinkBudgetConfig:
    """Propagation + system configuration for the channel computation."""

    pathloss: PathlossModel = field(default_factory=PathlossModel)
    shadowing: ShadowingModel = field(default_factory=ShadowingModel)
    fading: FastFadingModel = field(default_factory=FastFadingModel)
    n_rb: int = DEFAULT_N_RB
    bandwidth_hz: float = 9e6  # 50 RB * 180 kHz
    noise_figure_db: float = 7.0
    ue_antenna_gain_dbi: float = 0.0
    #: AR(1) coefficient of the slowly-varying per-cell load process.
    load_ar_coeff: float = 0.97
    load_mean: float = 0.45
    load_sigma: float = 0.18


class LinkBudget:
    """Computes per-cell received powers and link KPIs along a trajectory."""

    def __init__(self, deployment: CellDeployment, config: Optional[LinkBudgetConfig] = None) -> None:
        self.deployment = deployment
        self.config = config or LinkBudgetConfig()

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def _bearings_from_cells(self, cells: Sequence[Cell], lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
        """Bearing (deg from north) from every cell to every UE position, [T, N]."""
        frame = self.deployment.frame
        ux, uy = frame.to_xy(lat, lon)
        cx = np.array([frame.to_xy(c.lat, c.lon)[0] for c in cells], dtype=float)
        cy = np.array([frame.to_xy(c.lat, c.lon)[1] for c in cells], dtype=float)
        dx = ux[:, None] - cx[None, :]
        dy = uy[:, None] - cy[None, :]
        return np.degrees(np.arctan2(dx, dy)) % 360.0

    def _distances(self, cells: Sequence[Cell], lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
        frame = self.deployment.frame
        ux, uy = frame.to_xy(lat, lon)
        cx = np.array([frame.to_xy(c.lat, c.lon)[0] for c in cells], dtype=float)
        cy = np.array([frame.to_xy(c.lat, c.lon)[1] for c in cells], dtype=float)
        return np.hypot(ux[:, None] - cx[None, :], uy[:, None] - cy[None, :])

    # ------------------------------------------------------------------
    # Received power
    # ------------------------------------------------------------------
    def per_cell_rsrp(
        self,
        trajectory: Trajectory,
        cells: Sequence[Cell],
        clutter: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Per-cell RSRP over the trajectory, shape [T, N] in dBm.

        ``clutter`` is the per-timestep clutter factor in [0, 1] from the
        environment raster at the UE location.
        """
        cfg = self.config
        steps = len(trajectory)
        n = len(cells)
        distances = self._distances(cells, trajectory.lat, trajectory.lon)
        bearings = self._bearings_from_cells(cells, trajectory.lat, trajectory.lon)
        clutter = np.asarray(clutter, dtype=float)
        if clutter.shape != (steps,):
            raise ValueError(f"clutter must be [T]={steps}, got {clutter.shape}")

        pathloss = cfg.pathloss.pathloss_db(distances, clutter[:, None])
        step_dist = trajectory.step_distances_m()
        speeds = trajectory.speeds_mps()
        per_re_offset = 10.0 * np.log10(12.0 * cfg.n_rb)

        shadow = cfg.shadowing.sample_along_multi(step_dist, n, rng, clutter=clutter)
        p_max = np.array([c.p_max_dbm for c in cells])
        directions = np.array([c.direction_deg for c in cells])
        gain = np.empty((steps, n))
        for j, cell in enumerate(cells):
            gain[:, j] = cell.antenna.gain_dbi(
                wrap_angle_deg(bearings[:, j] - directions[j])
            )
        fading = np.column_stack(
            [cfg.fading.sample(steps, rng, speed_mps=speeds) for _ in range(n)]
        )
        return (
            p_max[None, :]
            - per_re_offset
            + gain
            + cfg.ue_antenna_gain_dbi
            - pathloss
            + shadow
            + fading
        )

    def sample_cell_loads(
        self, n_cells: int, steps: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Slowly-varying per-cell load in [0.05, 0.95], shape [T, N].

        Cell load is the paper's canonical example of context the model does
        NOT see — it is the "noise" the generator must absorb.
        """
        cfg = self.config
        loads = np.empty((steps, n_cells))
        state = rng.normal(0.0, 1.0, size=n_cells)
        for t in range(steps):
            state = cfg.load_ar_coeff * state + np.sqrt(1 - cfg.load_ar_coeff**2) * rng.normal(
                0.0, 1.0, size=n_cells
            )
            loads[t] = np.clip(cfg.load_mean + cfg.load_sigma * state, 0.05, 0.95)
        return loads

    # ------------------------------------------------------------------
    # KPI derivation
    # ------------------------------------------------------------------
    def link_kpis(
        self,
        rsrp_matrix_dbm: np.ndarray,
        serving_idx: np.ndarray,
        loads: np.ndarray,
    ) -> Dict[str, np.ndarray]:
        """Derive serving RSRP/RSSI/RSRQ/SINR/CQI series from the RSRP matrix.

        Interference is the load-weighted sum of non-serving wideband powers;
        RSSI additionally includes the serving cell's own wideband power and
        thermal noise.
        """
        cfg = self.config
        rsrp = np.asarray(rsrp_matrix_dbm, dtype=float)
        steps, n = rsrp.shape
        serving_idx = np.asarray(serving_idx, dtype=int)
        t_idx = np.arange(steps)

        wideband_mw = db_to_linear(rssi_from_rsrp(rsrp, cfg.n_rb))
        noise_mw = db_to_linear(thermal_noise_dbm(cfg.bandwidth_hz, cfg.noise_figure_db))

        serving_rsrp = rsrp[t_idx, serving_idx]
        serving_wb_mw = wideband_mw[t_idx, serving_idx]

        mask = np.ones((steps, n), dtype=bool)
        mask[t_idx, serving_idx] = False
        interference_mw = np.sum(wideband_mw * loads * mask, axis=1)

        rssi_mw = serving_wb_mw + interference_mw + noise_mw
        rssi_dbm = linear_to_db(rssi_mw)
        rsrq = rsrq_db(serving_rsrp, rssi_dbm, cfg.n_rb)
        sinr_db = linear_to_db(serving_wb_mw / (interference_mw + noise_mw))
        cqi = cqi_from_sinr(np.clip(sinr_db, -20.0, 40.0))

        return {
            "rsrp": serving_rsrp,
            "rssi": rssi_dbm,
            "rsrq": np.clip(rsrq, -19.5, -3.0),
            "sinr": np.clip(sinr_db, -10.0, 30.0),
            "cqi": np.asarray(cqi, dtype=float),
        }
