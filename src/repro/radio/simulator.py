"""Drive-test simulator: trajectory -> measured KPI time series.

This is the reproduction's substitute for the paper's field measurements
(Nemo Handy for Dataset A, the CNI Android tracker for Dataset B).  Given a
trajectory through a :class:`~repro.world.region.Region`, the simulator:

1. finds candidate cells along the route,
2. computes the per-cell RSRP matrix (pathloss + antenna + correlated
   shadowing + fading, all clutter-modulated),
3. runs A3 handover logic to obtain the serving-cell series,
4. derives RSSI/RSRQ/SINR/CQI for the serving cell under stochastic
   per-cell load,
5. optionally attaches throughput/PER ground truth (the iPerf3 substitute).

Each call with a fresh ``rng`` re-rolls shadowing/fading/load, so repeated
runs over the same trajectory differ the way paper Fig. 1 shows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from ..geo.trajectory import Trajectory
from .association import HandoverConfig, select_serving_cells

if TYPE_CHECKING:  # avoid a circular import: world.region uses radio.cells
    from ..world.region import Region
from .cells import Cell
from .channel import LinkBudget, LinkBudgetConfig
from .qoe_truth import QoETruthModel


@dataclass(eq=False)
class DriveTestRecord:
    """One simulated drive test: trajectory + measured KPI series.

    ``kpi`` maps KPI name to a [T] array; ``serving_cell_id`` holds global
    cell ids; ``candidate_cell_ids`` records which cells were in range (the
    ground-truth visible set — context extraction recomputes its own from
    the cell database, as an operator would).
    """

    trajectory: Trajectory
    kpi: Dict[str, np.ndarray]
    serving_cell_id: np.ndarray
    candidate_cell_ids: List[int]
    qoe: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Ground-truth load of the serving cell at each step (hidden from the
    #: generative models — it is exactly the "noise" context GenDT does not
    #: see — but exposed for the cell-load-estimation use case).
    serving_load: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __len__(self) -> int:
        return len(self.trajectory)

    @property
    def scenario(self) -> str:
        return self.trajectory.scenario

    def kpi_matrix(self, names: Sequence[str]) -> np.ndarray:
        """Stack selected KPI series into [T, len(names)]."""
        columns = []
        for name in names:
            if name == "serving_cell":
                columns.append(self.serving_cell_id.astype(float))
            else:
                columns.append(self.kpi[name])
        return np.column_stack(columns)


class DriveTestSimulator:
    """Simulates drive-test measurement campaigns over a region."""

    def __init__(
        self,
        region: Region,
        link_config: Optional[LinkBudgetConfig] = None,
        handover_config: Optional[HandoverConfig] = None,
        qoe_model: Optional[QoETruthModel] = None,
        candidate_range_m: float = 4000.0,
    ) -> None:
        self.region = region
        self.link = LinkBudget(region.deployment, link_config)
        self.handover_config = handover_config or HandoverConfig()
        self.qoe_model = qoe_model or QoETruthModel()
        self.candidate_range_m = candidate_range_m

    # ------------------------------------------------------------------
    def candidate_cells(self, trajectory: Trajectory) -> List[Cell]:
        """Cells ever within range of any trajectory point (dedup, id order).

        Sampled at a stride for long trajectories — a cell missed between
        strides would be > range - stride*v_max away, far below relevance.
        """
        stride = max(1, len(trajectory) // 200)
        ids: set = set()
        for k in range(0, len(trajectory), stride):
            for cell, _ in self.region.deployment.visible_cells(
                trajectory.lat[k], trajectory.lon[k], self.candidate_range_m
            ):
                ids.add(cell.cell_id)
        return [self.region.deployment[cid] for cid in sorted(ids)]

    # ------------------------------------------------------------------
    def simulate(
        self,
        trajectory: Trajectory,
        rng: np.random.Generator,
        with_qoe: bool = False,
    ) -> DriveTestRecord:
        """Run one measurement drive over ``trajectory``."""
        if len(trajectory) < 3:
            raise ValueError("trajectory too short to simulate")
        cells = self.candidate_cells(trajectory)
        if not cells:
            raise RuntimeError("no cells in range of the trajectory")
        clutter = self.region.clutter_along(trajectory.lat, trajectory.lon)
        rsrp_matrix = self.link.per_cell_rsrp(trajectory, cells, clutter, rng)

        serving_idx = select_serving_cells(rsrp_matrix, self.handover_config)
        loads = self.link.sample_cell_loads(len(cells), len(trajectory), rng)
        kpis = self.link.link_kpis(rsrp_matrix, serving_idx, loads)

        cell_ids = np.array([c.cell_id for c in cells])
        t_idx = np.arange(len(trajectory))
        record = DriveTestRecord(
            trajectory=trajectory,
            kpi=kpis,
            serving_cell_id=cell_ids[serving_idx],
            candidate_cell_ids=[c.cell_id for c in cells],
            serving_load=loads[t_idx, serving_idx],
        )
        if with_qoe:
            record.qoe = self.qoe_model.generate(
                kpis["sinr"], kpis["cqi"], record.serving_load, rng
            )
        return record

    def simulate_repeats(
        self, trajectory: Trajectory, rng: np.random.Generator, repeats: int
    ) -> List[DriveTestRecord]:
        """Repeat the same drive; used for the Fig. 1/2 stochasticity analysis."""
        return [self.simulate(trajectory, rng) for _ in range(repeats)]
