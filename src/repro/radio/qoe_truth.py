"""Ground-truth QoE model: throughput and packet error rate from link KPIs.

The paper's QoE downstream use case (§6.3.1) relies on iPerf3 throughput and
PER measured alongside the radio KPIs in Dataset A.  We substitute a
physically-grounded mapping: downlink throughput follows the spectral
efficiency of the CQI-selected MCS over the UE's share of the bandwidth
(1 - cell load), and PER follows a logistic BLER-style curve in SINR with an
operating-point offset per CQI.  Both get multiplicative measurement noise so
the QoE predictor has realistic residual error even on real KPI inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .kpis import db_to_linear, spectral_efficiency_from_cqi


@dataclass(frozen=True)
class QoETruthModel:
    """Maps (SINR, CQI, load) to throughput (Mbps) and PER."""

    bandwidth_hz: float = 9e6
    efficiency_factor: float = 0.65  # protocol overhead vs. Shannon-style bound
    throughput_noise_cv: float = 0.10
    per_floor: float = 0.005
    per_noise_cv: float = 0.15
    bler_slope_db: float = 1.5
    bler_offset_db: float = -4.0

    def throughput_mbps(
        self, cqi: np.ndarray, load: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """UE downlink throughput: MCS spectral efficiency x free bandwidth."""
        eff = spectral_efficiency_from_cqi(np.asarray(cqi))
        share = np.clip(1.0 - np.asarray(load, dtype=float), 0.05, 1.0)
        clean = self.efficiency_factor * eff * share * self.bandwidth_hz / 1e6
        noise = np.clip(rng.normal(1.0, self.throughput_noise_cv, size=np.shape(clean)), 0.5, 1.5)
        return clean * noise

    def packet_error_rate(
        self, sinr_db: np.ndarray, cqi: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """PER from a logistic BLER curve around the CQI operating point.

        Link adaptation targets ~10 % BLER, so PER rises when the actual SINR
        falls below the threshold the scheduler assumed for the chosen CQI.
        """
        from .kpis import CQI_SINR_THRESHOLDS_DB

        cqi_idx = np.clip(np.asarray(cqi, dtype=int) - 1, 0, 14)
        target = CQI_SINR_THRESHOLDS_DB[cqi_idx] + self.bler_offset_db
        margin_db = np.asarray(sinr_db, dtype=float) - target
        bler = 1.0 / (1.0 + np.exp(margin_db / self.bler_slope_db))
        noise = np.clip(rng.normal(1.0, self.per_noise_cv, size=np.shape(bler)), 0.3, 2.0)
        return np.clip(bler * noise + self.per_floor, 0.0, 1.0)

    def generate(
        self,
        sinr_db: np.ndarray,
        cqi: np.ndarray,
        load: np.ndarray,
        rng: np.random.Generator,
    ) -> Dict[str, np.ndarray]:
        return {
            "throughput_mbps": self.throughput_mbps(cqi, load, rng),
            "per": self.packet_error_rate(sinr_db, cqi, rng),
        }
