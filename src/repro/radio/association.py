"""Serving-cell selection and handover dynamics.

Implements A3-style mobility management: the UE hands over when a neighbour
cell's RSRP exceeds the serving cell's by a hysteresis margin for a
time-to-trigger number of consecutive samples.  This produces the
serving-cell churn the paper observes (Fig. 2) — the dominant source of
location-conditional KPI stochasticity — and the inter-handover time
distribution analysed in the handover use case (§6.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class HandoverConfig:
    """A3-event parameters."""

    hysteresis_db: float = 4.0
    time_to_trigger_samples: int = 3


def select_serving_cells(
    rsrp_matrix_dbm: np.ndarray,
    config: HandoverConfig = HandoverConfig(),
    initial_cell: Optional[int] = None,
) -> np.ndarray:
    """Trace the serving-cell column index over time.

    Args:
        rsrp_matrix_dbm: per-cell RSRP over time, shape [T, N] (columns are
            candidate cells; -inf marks a cell out of range at that instant).
        config: hysteresis / time-to-trigger parameters.
        initial_cell: starting column; defaults to the strongest at t=0.

    Returns:
        integer array of column indices, shape [T].
    """
    rsrp = np.asarray(rsrp_matrix_dbm, dtype=float)
    if rsrp.ndim != 2:
        raise ValueError("rsrp matrix must be [T, N]")
    steps, n_cells = rsrp.shape
    if n_cells == 0:
        raise ValueError("no candidate cells")
    serving = np.empty(steps, dtype=int)
    current = int(np.argmax(rsrp[0])) if initial_cell is None else int(initial_cell)
    trigger_count = 0
    trigger_target = -1
    for t in range(steps):
        best = int(np.argmax(rsrp[t]))
        if not np.isfinite(rsrp[t, current]):
            # Radio-link failure: serving cell left the visible set.
            current = best
            trigger_count = 0
        elif best != current and rsrp[t, best] >= rsrp[t, current] + config.hysteresis_db:
            if best == trigger_target:
                trigger_count += 1
            else:
                trigger_target = best
                trigger_count = 1
            if trigger_count >= config.time_to_trigger_samples:
                current = best
                trigger_count = 0
                trigger_target = -1
        else:
            trigger_count = 0
            trigger_target = -1
        serving[t] = current
    return serving


def handover_times(serving_cell_ids: np.ndarray, timestamps_s: np.ndarray) -> np.ndarray:
    """Timestamps at which the serving cell changes."""
    ids = np.asarray(serving_cell_ids)
    t = np.asarray(timestamps_s, dtype=float)
    if len(ids) != len(t):
        raise ValueError("ids and timestamps must align")
    changes = np.nonzero(np.diff(ids) != 0)[0] + 1  # repro: noqa[FLT001] (integral cell IDs)
    return t[changes]


def inter_handover_times(serving_cell_ids: np.ndarray, timestamps_s: np.ndarray) -> np.ndarray:
    """Durations between consecutive handovers (the §6.3.2 target metric)."""
    times = handover_times(serving_cell_ids, timestamps_s)
    if len(times) < 2:
        return np.zeros(0)
    return np.diff(times)


def cell_dwell_times(serving_cell_ids: np.ndarray, timestamps_s: np.ndarray) -> np.ndarray:
    """Time spent in each serving-cell visit (first/last visits included).

    This is the paper Table 1/2 statistic "Avg. Duration at each Serving
    Cell": the mean length of the maximal constant runs of the serving-cell
    series.
    """
    ids = np.asarray(serving_cell_ids)
    t = np.asarray(timestamps_s, dtype=float)
    if len(ids) == 0:
        return np.zeros(0)
    boundaries = np.concatenate([[0], np.nonzero(np.diff(ids) != 0)[0] + 1, [len(ids)]])  # repro: noqa[FLT001] (integral cell IDs)
    dwell = []
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        end_t = t[stop] if stop < len(t) else t[-1] + (t[-1] - t[-2] if len(t) >= 2 else 0.0)
        dwell.append(end_t - t[start])
    return np.asarray(dwell)
