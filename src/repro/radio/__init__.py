"""LTE radio substrate: KPI physics, propagation, cells, handover, simulator."""

from .kpis import (
    CQI_SINR_THRESHOLDS_DB,
    CQI_SPECTRAL_EFFICIENCY,
    DEFAULT_N_RB,
    KPI,
    KPI_RANGES,
    KpiSpec,
    cqi_from_sinr,
    db_to_linear,
    linear_to_db,
    rsrp_from_rssi,
    rsrq_db,
    rssi_from_rsrp,
    rssi_from_rsrp_rsrq,
    spectral_efficiency_from_cqi,
    thermal_noise_dbm,
)
from .antenna import OmniAntenna, SectorAntenna, wrap_angle_deg
from .propagation import FastFadingModel, PathlossModel, ShadowingModel
from .cells import Cell, CellDeployment, deploy_city, deploy_highway
from .association import (
    HandoverConfig,
    cell_dwell_times,
    handover_times,
    inter_handover_times,
    select_serving_cells,
)
from .channel import LinkBudget, LinkBudgetConfig
from .qoe_truth import QoETruthModel
from .simulator import DriveTestRecord, DriveTestSimulator

__all__ = [
    "KPI",
    "KPI_RANGES",
    "KpiSpec",
    "DEFAULT_N_RB",
    "CQI_SINR_THRESHOLDS_DB",
    "CQI_SPECTRAL_EFFICIENCY",
    "rsrp_from_rssi",
    "rssi_from_rsrp",
    "rsrq_db",
    "rssi_from_rsrp_rsrq",
    "cqi_from_sinr",
    "spectral_efficiency_from_cqi",
    "db_to_linear",
    "linear_to_db",
    "thermal_noise_dbm",
    "SectorAntenna",
    "OmniAntenna",
    "wrap_angle_deg",
    "PathlossModel",
    "ShadowingModel",
    "FastFadingModel",
    "Cell",
    "CellDeployment",
    "deploy_city",
    "deploy_highway",
    "HandoverConfig",
    "select_serving_cells",
    "handover_times",
    "inter_handover_times",
    "cell_dwell_times",
    "LinkBudget",
    "LinkBudgetConfig",
    "QoETruthModel",
    "DriveTestRecord",
    "DriveTestSimulator",
]
