"""Cells and cell deployments (the operator-side network context).

A :class:`Cell` is one sector of a site with the exact attribute schema the
paper's network context uses: location, max transmit power, and direction
(plus distance-to-UE computed at context-extraction time).  Deployments are
generated per region with scenario-calibrated densities (paper Fig. 4:
city-centre cases ~15-30 cells/km², highway cases ~3-8 cells/km²).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.coords import LocalFrame
from ..geo.routes import CitySpec
from .antenna import SectorAntenna


@dataclass(frozen=True)
class Cell:
    """One sector (cell) of a base-station site."""

    cell_id: int
    lat: float
    lon: float
    p_max_dbm: float
    direction_deg: float
    antenna: SectorAntenna = field(default_factory=SectorAntenna)
    site_id: int = -1

    def context_features(self, distance_m: float) -> np.ndarray:
        """The paper's 5 per-cell context attributes for one timestamp."""
        return np.array([self.lat, self.lon, self.p_max_dbm, self.direction_deg, distance_m])


class CellDeployment:
    """An immutable collection of cells with fast spatial queries."""

    def __init__(self, cells: Sequence[Cell], frame: LocalFrame) -> None:
        if not cells:
            raise ValueError("deployment must contain at least one cell")
        ids = [c.cell_id for c in cells]
        if len(set(ids)) != len(ids):
            raise ValueError("cell ids must be unique")
        self.cells: Tuple[Cell, ...] = tuple(cells)
        self.frame = frame
        self._by_id: Dict[int, Cell] = {c.cell_id: c for c in cells}
        self._xy = np.column_stack(frame.to_xy(
            np.array([c.lat for c in cells]), np.array([c.lon for c in cells])
        ))

    def __len__(self) -> int:
        return len(self.cells)

    def __getitem__(self, cell_id: int) -> Cell:
        return self._by_id[cell_id]

    def cell_ids(self) -> List[int]:
        return [c.cell_id for c in self.cells]

    def positions_xy(self) -> np.ndarray:
        """Cell positions in the deployment's local frame, shape [N, 2]."""
        return self._xy.copy()

    def distances_m(self, lat: float, lon: float) -> np.ndarray:
        """Planar distance from a point to every cell, shape [N]."""
        x, y = self.frame.to_xy(lat, lon)
        return np.hypot(self._xy[:, 0] - float(x), self._xy[:, 1] - float(y))

    def visible_cells(self, lat: float, lon: float, max_distance_m: float) -> List[Tuple[Cell, float]]:
        """Cells within ``max_distance_m`` of a point, nearest first."""
        dists = self.distances_m(lat, lon)
        order = np.argsort(dists)
        return [
            (self.cells[i], float(dists[i]))
            for i in order
            if dists[i] <= max_distance_m
        ]

    def density_per_km2(self, area_km2: float) -> float:
        """Cell density for a region of the given area."""
        if area_km2 <= 0:
            raise ValueError("area must be positive")
        return len(self.cells) / area_km2


def deploy_city(
    city: CitySpec,
    frame: LocalFrame,
    rng: np.random.Generator,
    site_density_per_km2: float = 6.0,
    sectors_per_site: int = 3,
    p_max_dbm: float = 43.0,
    start_cell_id: int = 0,
    start_site_id: int = 0,
) -> List[Cell]:
    """Place sites on a jittered grid across the city square, 3 sectors each.

    With 3 sectors/site, ``site_density_per_km2 = 6`` gives ~18 cells/km²,
    in the city-centre band of paper Fig. 4.
    """
    extent = 2.0 * city.half_extent_m
    area_km2 = (extent / 1000.0) ** 2
    n_sites = max(1, int(round(site_density_per_km2 * area_km2)))
    spacing = extent / np.sqrt(n_sites)
    cx, cy = frame.to_xy(city.center_lat, city.center_lon)
    cells: List[Cell] = []
    cell_id = start_cell_id
    site_id = start_site_id
    grid_side = int(np.ceil(np.sqrt(n_sites)))
    placed = 0
    for i in range(grid_side):
        for j in range(grid_side):
            if placed >= n_sites:
                break
            x = cx - city.half_extent_m + (i + 0.5) * spacing + rng.normal(0, spacing * 0.2)
            y = cy - city.half_extent_m + (j + 0.5) * spacing + rng.normal(0, spacing * 0.2)
            lat, lon = frame.to_latlon(x, y)
            base_dir = rng.uniform(0, 360)
            for s in range(sectors_per_site):
                cells.append(
                    Cell(
                        cell_id=cell_id,
                        lat=float(lat),
                        lon=float(lon),
                        p_max_dbm=p_max_dbm + rng.normal(0, 2.0),
                        direction_deg=(base_dir + s * 360.0 / sectors_per_site) % 360.0,
                        site_id=site_id,
                    )
                )
                cell_id += 1
            site_id += 1
            placed += 1
    return cells


def deploy_highway(
    waypoints_latlon: Sequence[Tuple[float, float]],
    frame: LocalFrame,
    rng: np.random.Generator,
    site_spacing_m: float = 1500.0,
    lateral_offset_m: float = 120.0,
    sectors_per_site: int = 2,
    p_max_dbm: float = 46.0,
    start_cell_id: int = 0,
    start_site_id: int = 0,
) -> List[Cell]:
    """Place sites along a highway polyline, sectors pointing up/down the road."""
    lats = np.array([w[0] for w in waypoints_latlon])
    lons = np.array([w[1] for w in waypoints_latlon])
    xs, ys = frame.to_xy(lats, lons)
    seg_len = np.hypot(np.diff(xs), np.diff(ys))
    cum = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = cum[-1]
    cells: List[Cell] = []
    cell_id = start_cell_id
    site_id = start_site_id
    for along in np.arange(site_spacing_m / 2.0, total, site_spacing_m):
        seg = int(np.searchsorted(cum, along, side="right")) - 1
        seg = min(seg, len(seg_len) - 1)
        frac = (along - cum[seg]) / max(seg_len[seg], 1e-9)
        x = xs[seg] + frac * (xs[seg + 1] - xs[seg])
        y = ys[seg] + frac * (ys[seg + 1] - ys[seg])
        # Unit normal to the road for the lateral offset.
        dx, dy = xs[seg + 1] - xs[seg], ys[seg + 1] - ys[seg]
        norm = max(np.hypot(dx, dy), 1e-9)
        nx_, ny_ = -dy / norm, dx / norm
        side = 1.0 if rng.random() < 0.5 else -1.0
        lat, lon = frame.to_latlon(x + side * lateral_offset_m * nx_, y + side * lateral_offset_m * ny_)
        road_bearing = float(np.degrees(np.arctan2(dx, dy)) % 360.0)
        for s in range(sectors_per_site):
            direction = (road_bearing + (180.0 * s)) % 360.0
            cells.append(
                Cell(
                    cell_id=cell_id,
                    lat=float(lat),
                    lon=float(lon),
                    p_max_dbm=p_max_dbm + rng.normal(0, 2.0),
                    direction_deg=direction,
                    antenna=SectorAntenna(max_gain_dbi=17.0, beamwidth_deg=45.0),
                    site_id=site_id,
                )
            )
            cell_id += 1
        site_id += 1
    return cells
