"""Radio propagation: pathloss, correlated shadowing, fast fading.

These models give the drive-test simulator the stochastic texture the paper
measures in real data (Fig. 1: repeated runs over the same trajectory differ
substantially at most locations):

* **Pathloss** — log-distance with a clutter-dependent exponent; the
  exponent and offset are modulated by the land-use class at the device
  (denser urban -> higher exponent), which is what couples the environment
  context to KPI behaviour.
* **Shadowing** — log-normal, spatially correlated along the trajectory with
  the Gudmundson exponential-decay model, independently per cell.  Because
  it is resampled per run, two drives over the same route differ.
* **Fast fading** — small-scale Rician/Rayleigh-flavoured dB jitter, stronger
  at higher speeds (shorter coherence distance per sample).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class PathlossModel:
    """Log-distance pathloss with clutter modulation.

    ``PL(d) = pl0_db + 10 * n(clutter) * log10(max(d, d_min) / d0)``
    where ``n = base_exponent + clutter_exponent_scale * clutter`` and the
    clutter factor in [0, 1] comes from the environment raster (0 = open
    field, 1 = dense urban core).
    """

    pl0_db: float = 66.0          # loss at d0 for a 1.8 GHz-class carrier
    d0_m: float = 10.0
    d_min_m: float = 35.0
    base_exponent: float = 2.9
    clutter_exponent_scale: float = 1.0
    clutter_offset_db: float = 10.0

    def pathloss_db(self, distance_m: np.ndarray, clutter: np.ndarray) -> np.ndarray:
        """Pathloss in dB for distances [.] and co-located clutter factors [.]."""
        distance = np.maximum(np.asarray(distance_m, dtype=float), self.d_min_m)
        clutter = np.clip(np.asarray(clutter, dtype=float), 0.0, 1.0)
        exponent = self.base_exponent + self.clutter_exponent_scale * clutter
        return (
            self.pl0_db
            + 10.0 * exponent * np.log10(distance / self.d0_m)
            + self.clutter_offset_db * clutter
        )


@dataclass(frozen=True)
class ShadowingModel:
    """Gudmundson spatially-correlated log-normal shadowing.

    Along a trajectory with per-step displacements ``delta_m``, successive
    shadowing samples follow an AR(1) process with correlation
    ``rho_k = exp(-delta_k / decorrelation_m)``.  ``sigma_db`` may be
    modulated upward by clutter (urban canyons shadow harder).
    """

    sigma_db: float = 5.0
    decorrelation_m: float = 80.0
    clutter_sigma_scale: float = 2.5

    def sample_along(
        self,
        step_distances_m: np.ndarray,
        rng: np.random.Generator,
        clutter: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sample a correlated shadowing trace of length ``len(steps)+1`` (dB)."""
        steps = np.asarray(step_distances_m, dtype=float)
        n = len(steps) + 1
        sigma = np.full(n, self.sigma_db)
        if clutter is not None:
            sigma = sigma + self.clutter_sigma_scale * np.clip(clutter, 0.0, 1.0)
        trace = np.empty(n)
        trace[0] = rng.normal(0.0, sigma[0])
        rho = np.exp(-np.maximum(steps, 0.0) / self.decorrelation_m)
        innovations = rng.normal(0.0, 1.0, size=n - 1)
        for k in range(1, n):
            r = rho[k - 1]
            trace[k] = r * trace[k - 1] + np.sqrt(max(1.0 - r * r, 0.0)) * sigma[k] * innovations[k - 1]
        return trace

    def sample_along_multi(
        self,
        step_distances_m: np.ndarray,
        n_cells: int,
        rng: np.random.Generator,
        clutter: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Independent correlated traces for ``n_cells`` cells at once: [T, N].

        Vectorized over cells (the loop runs over time only), so simulating a
        trajectory against hundreds of candidate cells stays cheap.
        """
        steps = np.asarray(step_distances_m, dtype=float)
        n = len(steps) + 1
        sigma = np.full(n, self.sigma_db)
        if clutter is not None:
            sigma = sigma + self.clutter_sigma_scale * np.clip(clutter, 0.0, 1.0)
        rho = np.exp(-np.maximum(steps, 0.0) / self.decorrelation_m)
        drive = np.sqrt(np.maximum(1.0 - rho * rho, 0.0))
        traces = np.empty((n, n_cells))
        traces[0] = rng.normal(0.0, sigma[0], size=n_cells)
        innovations = rng.normal(0.0, 1.0, size=(n - 1, n_cells))
        for k in range(1, n):
            traces[k] = rho[k - 1] * traces[k - 1] + drive[k - 1] * sigma[k] * innovations[k - 1]
        return traces


@dataclass(frozen=True)
class FastFadingModel:
    """Small-scale fading as bounded dB jitter.

    A crude but adequate stand-in for Rician fading after the RSRP-layer
    averaging the UE performs: i.i.d. Gaussian dB jitter whose standard
    deviation grows with speed (less averaging per reporting interval).
    """

    sigma_db: float = 1.0
    speed_scale: float = 0.03  # extra dB of sigma per m/s

    def sample(
        self, n: int, rng: np.random.Generator, speed_mps: Optional[np.ndarray] = None
    ) -> np.ndarray:
        sigma = np.full(n, self.sigma_db)
        if speed_mps is not None:
            speeds = np.asarray(speed_mps, dtype=float)
            if len(speeds) == n - 1:  # per-step speeds -> pad
                speeds = np.concatenate([speeds[:1], speeds])
            sigma = sigma + self.speed_scale * np.clip(speeds, 0.0, 50.0)
        return rng.normal(0.0, 1.0, size=n) * sigma
