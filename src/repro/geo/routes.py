"""Synthetic route generation over a region's road network.

The paper's trajectories come from real walk/bus/tram/car journeys.  We
synthesize comparable routes on a procedurally-generated road graph: a city
street grid plus inter-city highways.  Routes are random walks over the graph
(without immediate backtracking) so they exhibit the turns, loops, and
multi-scenario composition real drive tests have.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from .coords import LocalFrame
from .trajectory import Trajectory, from_waypoints


@dataclass(frozen=True)
class CitySpec:
    """A synthetic city: a square street grid centred at (lat, lon)."""

    name: str
    center_lat: float
    center_lon: float
    half_extent_m: float = 2000.0
    street_spacing_m: float = 250.0


class RoadNetwork:
    """Road graph over one or more cities, with optional highway links.

    Nodes are ``(lat, lon)`` tuples; edges carry ``kind`` ("street" or
    "highway") and ``length_m``.  Routes are random non-backtracking walks.
    """

    def __init__(self, cities: Sequence[CitySpec], connect_highways: bool = True) -> None:
        if not cities:
            raise ValueError("need at least one city")
        self.cities = list(cities)
        self.graph = nx.Graph()
        self._city_nodes: Dict[str, List[Tuple[float, float]]] = {}
        for city in self.cities:
            self._add_city_grid(city)
        if connect_highways and len(self.cities) > 1:
            self._add_highways()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _add_city_grid(self, city: CitySpec) -> None:
        frame = LocalFrame(city.center_lat, city.center_lon)
        n_half = int(city.half_extent_m // city.street_spacing_m)
        offsets = np.arange(-n_half, n_half + 1) * city.street_spacing_m
        nodes: List[Tuple[float, float]] = []
        grid: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for i, x in enumerate(offsets):
            for j, y in enumerate(offsets):
                lat, lon = frame.to_latlon(x, y)
                node = (float(lat), float(lon))
                grid[(i, j)] = node
                nodes.append(node)
                self.graph.add_node(node, city=city.name)
        for (i, j), node in grid.items():
            for di, dj in ((1, 0), (0, 1)):
                neighbor = grid.get((i + di, j + dj))
                if neighbor is not None:
                    self.graph.add_edge(
                        node, neighbor, kind="street", length_m=city.street_spacing_m
                    )
        self._city_nodes[city.name] = nodes

    def _add_highways(self) -> None:
        # Connect each pair of adjacent cities (by centroid distance order)
        # with a straight highway sampled every ~500 m.
        frame = LocalFrame(self.cities[0].center_lat, self.cities[0].center_lon)
        for a, b in zip(self.cities[:-1], self.cities[1:]):
            ax, ay = frame.to_xy(a.center_lat, a.center_lon)
            bx, by = frame.to_xy(b.center_lat, b.center_lon)
            start = self._nearest_node(a.name, b.center_lat, b.center_lon)
            end = self._nearest_node(b.name, a.center_lat, a.center_lon)
            sx, sy = frame.to_xy(*start)
            ex, ey = frame.to_xy(*end)
            length = math.hypot(ex - sx, ey - sy)
            n_seg = max(2, int(length // 500.0))
            prev = start
            for k in range(1, n_seg + 1):
                frac = k / n_seg
                lat, lon = frame.to_latlon(sx + frac * (ex - sx), sy + frac * (ey - sy))
                node = (float(lat), float(lon)) if k < n_seg else end
                if node not in self.graph:
                    self.graph.add_node(node, city=f"hw:{a.name}-{b.name}")
                seg_len = length / n_seg
                self.graph.add_edge(prev, node, kind="highway", length_m=seg_len)
                prev = node

    def _nearest_node(self, city_name: str, lat: float, lon: float) -> Tuple[float, float]:
        nodes = self._city_nodes[city_name]
        arr = np.array(nodes)
        d2 = (arr[:, 0] - lat) ** 2 + (arr[:, 1] - lon) ** 2
        return nodes[int(np.argmin(d2))]

    # ------------------------------------------------------------------
    # Route sampling
    # ------------------------------------------------------------------
    def random_walk_route(
        self,
        rng: np.random.Generator,
        length_m: float,
        city: Optional[str] = None,
        kinds: Tuple[str, ...] = ("street",),
        start_node: Optional[Tuple[float, float]] = None,
    ) -> List[Tuple[float, float]]:
        """Sample a non-backtracking walk of roughly ``length_m`` metres.

        ``kinds`` restricts which edge kinds may be traversed (streets only
        for city scenarios, highway+street for inter-city driving).
        """
        if start_node is None:
            candidates = (
                self._city_nodes[city] if city is not None else list(self.graph.nodes)
            )
            start_node = candidates[int(rng.integers(len(candidates)))]
        route = [start_node]
        covered = 0.0
        prev = None
        node = start_node
        while covered < length_m:
            neighbors = [
                nb
                for nb in self.graph.neighbors(node)
                if self.graph.edges[node, nb]["kind"] in kinds
            ]
            if not neighbors:
                break
            options = [nb for nb in neighbors if nb != prev] or neighbors
            nxt = options[int(rng.integers(len(options)))]
            covered += self.graph.edges[node, nxt]["length_m"]
            route.append(nxt)
            prev, node = node, nxt
        if len(route) < 2:
            raise RuntimeError("random walk could not leave the start node")
        return route

    def intercity_route(
        self, city_a: str, city_b: str, rng: np.random.Generator, city_detour_m: float = 1000.0
    ) -> List[Tuple[float, float]]:
        """City-A detour → highway to city B → city-B detour (complex route)."""
        walk_a = self.random_walk_route(rng, city_detour_m, city=city_a)
        walk_b = self.random_walk_route(rng, city_detour_m, city=city_b)
        path = nx.shortest_path(
            self.graph, walk_a[-1], walk_b[0], weight="length_m"
        )
        return walk_a + path[1:-1] + walk_b

    def route_to_trajectory(
        self,
        route: Sequence[Tuple[float, float]],
        speed_mps: float,
        interval_s: float,
        scenario: str,
        rng: np.random.Generator,
        speed_jitter: float = 0.15,
    ) -> Trajectory:
        """Convert a node route into a sampled trajectory."""
        return from_waypoints(
            route, speed_mps, interval_s, scenario=scenario, speed_jitter=speed_jitter, rng=rng
        )
