"""Trajectories: timestamped sequences of device locations.

A trajectory in the paper's sense is a sequence of ``(location, timestamp)``
tuples — device mobility is implicit in the spacing of locations over time.
:class:`Trajectory` stores parallel arrays (``t``, ``lat``, ``lon``) and
offers resampling, concatenation, speed statistics, and slicing — the
operations the datasets, context pipeline and evaluation harness need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .coords import LocalFrame, haversine_m


@dataclass
class Trajectory:
    """Timestamped device path.

    Attributes:
        t: seconds since trajectory start, strictly increasing, shape [T].
        lat, lon: WGS-84 coordinates, shape [T].
        scenario: free-form scenario tag ("walk", "highway1", ...), carried
            through to dataset splits and per-scenario evaluation tables.
    """

    t: np.ndarray
    lat: np.ndarray
    lon: np.ndarray
    scenario: str = ""

    def __post_init__(self) -> None:
        self.t = np.asarray(self.t, dtype=float)
        self.lat = np.asarray(self.lat, dtype=float)
        self.lon = np.asarray(self.lon, dtype=float)
        if not (self.t.shape == self.lat.shape == self.lon.shape):
            raise ValueError("t, lat, lon must have identical shapes")
        if self.t.ndim != 1:
            raise ValueError("trajectory arrays must be 1-D")
        if len(self.t) >= 2 and np.any(np.diff(self.t) <= 0):
            raise ValueError("timestamps must be strictly increasing")

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.t)

    def __iter__(self) -> Iterator[Tuple[float, float, float]]:
        return iter(zip(self.t, self.lat, self.lon))

    @property
    def duration_s(self) -> float:
        """Elapsed time from first to last sample."""
        return float(self.t[-1] - self.t[0]) if len(self.t) >= 2 else 0.0

    @property
    def sample_interval_s(self) -> float:
        """Median sampling interval."""
        if len(self.t) < 2:
            return 0.0
        return float(np.median(np.diff(self.t)))

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def step_distances_m(self) -> np.ndarray:
        """Distance covered in each step, shape [T-1]."""
        if len(self.t) < 2:
            return np.zeros(0)
        return np.asarray(
            haversine_m(self.lat[:-1], self.lon[:-1], self.lat[1:], self.lon[1:])
        )

    def length_m(self) -> float:
        """Total path length."""
        return float(self.step_distances_m().sum())

    def speeds_mps(self) -> np.ndarray:
        """Instantaneous speed per step, shape [T-1]."""
        if len(self.t) < 2:
            return np.zeros(0)
        return self.step_distances_m() / np.diff(self.t)

    def average_speed_mps(self) -> float:
        if self.duration_s == 0.0:
            return 0.0
        return self.length_m() / self.duration_s

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """(lat_min, lat_max, lon_min, lon_max)."""
        return (
            float(self.lat.min()),
            float(self.lat.max()),
            float(self.lon.min()),
            float(self.lon.max()),
        )

    def centroid(self) -> Tuple[float, float]:
        return float(self.lat.mean()), float(self.lon.mean())

    def min_distance_to(self, other: "Trajectory") -> float:
        """Minimum point-to-point distance to another trajectory (metres).

        Used by the dataset splitters to enforce the paper's requirement that
        train and test trajectories have no geographic proximity.
        """
        frame = LocalFrame(*self.centroid())
        x1, y1 = frame.to_xy(self.lat, self.lon)
        x2, y2 = frame.to_xy(other.lat, other.lon)
        dx = x1[:, None] - x2[None, :]
        dy = y1[:, None] - y2[None, :]
        return float(np.sqrt(dx**2 + dy**2).min())

    # ------------------------------------------------------------------
    # Editing
    # ------------------------------------------------------------------
    def slice(self, start: int, stop: int) -> "Trajectory":
        """Sample-index slice, rebased so t[0] == 0."""
        t = self.t[start:stop]
        return Trajectory(t - t[0], self.lat[start:stop], self.lon[start:stop], self.scenario)

    def resample(self, interval_s: float) -> "Trajectory":
        """Linear-interpolate to a uniform sampling interval."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        new_t = np.arange(self.t[0], self.t[-1] + 1e-9, interval_s)
        return Trajectory(
            new_t - new_t[0],
            np.interp(new_t, self.t, self.lat),
            np.interp(new_t, self.t, self.lon),
            self.scenario,
        )

    def concat(self, other: "Trajectory", gap_s: Optional[float] = None) -> "Trajectory":
        """Append ``other``, shifting its clock to follow this trajectory."""
        if gap_s is None:
            gap_s = self.sample_interval_s or 1.0
        offset = self.t[-1] + gap_s
        scenario = self.scenario if self.scenario == other.scenario else f"{self.scenario}+{other.scenario}"
        return Trajectory(
            np.concatenate([self.t, other.t + offset]),
            np.concatenate([self.lat, other.lat]),
            np.concatenate([self.lon, other.lon]),
            scenario,
        )


def from_waypoints(
    waypoints_latlon: Sequence[Tuple[float, float]],
    speed_mps: float,
    interval_s: float,
    scenario: str = "",
    speed_jitter: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> Trajectory:
    """Build a trajectory by driving through waypoints at roughly constant speed.

    ``speed_jitter`` (a coefficient of variation, e.g. 0.2) makes the speed
    fluctuate between waypoint legs, mimicking traffic/stops.
    """
    if len(waypoints_latlon) < 2:
        raise ValueError("need at least two waypoints")
    if speed_mps <= 0 or interval_s <= 0:
        raise ValueError("speed and interval must be positive")
    lats = np.array([w[0] for w in waypoints_latlon], dtype=float)
    lons = np.array([w[1] for w in waypoints_latlon], dtype=float)
    leg_lengths = np.asarray(haversine_m(lats[:-1], lons[:-1], lats[1:], lons[1:]))
    leg_speeds = np.full(len(leg_lengths), speed_mps)
    if speed_jitter > 0.0:
        if rng is None:
            raise ValueError("rng required when speed_jitter > 0")
        leg_speeds = leg_speeds * np.clip(rng.normal(1.0, speed_jitter, len(leg_lengths)), 0.3, 2.5)
    leg_times = leg_lengths / leg_speeds
    cumulative = np.concatenate([[0.0], np.cumsum(leg_times)])
    total = cumulative[-1]
    sample_t = np.arange(0.0, total, interval_s)
    lat = np.interp(sample_t, cumulative, lats)
    lon = np.interp(sample_t, cumulative, lons)
    return Trajectory(sample_t, lat, lon, scenario)
