"""Coordinate handling: WGS-84 lat/lon and local planar (ENU) frames.

Drive-test measurements and cell databases speak latitude/longitude; the
radio simulator and context pipeline work in a local east/north metric frame
around a region's reference origin.  An equirectangular projection is exact
enough (< 0.1 % error) for the tens-of-kilometres regions the paper covers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

EARTH_RADIUS_M = 6_371_000.0


def haversine_m(
    lat1: Union[float, np.ndarray],
    lon1: Union[float, np.ndarray],
    lat2: Union[float, np.ndarray],
    lon2: Union[float, np.ndarray],
) -> Union[float, np.ndarray]:
    """Great-circle distance in metres between WGS-84 points (vectorized)."""
    lat1, lon1, lat2, lon2 = (np.radians(np.asarray(v, dtype=float)) for v in (lat1, lon1, lat2, lon2))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    a = np.sin(dlat / 2.0) ** 2 + np.cos(lat1) * np.cos(lat2) * np.sin(dlon / 2.0) ** 2
    out = 2.0 * EARTH_RADIUS_M * np.arcsin(np.sqrt(np.clip(a, 0.0, 1.0)))
    if out.ndim == 0:
        return float(out)
    return out


def bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial bearing from point 1 to point 2, degrees clockwise from north."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dlon = math.radians(lon2 - lon1)
    y = math.sin(dlon) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlon)
    return math.degrees(math.atan2(y, x)) % 360.0


@dataclass(frozen=True)
class LocalFrame:
    """Equirectangular local tangent frame anchored at (lat0, lon0).

    ``to_xy`` maps lat/lon to metres east (x) and north (y) of the origin;
    ``to_latlon`` inverts it.
    """

    lat0: float
    lon0: float

    def to_xy(self, lat, lon) -> Tuple[np.ndarray, np.ndarray]:
        lat = np.asarray(lat, dtype=float)
        lon = np.asarray(lon, dtype=float)
        x = np.radians(lon - self.lon0) * EARTH_RADIUS_M * math.cos(math.radians(self.lat0))
        y = np.radians(lat - self.lat0) * EARTH_RADIUS_M
        return x, y

    def to_latlon(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        lat = self.lat0 + np.degrees(y / EARTH_RADIUS_M)
        lon = self.lon0 + np.degrees(x / (EARTH_RADIUS_M * math.cos(math.radians(self.lat0))))
        return lat, lon

    def distance_m(self, lat1, lon1, lat2, lon2) -> np.ndarray:
        """Planar distance in the local frame (fast; used in inner loops)."""
        x1, y1 = self.to_xy(lat1, lon1)
        x2, y2 = self.to_xy(lat2, lon2)
        return np.hypot(x2 - x1, y2 - y1)
