"""Geospatial substrate: coordinates, trajectories, synthetic road routes."""

from .coords import EARTH_RADIUS_M, LocalFrame, bearing_deg, haversine_m
from .trajectory import Trajectory, from_waypoints
from .routes import CitySpec, RoadNetwork

__all__ = [
    "EARTH_RADIUS_M",
    "LocalFrame",
    "bearing_deg",
    "haversine_m",
    "Trajectory",
    "from_waypoints",
    "CitySpec",
    "RoadNetwork",
]
