"""GenDT generator components: GNN-node, aggregation, ResGen, discriminator.

Maps paper Figure 6/7 onto the numpy NN engine:

* :class:`GnnNodeNetwork` (``G_n``) — one shared stochastic LSTM applied to
  every visible cell's context series (weight sharing across nodes is what
  makes it a graph network: a GraphSAGE-style node function with a mean
  aggregator).  Denoising noise ``z0`` is concatenated to the input.
* :class:`AggregationNetwork` (``G_a``) — mean-pools the per-cell hidden
  series into ``h_avg`` and maps it with a second stochastic LSTM plus a
  linear head to the first-stage multi-channel KPI output.
* :class:`ResGen` (``G_r``, Figure 7) — an autoregressive MLP over
  environment context + noise ``z1`` + the last ``m`` KPI values, emitting
  per-step Gaussian parameters ``(mu, log_sigma)``; the residual sample is
  reparameterized (``mu + sigma * eps``) so gradients flow.
* :class:`Discriminator` (``R``) — a single-layer LSTM over the KPI series
  concatenated with ``h_avg`` (the high-dimensional context representation,
  §4.3.5), followed by a linear head on the last hidden state.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .. import nn
from ..analysis.graph.spec import Spec, contract
from ..nn.tensor import Tensor, concat
from .config import GenDTConfig
from .stochastic_lstm import StochasticLSTM


@contract(
    inputs={"cell_inputs": Spec("R", "L", "F")},
    outputs=Spec("R", "L", "H"),
    dims={
        "F": lambda m: m.lstm.cell.input_size - m.n_noise,
        "H": "lstm.hidden_size",
    },
)
class GnnNodeNetwork(nn.Module):
    """``G_n``: per-cell context series -> per-cell hidden series.

    Input: ``[B * N_b, L, n_features + n_noise]``; output ``[B * N_b, L, H]``.
    The same weights process every cell (node-level weight sharing).
    """

    def __init__(self, n_features: int, config: GenDTConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.n_noise = config.n_noise_node
        self.lstm = StochasticLSTM(
            n_features + self.n_noise,
            config.hidden_size,
            rng,
            intensity_h=config.noise_intensity_h,
            intensity_c=config.noise_intensity_c,
            stochastic=config.use_stochastic_layers,
        )
        self.rng = rng

    def forward(self, cell_inputs: Tensor, stochastic: Optional[bool] = None) -> Tensor:
        rows, steps, _ = cell_inputs.shape
        # z0: denoising noise, concatenated to every step's input (§4.3.1).
        z0 = Tensor(self.rng.normal(0.0, 1.0, size=(rows, steps, self.n_noise)))
        hidden, _ = self.lstm(concat([cell_inputs, z0], axis=2), stochastic=stochastic)
        return hidden


@contract(
    inputs={"h_avg": Spec("B", "L", "H")},
    outputs=Spec("B", "L", "N_ch"),
    dims={"H": "head.in_features", "N_ch": "head.out_features"},
)
class AggregationNetwork(nn.Module):
    """``G_a``: graph-level hidden series ``h_avg`` -> base KPI series."""

    def __init__(self, n_channels: int, config: GenDTConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.lstm = StochasticLSTM(
            config.hidden_size,
            config.hidden_size,
            rng,
            intensity_h=config.noise_intensity_h,
            intensity_c=config.noise_intensity_c,
            stochastic=config.use_stochastic_layers,
        )
        self.head = nn.Linear(config.hidden_size, n_channels, rng)

    def forward(self, h_avg: Tensor, stochastic: Optional[bool] = None) -> Tensor:
        hidden, _ = self.lstm(h_avg, stochastic=stochastic)
        return self.head(hidden)


@contract(
    method="sample",
    inputs={
        "env": Spec("...", "N_env"),
        "recent": Spec("...", "M_win"),
    },
    outputs=(Spec("...", "N_ch"), Spec("...", "N_ch"), Spec("...", "N_ch")),
    dims={
        "N_env": "n_env",
        "N_ch": "n_channels",
        # The AR window m and channel count fix the recent-residuals width;
        # a region config whose m disagrees with the trained MLP fails here.
        "M_win": lambda m: m.ar_window * m.n_channels,
    },
)
class ResGen(nn.Module):
    """``G_r``: environment context + noise + recent residuals -> Gaussian residual.

    The network follows paper Figure 7 (three FC+LeakyReLU blocks, dropout
    before the final FC) but parameterizes the per-step Gaussian as a
    *stationary autoregression over the residual process*:

    ``mu_t = sum_k g_k(c) * r_{t-k}``,  ``g_k = sigmoid(raw_k) / m``

    with the AR gains ``g_k`` and ``log_sigma`` emitted by the MLP,
    conditioned on environment context, noise ``z1`` and the recent
    residuals.  Because ``sum_k g_k < 1`` the generated residual process is
    mean-reverting: it cannot drift when the model consumes its own outputs
    at generation time (the free-form-``mu`` head diverges there), yet the
    context still modulates how correlated (``g``) and how wide (``sigma``)
    the residual is — exactly the environment's physical effect on
    shadowing.  The dropout layer doubles as the MC-dropout probe for model
    uncertainty (§6.2.1) via ``force_dropout``.
    """

    def __init__(
        self,
        n_env: int,
        n_channels: int,
        config: GenDTConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        self.n_env = n_env
        self.n_channels = n_channels
        self.n_noise = config.n_noise_resgen
        self.ar_window = config.resgen_ar_window
        in_features = n_env + self.n_noise + self.ar_window * n_channels
        # Head: m AR gains + 1 log-sigma per channel.
        self.mlp = nn.MLP(
            in_features,
            list(config.resgen_hidden),
            (self.ar_window + 1) * n_channels,
            rng,
            dropout=config.resgen_dropout,
        )
        self.rng = rng

    def force_dropout(self, active: bool) -> None:
        """Keep dropout on at generation time (MC-dropout uncertainty)."""
        for layer in self.mlp.dropout_layers:
            layer.force_active = active

    def distribution(self, env: Tensor, recent: Tensor) -> Tuple[Tensor, Tensor]:
        """Gaussian parameters for a batch of timesteps.

        Args:
            env: normalized environment context, [..., n_env].
            recent: last ``m`` *residual* values (normalized),
                [..., m * N_ch], oldest first.

        Returns:
            (mu, log_sigma), each [..., N_ch].
        """
        noise_shape = env.shape[:-1] + (self.n_noise,)
        z1 = Tensor(self.rng.normal(0.0, 1.0, size=noise_shape))
        out = self.mlp(concat([env, z1, recent], axis=-1))
        m, n_ch = self.ar_window, self.n_channels
        gains = out[..., : m * n_ch].sigmoid() * (1.0 / m)
        log_sigma = out[..., m * n_ch :].clip(-5.0, 2.0)
        # recent is [..., m * N_ch] laid out as m blocks of N_ch (oldest
        # first); mu is the gain-weighted sum over the m lags.
        mu = (gains * recent).reshape(*env.shape[:-1], m, n_ch).sum(axis=-2)
        return mu, log_sigma

    def sample(self, env: Tensor, recent: Tensor) -> Tuple[Tensor, Tensor, Tensor]:
        """Reparameterized residual sample; returns (residual, mu, log_sigma)."""
        mu, log_sigma = self.distribution(env, recent)
        eps = Tensor(self.rng.normal(0.0, 1.0, size=mu.shape))
        residual = mu + log_sigma.exp() * eps
        return residual, mu, log_sigma


@contract(
    inputs={
        "series": Spec("B", "L", "N_ch"),
        "h_avg": Spec("B", "L", "H"),
    },
    outputs=Spec("B", 1),
    dims={"N_ch": "n_channels", "H": "head.in_features"},
)
class Discriminator(nn.Module):
    """``R``: (KPI series, h_avg) -> realness logit, via a 1-layer LSTM."""

    def __init__(self, n_channels: int, config: GenDTConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.n_channels = n_channels
        self.lstm = nn.LSTM(n_channels + config.hidden_size, config.hidden_size, rng)
        self.head = nn.Linear(config.hidden_size, 1, rng)

    def forward(self, series: Tensor, h_avg: Tensor) -> Tensor:
        """Logits [B, 1] for a batch of (series [B, L, N_ch], h_avg [B, L, H])."""
        hidden, _ = self.lstm(concat([series, h_avg], axis=2))
        last = hidden[:, -1, :]
        return self.head(last)
