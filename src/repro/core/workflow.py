"""The operator workflow of paper Figure 14: pretrain, transfer, retrain.

GenDT's design is region-agnostic — the model consumes context features,
not region identity — so a model pretrained on historical drive-test data
can be carried to a previously unseen region:

1. **Transfer** (Fig. 14 ①): rebind the pretrained model to the new
   region's cell database and environment data (weights unchanged).
2. **Bootstrap** (Fig. 14 ②): collect a coarse-grained measurement pass
   (e.g. one route per district) and fine-tune on it.
3. **Uncertainty loop** (Fig. 14 ③): repeatedly probe candidate areas with
   the MC-dropout model-uncertainty measure, measure (simulate) the most
   uncertain one, fine-tune, until U(G) stops improving or the budget is
   spent.  The outcome is the generation-phase model.
"""

from __future__ import annotations

import copy
import logging
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..context.extract import ContextConfig
from ..context.normalize import CellFeatureTransform
from ..context.windows import ContextBuilder
from ..geo.trajectory import Trajectory
from ..radio.simulator import DriveTestRecord
from ..runtime.errors import ContextValidationError, MeasurementError
from ..runtime.retry import retry
from ..world.region import Region
from .model import GenDT
from .uncertainty import mc_dropout_uncertainty

logger = logging.getLogger(__name__)


def _region_env_feature_count(region: Region) -> int:
    """Environment-feature width the context pipeline will emit for a region.

    Probes the region's land-use raster and PoI index directly (one cheap
    query at the region origin) rather than trusting the global constant, so
    a region built against a different attribute taxonomy is caught.
    """
    from .features import N_KINEMATIC_FEATURES

    n_land_use = int(region.land_use.fractions.shape[-1])
    n_poi = int(
        len(region.pois.counts_within(region.frame.lat0, region.frame.lon0, 1.0))
    )
    return n_land_use + n_poi + N_KINEMATIC_FEATURES


def transfer_model(model: GenDT, region: Region, copy_weights: bool = False) -> GenDT:
    """Rebind a fitted GenDT to a new region (Fig. 14 ①).

    Network weights and normalizers are kept (the model is region-agnostic);
    only the context pipeline — cell database, environment layers — is
    swapped.

    **Shared-weights footgun:** with the default ``copy_weights=False`` the
    returned model *shares* its generator (and trainer/optimizer state) with
    the source — fine-tuning the transfer mutates the pretrained original.
    That is the cheap choice when the original is disposable; pass
    ``copy_weights=True`` to deep-copy the weights so the pretrained model
    stays frozen while the transfer is fine-tuned.

    Raises:
        ContextValidationError: the new region's environment-attribute
            count does not match the fitted generator's ``n_env`` — caught
            here, at transfer time, instead of surfacing as a shape error
            halfway through the first fine-tune.
    """
    model._require_fitted()
    if model._n_env is not None:
        region_n_env = _region_env_feature_count(region)
        if region_n_env != model._n_env:
            raise ContextValidationError(
                f"region {region.cities[0].name!r} provides {region_n_env} "
                f"environment features but the fitted generator expects "
                f"n_env={model._n_env}; rebuild the region against the "
                "attribute taxonomy the model was trained with"
            )
    transferred = copy.deepcopy(model) if copy_weights else copy.copy(model)
    transferred.region = region
    transferred.context = ContextBuilder(
        region, ContextConfig(max_cells=model.config.max_cells)
    )
    transferred.cell_transform = CellFeatureTransform(region.frame)
    return transferred


@dataclass
class RetrainingStep:
    """One round of the Fig. 14 ③ loop.

    ``failures`` counts transient measurement failures absorbed by the retry
    layer during this round; ``skipped`` marks a round whose measurement
    failed even after retries (the area is blacklisted and the loop moves
    on instead of aborting the whole run).
    """

    step: int
    measured_area: int
    model_uncertainty: float
    records_used: int
    failures: int = 0
    skipped: bool = False
    skip_reason: str = ""


@dataclass
class RetrainingResult:
    """Outcome of the transfer-and-retrain workflow."""

    model: GenDT
    steps: List[RetrainingStep] = field(default_factory=list)

    def uncertainty_series(self) -> List[float]:
        return [s.model_uncertainty for s in self.steps]

    @property
    def total_failures(self) -> int:
        """Transient measurement failures absorbed across the whole run."""
        return sum(s.failures for s in self.steps)

    @property
    def converged(self) -> bool:
        """Did the loop stop because uncertainty plateaued (vs budget)?

        Skipped rounds (measurement failed after retries) carry a repeated
        uncertainty value and are excluded so they cannot fake a plateau.
        """
        series = [s.model_uncertainty for s in self.steps if not s.skipped]
        if len(series) < 2:
            return False
        return series[-1] >= series[-2] * 0.98


def retrain_in_new_region(
    pretrained: GenDT,
    region: Region,
    measure: Callable[[int], Sequence[DriveTestRecord]],
    probe_trajectories: Sequence[Trajectory],
    bootstrap_area: int = 0,
    max_steps: int = 5,
    epochs_per_step: int = 3,
    mc_passes: int = 4,
    plateau_tolerance: float = 0.02,
    copy_weights: bool = False,
    measure_retries: int = 2,
    measure_backoff_s: float = 0.5,
    retry_seed: int = 0,
    sleep: Optional[Callable[[float], None]] = None,
) -> RetrainingResult:
    """Run the Fig. 14 workflow in a new region.

    Args:
        pretrained: a fitted GenDT (historical data, any region).
        region: the unseen target region.
        measure: campaign callback — given an area index, returns the
            measurement records for that area (in production a drive test;
            in this reproduction the simulator).
        probe_trajectories: one representative trajectory per candidate
            area, used for the uncertainty probe; area indices refer to
            positions in this sequence.
        bootstrap_area: area measured unconditionally first (Fig. 14 ②).
        max_steps: measurement budget beyond the bootstrap.
        epochs_per_step: fine-tuning epochs per round.
        mc_passes: MC-dropout passes for U(G).
        plateau_tolerance: stop when U(G) improves by less than this
            relative amount.
        copy_weights: deep-copy the pretrained weights before fine-tuning
            (see :func:`transfer_model`); default keeps the historical
            behavior of sharing them.
        measure_retries: retry budget per measurement call; a ``measure``
            that raises is retried with exponential backoff before the
            round is skipped (loop rounds) or the run aborts (bootstrap).
        measure_backoff_s: base backoff delay between retries.
        retry_seed: seed for the deterministic backoff jitter.
        sleep: delay function for the backoff; ``None`` (the default) skips
            real sleeping — pass ``time.sleep`` for wall-clock backoff in a
            live campaign.

    Returns:
        the fine-tuned model plus the per-step uncertainty trace, including
        per-step transient-failure counts.

    Raises:
        MeasurementError: the bootstrap measurement failed even after
            retries (there is no model to continue with).
    """
    if not probe_trajectories:
        raise ValueError("need at least one probe trajectory")
    model = transfer_model(pretrained, region, copy_weights=copy_weights)

    failures = {"count": 0}

    def _measure_with_retry(area: int) -> List[DriveTestRecord]:
        def _count(_attempt: int, _exc: BaseException, _delay: float) -> None:
            failures["count"] += 1

        try:
            return retry(
                lambda: list(measure(area)),
                retries=measure_retries,
                backoff=measure_backoff_s,
                seed=retry_seed + area,
                sleep=sleep,
                on_retry=_count,
            )
        except Exception as exc:
            # Terminal failure after the whole retry budget: surface it as
            # the structured taxonomy type so callers can catch precisely.
            raise MeasurementError(
                f"measurement of area {area} failed after "
                f"{measure_retries} retries: {exc}",
                area=area,
                attempts=measure_retries + 1,
            ) from exc

    # A bootstrap failure propagates as MeasurementError (see Raises above):
    # there is no model to continue with.
    pool: List[DriveTestRecord] = _measure_with_retry(bootstrap_area)
    if not pool:
        raise ValueError("bootstrap measurement returned no records")
    bootstrap_failures = failures["count"]
    model.continue_fit(pool, epochs=epochs_per_step)

    def area_uncertainty(idx: int) -> float:
        return mc_dropout_uncertainty(
            model, probe_trajectories[idx], n_passes=mc_passes
        ).model_uncertainty

    measured = {bootstrap_area}
    result = RetrainingResult(model=model)
    last_u = float(np.mean([area_uncertainty(i) for i in range(len(probe_trajectories))]))
    result.steps.append(
        RetrainingStep(
            step=0, measured_area=bootstrap_area,
            model_uncertainty=last_u, records_used=len(pool),
            failures=bootstrap_failures,
        )
    )
    for step in range(1, max_steps + 1):
        remaining = [i for i in range(len(probe_trajectories)) if i not in measured]
        if not remaining:
            break
        scores = {i: area_uncertainty(i) for i in remaining}
        target = max(scores, key=scores.get)
        failures_before = failures["count"]
        try:
            new_records = _measure_with_retry(target)
        except MeasurementError as exc:
            # Degrade gracefully: blacklist the area, annotate the round,
            # keep the active-learning run alive (Fig. 14 ③ continues with
            # the next-most-uncertain area on the following iteration).
            logger.warning(
                "skipping area %d after %d attempts: %s", target, exc.attempts, exc
            )
            measured.add(target)
            result.steps.append(
                RetrainingStep(
                    step=step, measured_area=target,
                    model_uncertainty=last_u, records_used=len(pool),
                    failures=failures["count"] - failures_before + 1,
                    skipped=True,
                    skip_reason=str(exc),
                )
            )
            continue
        if not new_records:
            measured.add(target)
            continue
        pool.extend(new_records)
        measured.add(target)
        model.continue_fit(pool, epochs=epochs_per_step)
        current_u = float(
            np.mean([area_uncertainty(i) for i in range(len(probe_trajectories))])
        )
        result.steps.append(
            RetrainingStep(
                step=step, measured_area=target,
                model_uncertainty=current_u, records_used=len(pool),
                failures=failures["count"] - failures_before,
            )
        )
        if last_u - current_u < plateau_tolerance * max(last_u, 1e-9):
            break
        last_u = current_u
    return result
