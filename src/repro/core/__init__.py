"""GenDT core: the paper's conditional deep generative model."""

from .config import GenDTConfig, small_config
from .stochastic_lstm import StochasticLSTM
from .networks import AggregationNetwork, Discriminator, GnnNodeNetwork, ResGen
from .features import ModelBatch, WindowAssembler, recent_values_matrix
from .generator import GenDTGenerator
from .training import GenDTTrainer, TrainingHistory, make_minibatches
from .model import GenDT
from .uncertainty import UncertaintyEstimate, mc_dropout_uncertainty, subset_uncertainties
from .active import ActiveLearningResult, ActiveLearningStep, run_active_learning
from .workflow import (
    RetrainingResult,
    RetrainingStep,
    retrain_in_new_region,
    transfer_model,
)

__all__ = [
    "GenDTConfig",
    "small_config",
    "StochasticLSTM",
    "GnnNodeNetwork",
    "AggregationNetwork",
    "ResGen",
    "Discriminator",
    "ModelBatch",
    "WindowAssembler",
    "recent_values_matrix",
    "GenDTGenerator",
    "GenDTTrainer",
    "TrainingHistory",
    "make_minibatches",
    "GenDT",
    "UncertaintyEstimate",
    "mc_dropout_uncertainty",
    "subset_uncertainties",
    "ActiveLearningResult",
    "ActiveLearningStep",
    "run_active_learning",
    "transfer_model",
    "retrain_in_new_region",
    "RetrainingResult",
    "RetrainingStep",
]
