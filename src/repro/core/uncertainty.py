"""Model-uncertainty estimation via MC dropout (paper §6.2.1).

GenDT's ResGen head outputs per-step Gaussian parameters (mu, sigma).  The
actual sigma value reflects *data* uncertainty (irreducible variability);
the *variation of the parameters themselves* under MC dropout reflects
*model* uncertainty — reducible with more training data.  The scalar probe

``U(G) = (1/T) * sum_t [ std(sigma_t) + std(mu_t) ]``

averages, over time, the standard deviation of each parameter across
``n_passes`` stochastic forward passes with dropout forced on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..geo.trajectory import Trajectory
from ..radio.simulator import DriveTestRecord
from .model import GenDT


@dataclass
class UncertaintyEstimate:
    """Decomposed uncertainty for a trajectory."""

    model_uncertainty: float     #: U(G): std of (mu, sigma) across MC passes
    data_uncertainty: float      #: mean learned sigma (irreducible variability)
    n_passes: int

    def __repr__(self) -> str:
        return (
            f"UncertaintyEstimate(model={self.model_uncertainty:.4f}, "
            f"data={self.data_uncertainty:.4f}, passes={self.n_passes})"
        )


def mc_dropout_uncertainty(
    model: GenDT, trajectory: Trajectory, n_passes: int = 8
) -> UncertaintyEstimate:
    """Estimate U(G) for one trajectory via repeated dropout-on generation."""
    if n_passes < 2:
        raise ValueError("need at least 2 MC passes")
    model._require_fitted()
    if model.generator.resgen is None:
        raise RuntimeError("uncertainty probe requires ResGen (use_resgen=True)")
    model.generator.resgen.force_dropout(True)
    try:
        mus: List[np.ndarray] = []
        sigmas: List[np.ndarray] = []
        for _ in range(n_passes):
            out = model.generate_normalized(trajectory, collect_params=True)
            mus.append(out["mu"])
            sigmas.append(out["sigma"])
    finally:
        model.generator.resgen.force_dropout(False)
    mu_stack = np.stack(mus)        # [P, T, N_ch]
    sigma_stack = np.stack(sigmas)
    per_step = mu_stack.std(axis=0) + sigma_stack.std(axis=0)  # [T, N_ch]
    return UncertaintyEstimate(
        model_uncertainty=float(per_step.mean()),
        data_uncertainty=float(sigma_stack.mean()),
        n_passes=n_passes,
    )


def subset_uncertainties(
    model: GenDT, subsets: Sequence[Sequence[DriveTestRecord]], n_passes: int = 6
) -> List[float]:
    """U(G) per candidate measurement subset (drives §6.2 data selection)."""
    values: List[float] = []
    for subset in subsets:
        per_record = [
            mc_dropout_uncertainty(model, record.trajectory, n_passes).model_uncertainty
            for record in subset
        ]
        values.append(float(np.mean(per_record)))
    return values
