"""Stochastic LSTM layers (the paper's SRNN variant, §4.3.4 and §A.2).

Before every LSTM iteration, uniform noise is added to the hidden state
``h_t`` and memory ``c_t`` and the result is renormalized so the total value
across hidden dimensions is preserved:

``h'_t = (h_t + a_h * n_h) * sum(h_t) / sum(h_t + a_h * n_h)``

with ``n_h ~ U[0, mean(h_t)]`` (the noise amplitude adapts to the hidden
state's own scale) and intensity ``a_h`` (paper default 2; ``a_c`` likewise
for the memory).  Unlike the original SRNN's variational-inference training,
GenDT trains these layers adversarially — the discriminator provides the
extra signal that makes the stochastic hidden dynamics match the data's
variability.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .. import nn
from ..analysis.graph.spec import Spec, contract
from ..nn.tensor import Tensor, stack


def _inject_noise(state: Tensor, intensity: float, rng: np.random.Generator) -> Tensor:
    """Apply the paper's adaptive uniform noise + sum-preserving renorm.

    The noise is U[0, h_hat] where h_hat is the *average value* of the
    hidden state across dimensions (paper §4.3.4) — signed, so a network
    whose hidden activations balance around zero receives little noise,
    and training can modulate the injected stochasticity.
    """
    values = state.data
    mean_value = values.mean(axis=-1, keepdims=True)
    noise = rng.uniform(0.0, 1.0, size=values.shape) * mean_value
    noisy = state + Tensor(intensity * noise)
    # Renormalize so the per-row total is unchanged (paper §A.2).
    row_sum = state.sum(axis=-1, keepdims=True)
    noisy_sum = noisy.sum(axis=-1, keepdims=True)
    denom_safe = np.where(np.abs(noisy_sum.data) < 1e-6, 1.0, noisy_sum.data)
    scale = row_sum / Tensor(denom_safe)
    return noisy * scale


@contract(
    inputs={"x": Spec("B", "T", "I")},
    outputs=(Spec("B", "T", "H"), (Spec("B", "H"), Spec("B", "H"))),
    dims={"I": "cell.input_size", "H": "hidden_size"},
)
class StochasticLSTM(nn.Module):
    """LSTM whose recurrent state is perturbed per step (GenDT SRNN layers).

    When ``stochastic`` is False (or the intensity is zero) this reduces to
    a plain LSTM — that is exactly the "No SRNN" ablation of paper Table 12.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        intensity_h: float = 2.0,
        intensity_c: float = 2.0,
        stochastic: bool = True,
    ) -> None:
        super().__init__()
        self.cell = nn.LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size
        self.intensity_h = intensity_h
        self.intensity_c = intensity_c
        self.stochastic = stochastic
        self.rng = rng

    def forward(
        self,
        x: Tensor,
        state: Optional[Tuple[Tensor, Tensor]] = None,
        stochastic: Optional[bool] = None,
    ) -> Tuple[Tensor, Tuple[Tensor, Tensor]]:
        """Run over a sequence ``[B, T, input_size]`` -> ``[B, T, H]``.

        ``stochastic`` overrides the module default (used to disable noise
        for deterministic evaluation).
        """
        use_noise = self.stochastic if stochastic is None else stochastic
        batch = x.shape[0]
        if state is None:
            h, c = self.cell.zero_state(batch)
        else:
            h, c = state
        outputs: List[Tensor] = []
        for t in range(x.shape[1]):
            if use_noise:
                h = _inject_noise(h, self.intensity_h, self.rng)
                c = _inject_noise(c, self.intensity_c, self.rng)
            h, c = self.cell(x[:, t, :], (h, c))
            outputs.append(h)
        return stack(outputs, axis=1), (h, c)
