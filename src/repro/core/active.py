"""Uncertainty-driven measurement data selection (paper §6.2.2).

Mimics the real-world active drive-testing loop: start from one small
measurement subset, then repeatedly (a) score every remaining candidate
subset by the model-uncertainty probe, (b) add the most uncertain one to the
training pool, (c) retrain, (d) evaluate on the held-out long trajectory.
Random selection with the same starting subset is the comparison baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..radio.simulator import DriveTestRecord
from .model import GenDT
from .uncertainty import subset_uncertainties


@dataclass
class ActiveLearningStep:
    """One round of the selection loop."""

    step: int
    chosen_subset: int
    fraction_used: float
    metrics: Dict[str, float]


@dataclass
class ActiveLearningResult:
    """Full trace of a selection run."""

    strategy: str
    steps: List[ActiveLearningStep] = field(default_factory=list)

    def fractions(self) -> List[float]:
        return [s.fraction_used for s in self.steps]

    def metric_series(self, name: str) -> List[float]:
        return [s.metrics[name] for s in self.steps]


def run_active_learning(
    model_factory: Callable[[], GenDT],
    subsets: Sequence[Sequence[DriveTestRecord]],
    evaluate: Callable[[GenDT], Dict[str, float]],
    n_steps: int,
    strategy: str = "uncertainty",
    initial_subset: int = 0,
    rng: Optional[np.random.Generator] = None,
    epochs_per_step: int = 4,
    mc_passes: int = 4,
) -> ActiveLearningResult:
    """Run the §6.2.2 loop with uncertainty-guided or random selection.

    Args:
        model_factory: builds a fresh (unfitted) GenDT; called once.
        subsets: the candidate measurement subsets (23 in the paper).
        evaluate: computes test metrics (e.g. DTW/HWD on the long trajectory).
        n_steps: how many subsets to add beyond the initial one.
        strategy: "uncertainty" or "random".
        initial_subset: index of the shared starting subset (both strategies
            start identically, as in the paper).
        rng: required for the random strategy.
        epochs_per_step: retraining epochs after each addition.
        mc_passes: MC-dropout passes for the uncertainty probe.

    Returns:
        the metric trace; ``fraction_used`` is the measurement-efficiency
        axis of paper Fig. 11 (subsets used / total subsets).
    """
    if strategy not in ("uncertainty", "random"):
        raise ValueError(f"unknown strategy: {strategy}")
    if strategy == "random" and rng is None:
        raise ValueError("random strategy requires rng")
    subsets = list(subsets)
    n_total = len(subsets)
    selected = [initial_subset]
    remaining = [i for i in range(n_total) if i != initial_subset]

    model = model_factory()
    model.fit([r for i in selected for r in subsets[i]], epochs=epochs_per_step)

    result = ActiveLearningResult(strategy=strategy)
    result.steps.append(
        ActiveLearningStep(
            step=0,
            chosen_subset=initial_subset,
            fraction_used=len(selected) / n_total,
            metrics=evaluate(model),
        )
    )
    for step in range(1, n_steps + 1):
        if not remaining:
            break
        if strategy == "uncertainty":
            scores = subset_uncertainties(
                model, [subsets[i] for i in remaining], n_passes=mc_passes
            )
            pick_pos = int(np.argmax(scores))
        else:
            pick_pos = int(rng.integers(len(remaining)))
        chosen = remaining.pop(pick_pos)
        selected.append(chosen)
        model.continue_fit(
            [r for i in selected for r in subsets[i]], epochs=epochs_per_step
        )
        result.steps.append(
            ActiveLearningStep(
                step=step,
                chosen_subset=chosen,
                fraction_used=len(selected) / n_total,
                metrics=evaluate(model),
            )
        )
    return result
