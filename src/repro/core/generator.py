"""The full GenDT generator: G_n + G_a + G_r assembled (paper Figure 6)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import nn
from ..analysis.graph.spec import ANY, Spec, contract
from ..nn.tensor import Tensor, concat
from ..context.normalize import N_CELL_FEATURES
from .config import GenDTConfig
from .features import ModelBatch, recent_values_matrix
from .networks import AggregationNetwork, GnnNodeNetwork, ResGen


def _probe_batch(module: "GenDTGenerator", env) -> Tuple[tuple, dict]:
    """Symbolic probe ModelBatch for graph verification (fresh B, N_c, L)."""
    b = int(env.fresh("B"))
    n_c = int(env.fresh("N_c"))
    length = int(env.fresh("L"))
    batch = ModelBatch(
        cell_x=np.zeros((b, n_c, length, N_CELL_FEATURES)),
        cell_mask=np.ones((b, n_c)),
        env=np.zeros((b, length, module.n_env)),
        target=np.zeros((b, length, module.n_channels)),
        scenarios=["probe"] * b,
    )
    return (batch,), {}


@contract(
    method="forward_teacher_forced",
    inputs={"batch": ANY},
    outputs={
        "h_avg": Spec("B", "L", "H"),
        "base": Spec("B", "L", "N_ch"),
        "output": Spec("B", "L", "N_ch"),
        "mu": Spec("B", "L", "N_ch"),
        "log_sigma": Spec("B", "L", "N_ch"),
    },
    dims={"H": "config.hidden_size", "N_ch": "n_channels", "N_env": "n_env"},
    build_inputs=_probe_batch,
)
class GenDTGenerator(nn.Module):
    """Conditional neural sampler ``p_theta(x | c)``.

    Forward pass (one minibatch of windows):

    1. every (padded) cell's transformed feature series goes through the
       shared node LSTM ``G_n`` -> per-cell hidden series,
    2. masked mean over cells -> graph representation ``h_avg`` [B, L, H],
    3. the aggregation LSTM + head ``G_a`` -> base KPI series [B, L, N_ch],
    4. ``G_r`` (ResGen) adds a Gaussian residual conditioned on environment
       context, noise and the last ``m`` KPI values.

    During training ResGen is teacher-forced with the real recent values;
    during generation it consumes its own output autoregressively, carrying
    state across generation batches (that is what keeps long series
    coherent, §4.3.3).
    """

    def __init__(
        self,
        n_channels: int,
        n_env: int,
        config: GenDTConfig,
        rng: np.random.Generator,
    ) -> None:
        super().__init__()
        config.validate()
        self.config = config
        self.n_channels = n_channels
        self.n_env = n_env
        self.node_net = GnnNodeNetwork(N_CELL_FEATURES, config, rng)
        self.agg_net = AggregationNetwork(n_channels, config, rng)
        if config.use_resgen:
            self.resgen: Optional[ResGen] = ResGen(n_env, n_channels, config, rng)
        else:
            self.resgen = None
        self.rng = rng

    # ------------------------------------------------------------------
    # Shared first stage
    # ------------------------------------------------------------------
    def h_avg(self, batch: ModelBatch, stochastic: Optional[bool] = None) -> Tensor:
        """Graph-level hidden series [B, L, H] from the cell context."""
        b, n_cells, length, n_feat = batch.cell_x.shape
        flat = Tensor(batch.cell_x.reshape(b * n_cells, length, n_feat))
        hidden = self.node_net(flat, stochastic=stochastic)
        h = hidden.reshape(b, n_cells, length, hidden.shape[-1])
        mask = batch.cell_mask[:, :, None, None]
        counts = np.maximum(batch.cell_mask.sum(axis=1), 1.0)[:, None, None]
        masked = h * Tensor(mask)
        return masked.sum(axis=1) * Tensor(1.0 / counts)

    # ------------------------------------------------------------------
    # Training-time forward (teacher forcing)
    # ------------------------------------------------------------------
    def forward_teacher_forced(
        self, batch: ModelBatch, stochastic: Optional[bool] = None
    ) -> Dict[str, Tensor]:
        """Generate with real recent values feeding ResGen (training mode)."""
        if batch.target is None:
            raise ValueError("teacher forcing requires targets")
        h_avg = self.h_avg(batch, stochastic=stochastic)
        base = self.agg_net(h_avg, stochastic=stochastic)
        out: Dict[str, Tensor] = {"h_avg": h_avg, "base": base}
        if self.resgen is not None:
            # ResGen is autoregressive over the *residual* process
            # (target - base): the residual is stationary (shadowing-like),
            # so the learned feedback stays stable when the model consumes
            # its own outputs at generation time.
            residual_real = batch.target - base.numpy()
            recent = recent_values_matrix(residual_real, self.resgen.ar_window)
            residual, mu, log_sigma = self.resgen.sample(
                Tensor(batch.env), Tensor(recent)
            )
            out["output"] = base + residual
            out["mu"] = mu
            out["log_sigma"] = log_sigma
        else:
            out["output"] = base
        return out

    # ------------------------------------------------------------------
    # Generation-time forward (autoregressive)
    # ------------------------------------------------------------------
    def generate_batch(
        self,
        batch: ModelBatch,
        ar_state: Optional[np.ndarray] = None,
        stochastic: Optional[bool] = None,
        collect_params: bool = False,
        first_stage_only: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, Optional[Dict[str, np.ndarray]]]:
        """Generate one batch of windows autoregressively.

        Args:
            batch: assembled windows (targets ignored).
            ar_state: [B, m, N_ch] recent *residual* values carried from the
                previous generation batch (zeros at trajectory start).
            stochastic: override for the SRNN noise.
            collect_params: also return ResGen's (mu, sigma) series — used by
                the MC-dropout uncertainty probe.
            first_stage_only: skip ResGen residual sampling and return the
                ``G_n`` + ``G_a`` base output only.  Combined with
                ``stochastic=False`` this is the deterministic middle rung of
                the serving degradation ladder (:mod:`repro.serving`).

        Returns:
            (generated [B, L, N_ch] in normalized space,
             new ar_state [B, m, N_ch],
             optional {"mu": [B, L, N_ch], "sigma": [B, L, N_ch]}).
        """
        with nn.no_grad():
            h_avg = self.h_avg(batch, stochastic=stochastic)
            base = self.agg_net(h_avg, stochastic=stochastic)
            base_np = base.numpy()
            b, length, n_ch = base_np.shape
            m = self.resgen.ar_window if self.resgen is not None else 1
            if ar_state is None:
                ar_state = np.zeros((b, m, n_ch))
            if self.resgen is None or first_stage_only:
                new_state = np.concatenate([ar_state, base_np], axis=1)[:, -m:]
                return base_np, new_state, None

            output = np.empty_like(base_np)
            params_mu = np.empty_like(base_np) if collect_params else None
            params_sigma = np.empty_like(base_np) if collect_params else None
            state = ar_state.copy()
            for t in range(length):
                env_t = Tensor(batch.env[:, t, :])
                recent_t = Tensor(state.reshape(b, m * n_ch))
                residual, mu, log_sigma = self.resgen.sample(env_t, recent_t)
                residual_np = np.clip(residual.numpy(), -5.0, 5.0)
                output[:, t] = base_np[:, t] + residual_np
                if collect_params:
                    params_mu[:, t] = mu.numpy()
                    params_sigma[:, t] = np.exp(log_sigma.numpy())
                state = np.concatenate(
                    [state[:, 1:], residual_np[:, None, :]], axis=1
                )
            params = (
                {"mu": params_mu, "sigma": params_sigma} if collect_params else None
            )
            return output, state, params
