"""High-level GenDT API: fit on drive-test records, generate for trajectories.

This is the public face of the reproduction: an operator-style workflow of

>>> model = GenDT(region, kpis=["rsrp", "rsrq"], config=small_config(), seed=0)
>>> model.fit(train_records)
>>> series = model.generate(new_trajectory, seed=1)   # [T, n_kpis], real units

mirroring paper Figure 5 (input: trajectory; the model annotates it with
network + environment context internally; output: multi-KPI time series).
"""

from __future__ import annotations

import zipfile
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..context.extract import ContextConfig
from ..context.normalize import (
    CellFeatureTransform,
    EnvFeatureNormalizer,
    TargetNormalizer,
)
from ..context.windows import ContextBuilder, ContextWindow
from ..geo.trajectory import Trajectory
from ..radio.kpis import KPI, KpiSpec
from ..radio.simulator import DriveTestRecord
from ..world.region import Region
from .. import nn
from ..runtime.checkpoint import is_checkpoint, read_checkpoint, write_checkpoint
from ..runtime.errors import CheckpointCorruptError
from ..runtime.guards import HealthGuard
from ..runtime.validate import validate_trajectory, validate_windows
from .config import GenDTConfig
from .features import ModelBatch, WindowAssembler
from .generator import GenDTGenerator
from .training import GenDTTrainer, TrainingHistory, make_minibatches


class GenDT:
    """GenDT model bound to a region's cell database and environment data."""

    def __init__(
        self,
        region: Region,
        kpis: Sequence[Union[str, KPI]] = ("rsrp", "rsrq", "sinr", "cqi"),
        config: Optional[GenDTConfig] = None,
        seed: int = 0,
        context_config: Optional[ContextConfig] = None,
    ) -> None:
        self.region = region
        self.kpi_spec = KpiSpec([KPI(k) for k in kpis])
        self.config = config or GenDTConfig()
        self.config.validate()
        self.rng = np.random.default_rng(seed)
        ctx = context_config or ContextConfig(max_cells=self.config.max_cells)
        self.context = ContextBuilder(region, ctx)
        self.cell_transform = CellFeatureTransform(region.frame)
        self.env_normalizer = EnvFeatureNormalizer()
        self.target_normalizer = TargetNormalizer()
        self.generator: Optional[GenDTGenerator] = None
        self.trainer: Optional[GenDTTrainer] = None
        self._fitted = False
        self._n_env: Optional[int] = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @property
    def kpi_names(self) -> List[str]:
        return self.kpi_spec.names()

    def _batch_len(self, n_samples: int) -> int:
        if self.config.batch_len is None:
            return n_samples  # one-shot (the "No batch" ablation)
        return self.config.batch_len

    def build_training_windows(
        self, records: Sequence[DriveTestRecord]
    ) -> List[ContextWindow]:
        """Overlapping context windows with targets (paper Fig. 8a)."""
        min_len = min(len(r) for r in records)
        length = min(self._batch_len(min_len), min_len)
        step = self.config.train_step if self.config.batch_len is not None else length
        return self.context.training_windows(records, self.kpi_names, length, step)

    def fit(
        self,
        records: Sequence[DriveTestRecord],
        epochs: Optional[int] = None,
        verbose: bool = False,
        guard: Optional[HealthGuard] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        keep_last: int = 3,
        resume_from: Optional[Union[str, Path]] = None,
        detect_anomaly: bool = False,
        verify_graph: bool = True,
    ) -> TrainingHistory:
        """Fit the generator (and refit normalizers) on measurement records.

        Fault-tolerance hooks (all optional, see :mod:`repro.runtime`):
        ``guard`` watches every step for numerical trouble and rolls back;
        ``checkpoint_every``/``checkpoint_dir``/``keep_last`` write atomic
        epoch checkpoints with rotating retention; ``resume_from`` restores
        one and continues bit-exactly — everything before the epoch loop
        (normalizer fits, weight init, minibatch shuffling) is deterministic
        under the model seed, and the checkpoint restores the RNG state the
        interrupted run had at that epoch boundary.  ``detect_anomaly``
        trains under :func:`repro.nn.detect_anomaly`, failing fast at the op
        that first produces a NaN/Inf.
        """
        if not records:
            raise ValueError("no training records")
        stacked_targets = np.concatenate(
            [r.kpi_matrix(self.kpi_names) for r in records], axis=0
        )
        self.target_normalizer.fit(stacked_targets)
        windows = self.build_training_windows(records)
        env_stack = np.concatenate([w.env_features for w in windows], axis=0)
        self.env_normalizer.fit(env_stack)

        from .features import N_KINEMATIC_FEATURES

        n_env = windows[0].env_features.shape[-1] + N_KINEMATIC_FEATURES
        self._n_env = n_env
        self.generator = GenDTGenerator(
            n_channels=self.kpi_spec.n_channels,
            n_env=n_env,
            config=self.config,
            rng=self.rng,
        )
        self.trainer = GenDTTrainer(self.generator, self.config, self.rng)
        if verify_graph:
            # One-shot symbolic shape/dtype + gradient-flow check before any
            # training compute; restores all RNG streams, so training is
            # bit-identical with verification on or off.
            self._verify_generator()
        assembler = WindowAssembler(
            self.cell_transform,
            self.env_normalizer,
            self.target_normalizer,
            self.config.max_cells,
        )
        batches = make_minibatches(
            assembler, windows, self.config.minibatch_windows, self.rng
        )
        history = self.trainer.fit(
            batches,
            epochs=epochs,
            verbose=verbose,
            guard=guard,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            keep_last=keep_last,
            resume_from=resume_from,
            checkpoint_meta=self._checkpoint_meta(),
            detect_anomaly=detect_anomaly,
        )
        self._fitted = True
        return history

    def continue_fit(
        self,
        records: Sequence[DriveTestRecord],
        epochs: int,
        verbose: bool = False,
        detect_anomaly: bool = False,
    ) -> TrainingHistory:
        """Additional training passes on new records, keeping current weights.

        Used by the active-learning loop (§6.2): normalizers stay fixed so
        the generated scale remains consistent across retraining rounds.
        """
        self._require_fitted()
        windows = self.build_training_windows(records)
        assembler = self._assembler()
        batches = make_minibatches(
            assembler, windows, self.config.minibatch_windows, self.rng
        )
        return self.trainer.fit(
            batches, epochs=epochs, verbose=verbose, detect_anomaly=detect_anomaly
        )

    def _assembler(self) -> WindowAssembler:
        return WindowAssembler(
            self.cell_transform,
            self.env_normalizer,
            self.target_normalizer,
            self.config.max_cells,
        )

    def _require_fitted(self) -> None:
        if not self._fitted or self.generator is None:
            raise RuntimeError("model must be fit before use")

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate_normalized(
        self,
        trajectory: Trajectory,
        collect_params: bool = False,
        stochastic: Optional[bool] = None,
        first_stage_only: bool = False,
        window_hook: Optional[
            Callable[[int, np.ndarray], Optional[np.ndarray]]
        ] = None,
    ) -> Dict[str, np.ndarray]:
        """Generate in normalized space; used internally and by uncertainty.

        ``first_stage_only`` skips ResGen residual sampling (deterministic
        base output).  ``window_hook(index, out)`` is invoked after each
        generation window with the window index and its [L, N_ch] output; it
        may return a replacement array, return ``None`` to keep the output,
        or raise to abort the trajectory.  The serving layer
        (:mod:`repro.serving`) uses the hook for per-window deadline checks
        and deterministic fault injection.

        Returns {"series": [T, N_ch], optionally "mu"/"sigma": [T, N_ch]}.
        """
        self._require_fitted()
        validate_trajectory(trajectory)
        length = self._batch_len(len(trajectory))
        windows = self.context.generation_windows(trajectory, length)
        validate_windows(windows)
        assembler = self._assembler()
        m = self.config.resgen_ar_window
        n_ch = self.kpi_spec.n_channels
        series = np.full((len(trajectory), n_ch), np.nan)
        mu = np.full_like(series, np.nan) if collect_params else None
        sigma = np.full_like(series, np.nan) if collect_params else None
        ar_state = np.zeros((1, m, n_ch))
        for index, window in enumerate(windows):
            batch = assembler.assemble([window], with_target=False)
            out, ar_state, params = self.generator.generate_batch(
                batch, ar_state=ar_state, stochastic=stochastic,
                collect_params=collect_params, first_stage_only=first_stage_only,
            )
            window_out = out[0]
            if window_hook is not None:
                replaced = window_hook(index, window_out)
                if replaced is not None:
                    window_out = np.asarray(replaced)
            start, stop = window.start, window.start + window.length
            series[start:stop] = window_out
            if collect_params and params is not None:
                mu[start:stop] = params["mu"][0]
                sigma[start:stop] = params["sigma"][0]
        result = {"series": series}
        if collect_params:
            result["mu"] = mu
            result["sigma"] = sigma
        return result

    def generate(
        self,
        trajectory: Trajectory,
        stochastic: Optional[bool] = None,
        first_stage_only: bool = False,
        window_hook: Optional[
            Callable[[int, np.ndarray], Optional[np.ndarray]]
        ] = None,
    ) -> np.ndarray:
        """Generate the KPI time series for a trajectory, in physical units.

        Returns [T, n_kpis], channels ordered as ``self.kpi_names``; values
        are clipped to physical KPI ranges (CQI snapped to integers).

        This call is all-or-nothing: a bad trajectory raises
        :class:`~repro.runtime.errors.ContextValidationError` and a mid-run
        fault aborts the series.  For batch workloads that must survive
        individual failures — quarantine, deadlines, circuit breaking, and
        degraded-but-valid fallbacks — use
        :class:`repro.serving.CampaignRunner`, which wraps this method (via
        ``window_hook``/``first_stage_only``) in the resilient serving
        runtime.
        """
        normalized = self.generate_normalized(
            trajectory, stochastic=stochastic, first_stage_only=first_stage_only,
            window_hook=window_hook,
        )
        series = self.target_normalizer.denormalize(normalized["series"])
        return self._clip(series)

    def generate_samples(self, trajectory: Trajectory, n_samples: int) -> np.ndarray:
        """Multiple independent generations, [n_samples, T, n_kpis]."""
        return np.stack([self.generate(trajectory) for _ in range(n_samples)])

    def generate_expected(self, trajectory: Trajectory, n_samples: int = 4) -> np.ndarray:
        """Monte-Carlo estimate of the *conditional mean* KPI series.

        Averages several stochastic generations before clipping.  Use this
        when the series feeds a downstream regressor (e.g. the QoE
        predictor): the regression-optimal input is E[x | context], whereas
        :meth:`generate` returns one stochastic draw whose sampling noise
        would propagate into the downstream prediction.
        """
        draws = [
            self.target_normalizer.denormalize(
                self.generate_normalized(trajectory)["series"]
            )
            for _ in range(n_samples)
        ]
        return self._clip(np.mean(draws, axis=0))

    def _clip(self, series: np.ndarray) -> np.ndarray:
        clipped = self.kpi_spec.clip(series)
        # Serving-cell channel (handover use case): snap to integers.
        for idx, kpi in enumerate(self.kpi_spec.kpis):
            if kpi == KPI.SERVING_CELL:
                clipped[:, idx] = np.round(clipped[:, idx])
        return clipped

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _checkpoint_meta(self) -> Dict:
        """Model-level metadata embedded in checkpoints (normalizers, KPIs)."""
        return {
            "kpis": self.kpi_names,
            "n_env": self._n_env,
            "env_normalizer": {
                k: v.tolist() for k, v in self.env_normalizer.state().items()
            },
            "target_normalizer": {
                k: v.tolist() for k, v in self.target_normalizer.state().items()
            },
        }

    def save(self, path: Union[str, Path]) -> None:
        """Serialize generator weights and normalizer state.

        Writes an atomic, SHA-256-checksummed checkpoint (see
        :mod:`repro.runtime.checkpoint`); a torn write or a later bit-flip
        is detected at load time instead of producing garbage weights.
        """
        self._require_fitted()
        meta = dict(self._checkpoint_meta(), kind="model")
        arrays = {
            f"model.{name}": value
            for name, value in self.generator.state_dict().items()
        }
        write_checkpoint(path, arrays, meta)

    def _verify_generator(self) -> None:
        """Symbolically verify the generator graph (raises on violation)."""
        from ..analysis.graph import verify

        verify(self.generator, raise_on_error=True)

    def load(
        self, path: Union[str, Path], n_env: int = 28, verify_graph: bool = True
    ) -> None:
        """Restore a model saved with :meth:`save` (same config required).

        Accepts both the checksummed checkpoint container and (for backward
        compatibility) legacy ``.npz`` archives written by older versions.
        ``n_env`` is only a fallback for legacy files; checkpoints record it.

        Raises:
            CheckpointCorruptError: the file is missing, fails checksum
                verification, or (legacy path) is a malformed/truncated
                ``.npz`` archive — always carrying the offending path.
            ValueError: the checkpoint's KPI list does not match this
                model's (message names the checkpoint path).
        """
        if is_checkpoint(path):
            arrays, meta = read_checkpoint(path)
            # Validate KPI compatibility before instantiating the generator:
            # a channel-count mismatch would otherwise surface as an opaque
            # weight-shape error from load_state_dict.
            if meta is not None and meta.get("kpis") != self.kpi_names:
                raise ValueError(
                    f"checkpoint {path}: KPIs {meta.get('kpis')} do not match "
                    f"model {self.kpi_names}"
                )
            state = {
                name.partition(".")[2]: value
                for name, value in arrays.items()
                if name.startswith("model.")
            }
            n_env = int(meta.get("n_env") or n_env)
            self.generator = GenDTGenerator(
                n_channels=self.kpi_spec.n_channels,
                n_env=n_env,
                config=self.config,
                rng=self.rng,
            )
            self.generator.load_state_dict(state)
        else:
            self.generator = GenDTGenerator(
                n_channels=self.kpi_spec.n_channels,
                n_env=n_env,
                config=self.config,
                rng=self.rng,
            )
            try:
                meta = nn.load_module(self.generator, path)
            except FileNotFoundError as exc:
                raise CheckpointCorruptError(
                    f"checkpoint not found: {exc}", path=str(path)
                ) from exc
            except (KeyError, OSError, ValueError, zipfile.BadZipFile) as exc:
                # np.load raises BadZipFile/OSError on truncation, KeyError on
                # a missing array, ValueError on un-unpicklable garbage.
                raise CheckpointCorruptError(
                    f"malformed legacy .npz archive: {exc!r}", path=str(path)
                ) from exc
        if meta is None:
            raise ValueError(f"missing metadata in checkpoint {path}")
        if meta["kpis"] != self.kpi_names:
            raise ValueError(
                f"checkpoint {path}: KPIs {meta['kpis']} do not match "
                f"model {self.kpi_names}"
            )
        self._n_env = n_env
        self.env_normalizer = EnvFeatureNormalizer.from_state(
            {k: np.asarray(v) for k, v in meta["env_normalizer"].items()}
        )
        self.target_normalizer = TargetNormalizer.from_state(
            {k: np.asarray(v) for k, v in meta["target_normalizer"].items()}
        )
        self.trainer = GenDTTrainer(self.generator, self.config, self.rng)
        if verify_graph:
            # Catches weight/config mismatches (e.g. a changed AR window)
            # that pass load_state_dict but would mis-broadcast at runtime.
            self._verify_generator()
        self._fitted = True
