"""GenDT adversarial training (paper §4.3.5).

The generator is fit by minimizing ``L = L_M + lambda * L_JS``: a mean
squared error term against the real series plus the Jensen-Shannon GAN term
supplied by a single-layer LSTM discriminator that observes the series
together with ``h_avg``, the high-dimensional context representation.  A
small Gaussian-NLL term keeps ResGen's (mu, sigma) head calibrated so that
the learned sigma reflects data uncertainty (needed for the §6.2 uncertainty
decomposition).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from .config import GenDTConfig
from .features import ModelBatch, WindowAssembler
from .generator import GenDTGenerator
from .networks import Discriminator


@dataclass
class TrainingHistory:
    """Per-epoch loss curves."""

    total: List[float] = field(default_factory=list)
    mse: List[float] = field(default_factory=list)
    adversarial: List[float] = field(default_factory=list)
    discriminator: List[float] = field(default_factory=list)
    nll: List[float] = field(default_factory=list)

    def last(self) -> Dict[str, float]:
        return {
            "total": self.total[-1] if self.total else float("nan"),
            "mse": self.mse[-1] if self.mse else float("nan"),
            "adv": self.adversarial[-1] if self.adversarial else float("nan"),
            "disc": self.discriminator[-1] if self.discriminator else float("nan"),
            "nll": self.nll[-1] if self.nll else float("nan"),
        }


class GenDTTrainer:
    """Alternating generator/discriminator optimization over window batches."""

    def __init__(
        self,
        generator: GenDTGenerator,
        config: GenDTConfig,
        rng: np.random.Generator,
        nll_weight: float = 0.1,
    ) -> None:
        self.generator = generator
        self.config = config
        self.rng = rng
        self.nll_weight = nll_weight
        self.g_optimizer = nn.Adam(generator.parameters(), lr=config.lr_generator)
        self.discriminator: Optional[Discriminator] = None
        self.d_optimizer: Optional[nn.Adam] = None
        if config.lambda_adv > 0:
            self.discriminator = Discriminator(
                generator.n_channels, config, rng
            )
            self.d_optimizer = nn.Adam(
                self.discriminator.parameters(), lr=config.lr_discriminator
            )
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def _discriminator_step(self, batch: ModelBatch) -> float:
        assert self.discriminator is not None and self.d_optimizer is not None
        with nn.no_grad():
            fake = self.generator.forward_teacher_forced(batch)
            fake_series = Tensor(fake["output"].numpy())
            h_avg = Tensor(fake["h_avg"].numpy())
        real_logits = self.discriminator(Tensor(batch.target), h_avg)
        fake_logits = self.discriminator(fake_series, h_avg)
        loss = nn.discriminator_loss(real_logits, fake_logits)
        self.d_optimizer.zero_grad()
        loss.backward()
        self.d_optimizer.clip_grad_norm(self.config.grad_clip)
        self.d_optimizer.step()
        return loss.item()

    def _generator_step(self, batch: ModelBatch) -> Dict[str, float]:
        out = self.generator.forward_teacher_forced(batch)
        target = Tensor(batch.target)
        mse = nn.mse_loss(out["output"], target)
        loss = mse
        if "mu" in out:
            # Deep supervision on the base network: the conditional mean must
            # live in G_n/G_a, leaving ResGen a zero-mean residual process.
            # Without this term the base/residual split is unidentifiable
            # under teacher forcing and the base collapses to a constant.
            loss = loss + nn.mse_loss(out["base"], target)
        adv_value = 0.0
        if self.discriminator is not None:
            fake_logits = self.discriminator(out["output"], out["h_avg"])
            adv = nn.generator_adversarial_loss(fake_logits)
            loss = loss + self.config.lambda_adv * adv
            adv_value = adv.item()
        nll_value = 0.0
        if "mu" in out:
            # Keep the Gaussian head calibrated against the residual the
            # base network leaves behind.
            residual_target = target - Tensor(out["base"].numpy())
            nll = nn.gaussian_nll(out["mu"], out["log_sigma"], residual_target)
            loss = loss + self.nll_weight * nll
            nll_value = nll.item()
        self.g_optimizer.zero_grad()
        loss.backward()
        self.g_optimizer.clip_grad_norm(self.config.grad_clip)
        self.g_optimizer.step()
        return {"total": loss.item(), "mse": mse.item(), "adv": adv_value, "nll": nll_value}

    # ------------------------------------------------------------------
    def fit(
        self,
        batches: Sequence[ModelBatch],
        epochs: Optional[int] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train over pre-assembled minibatches for ``epochs`` passes."""
        if not batches:
            raise ValueError("no training batches")
        epochs = epochs or self.config.epochs
        for epoch in range(epochs):
            order = self.rng.permutation(len(batches))
            epoch_stats = {"total": 0.0, "mse": 0.0, "adv": 0.0, "nll": 0.0, "disc": 0.0}
            for idx in order:
                batch = batches[idx]
                if self.discriminator is not None:
                    for _ in range(self.config.d_steps_per_g_step):
                        epoch_stats["disc"] += self._discriminator_step(batch)
                stats = self._generator_step(batch)
                for key in ("total", "mse", "adv", "nll"):
                    epoch_stats[key] += stats[key]
            n = len(batches)
            self.history.total.append(epoch_stats["total"] / n)
            self.history.mse.append(epoch_stats["mse"] / n)
            self.history.adversarial.append(epoch_stats["adv"] / n)
            self.history.nll.append(epoch_stats["nll"] / n)
            self.history.discriminator.append(
                epoch_stats["disc"] / max(n * self.config.d_steps_per_g_step, 1)
            )
            if verbose:
                print(f"epoch {epoch + 1}/{epochs}: {self.history.last()}")
        return self.history


def make_minibatches(
    assembler: WindowAssembler,
    windows: Sequence,
    minibatch_windows: int,
    rng: np.random.Generator,
) -> List[ModelBatch]:
    """Shuffle windows (grouped by length) and assemble fixed-size batches."""
    by_length: Dict[int, List] = {}
    for window in windows:
        by_length.setdefault(window.length, []).append(window)
    batches: List[ModelBatch] = []
    for length, group in by_length.items():
        order = rng.permutation(len(group))
        for start in range(0, len(group), minibatch_windows):
            chunk = [group[i] for i in order[start : start + minibatch_windows]]
            batches.append(assembler.assemble(chunk, with_target=True))
    return batches
