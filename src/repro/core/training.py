"""GenDT adversarial training (paper §4.3.5).

The generator is fit by minimizing ``L = L_M + lambda * L_JS``: a mean
squared error term against the real series plus the Jensen-Shannon GAN term
supplied by a single-layer LSTM discriminator that observes the series
together with ``h_avg``, the high-dimensional context representation.  A
small Gaussian-NLL term keeps ResGen's (mu, sigma) head calibrated so that
the learned sigma reflects data uncertainty (needed for the §6.2 uncertainty
decomposition).
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from .. import nn
from ..nn.tensor import Tensor
from ..runtime.checkpoint import (
    CheckpointManager,
    capture_trainer_state,
    read_checkpoint,
    resolve_checkpoint,
    restore_trainer_state,
)
from ..runtime.guards import HealthGuard
from .config import GenDTConfig
from .features import ModelBatch, WindowAssembler
from .generator import GenDTGenerator
from .networks import Discriminator


@dataclass
class TrainingHistory:
    """Per-epoch loss curves (plus guard recovery counts)."""

    total: List[float] = field(default_factory=list)
    mse: List[float] = field(default_factory=list)
    adversarial: List[float] = field(default_factory=list)
    discriminator: List[float] = field(default_factory=list)
    nll: List[float] = field(default_factory=list)
    recoveries: List[int] = field(default_factory=list)

    def last(self) -> Dict[str, float]:
        return {
            "total": self.total[-1] if self.total else float("nan"),
            "mse": self.mse[-1] if self.mse else float("nan"),
            "adv": self.adversarial[-1] if self.adversarial else float("nan"),
            "disc": self.discriminator[-1] if self.discriminator else float("nan"),
            "nll": self.nll[-1] if self.nll else float("nan"),
        }


class GenDTTrainer:
    """Alternating generator/discriminator optimization over window batches."""

    def __init__(
        self,
        generator: GenDTGenerator,
        config: GenDTConfig,
        rng: np.random.Generator,
        nll_weight: float = 0.1,
    ) -> None:
        self.generator = generator
        self.config = config
        self.rng = rng
        self.nll_weight = nll_weight
        self.g_optimizer = nn.Adam(generator.parameters(), lr=config.lr_generator)
        self.discriminator: Optional[Discriminator] = None
        self.d_optimizer: Optional[nn.Adam] = None
        if config.lambda_adv > 0:
            self.discriminator = Discriminator(
                generator.n_channels, config, rng
            )
            self.d_optimizer = nn.Adam(
                self.discriminator.parameters(), lr=config.lr_discriminator
            )
        self.history = TrainingHistory()

    # ------------------------------------------------------------------
    def _discriminator_step(self, batch: ModelBatch) -> float:
        assert self.discriminator is not None and self.d_optimizer is not None
        with nn.no_grad():
            fake = self.generator.forward_teacher_forced(batch)
            fake_series = Tensor(fake["output"].numpy())
            h_avg = Tensor(fake["h_avg"].numpy())
        real_logits = self.discriminator(Tensor(batch.target), h_avg)
        fake_logits = self.discriminator(fake_series, h_avg)
        loss = nn.discriminator_loss(real_logits, fake_logits)
        self.d_optimizer.zero_grad()
        loss.backward()
        self.d_optimizer.clip_grad_norm(self.config.grad_clip)
        self.d_optimizer.step()
        return loss.item()

    def _generator_step(
        self, batch: ModelBatch, guard: Optional[HealthGuard] = None
    ) -> Dict[str, float]:
        out = self.generator.forward_teacher_forced(batch)
        target = Tensor(batch.target)
        mse = nn.mse_loss(out["output"], target)
        loss = mse
        if "mu" in out:
            # Deep supervision on the base network: the conditional mean must
            # live in G_n/G_a, leaving ResGen a zero-mean residual process.
            # Without this term the base/residual split is unidentifiable
            # under teacher forcing and the base collapses to a constant.
            loss = loss + nn.mse_loss(out["base"], target)
        adv_value = 0.0
        if self.discriminator is not None:
            fake_logits = self.discriminator(out["output"], out["h_avg"])
            adv = nn.generator_adversarial_loss(fake_logits)
            loss = loss + self.config.lambda_adv * adv
            adv_value = adv.item()
        nll_value = 0.0
        if "mu" in out:
            # Keep the Gaussian head calibrated against the residual the
            # base network leaves behind.
            residual_target = target - Tensor(out["base"].numpy())
            nll = nn.gaussian_nll(out["mu"], out["log_sigma"], residual_target)
            loss = loss + self.nll_weight * nll
            nll_value = nll.item()
        self.g_optimizer.zero_grad()
        loss.backward()
        if guard is None or guard.inspect_gradients(self.g_optimizer):
            self.g_optimizer.clip_grad_norm(self.config.grad_clip)
            self.g_optimizer.step()
        # else: gradients are non-finite — skip the update; the guard's
        # after_step() rolls the step back and backs off the learning rate.
        return {"total": loss.item(), "mse": mse.item(), "adv": adv_value, "nll": nll_value}

    # ------------------------------------------------------------------
    def fit(
        self,
        batches: Sequence[ModelBatch],
        epochs: Optional[int] = None,
        verbose: bool = False,
        guard: Optional[HealthGuard] = None,
        checkpoint_every: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        keep_last: int = 3,
        resume_from: Optional[Union[str, Path]] = None,
        checkpoint_meta: Optional[Dict[str, Any]] = None,
        detect_anomaly: bool = False,
    ) -> TrainingHistory:
        """Train over pre-assembled minibatches for ``epochs`` passes.

        Args:
            guard: optional :class:`HealthGuard` watching every step for
                NaN/Inf and divergence, rolling back to the last-good
                snapshot on a trip.
            detect_anomaly: run the whole epoch loop under
                :func:`repro.nn.detect_anomaly`, raising
                :class:`~repro.runtime.errors.NumericalAnomalyError` at the
                op that first produces a NaN/Inf (forward or backward)
                instead of letting it surface later as a bad loss.  Off by
                default; when off the loop is bit-identical to a build
                without anomaly hooks.
            checkpoint_every: write an atomic checkpoint every N epochs
                into ``checkpoint_dir`` (both must be given together).
            keep_last: rotating retention for epoch checkpoints.
            resume_from: a checkpoint file (or a directory, resolved to its
                newest checkpoint) to restore before training; the run then
                continues bit-exactly where the checkpointed run stopped,
                because the shared RNG state is restored too.
            checkpoint_meta: extra metadata merged into each checkpoint
                (e.g. model-level normalizer state from :class:`GenDT`).
        """
        if not batches:
            raise ValueError("no training batches")
        epochs = epochs or self.config.epochs
        manager: Optional[CheckpointManager] = None
        if checkpoint_every is not None and checkpoint_every > 0:
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
            manager = CheckpointManager(checkpoint_dir, keep_last=keep_last)
        start_epoch = 0
        if resume_from is not None:
            arrays, meta = read_checkpoint(resolve_checkpoint(resume_from))
            start_epoch = restore_trainer_state(self, arrays, meta)
        if guard is not None:
            guard.attach(
                modules=[self.generator, self.discriminator],
                optimizers=[self.g_optimizer, self.d_optimizer],
            )
        anomaly_scope = nn.detect_anomaly() if detect_anomaly else nullcontext()
        with anomaly_scope:
            for epoch in range(start_epoch, epochs):
                order = self.rng.permutation(len(batches))
                epoch_stats = {"total": 0.0, "mse": 0.0, "adv": 0.0, "nll": 0.0, "disc": 0.0}
                healthy_steps = 0
                disc_steps = 0
                recoveries_before = guard.recoveries if guard is not None else 0
                for idx in order:
                    batch = batches[idx]
                    if guard is not None:
                        guard.begin_step()
                    disc_accum = 0.0
                    if self.discriminator is not None:
                        for _ in range(self.config.d_steps_per_g_step):
                            disc_accum += self._discriminator_step(batch)
                    stats = self._generator_step(batch, guard=guard)
                    if guard is not None and guard.after_step(stats["total"]):
                        continue  # rolled back: this step never happened
                    for key in ("total", "mse", "adv", "nll"):
                        epoch_stats[key] += stats[key]
                    epoch_stats["disc"] += disc_accum
                    healthy_steps += 1
                    disc_steps += self.config.d_steps_per_g_step
                n = max(healthy_steps, 1)
                self.history.total.append(epoch_stats["total"] / n)
                self.history.mse.append(epoch_stats["mse"] / n)
                self.history.adversarial.append(epoch_stats["adv"] / n)
                self.history.nll.append(epoch_stats["nll"] / n)
                self.history.discriminator.append(epoch_stats["disc"] / max(disc_steps, 1))
                self.history.recoveries.append(
                    (guard.recoveries - recoveries_before) if guard is not None else 0
                )
                if verbose:
                    print(f"epoch {epoch + 1}/{epochs}: {self.history.last()}")
                if manager is not None and (epoch + 1) % checkpoint_every == 0:
                    arrays, meta = capture_trainer_state(self, epoch, extra_meta=checkpoint_meta)
                    manager.save(arrays, meta, epoch)
        return self.history


def make_minibatches(
    assembler: WindowAssembler,
    windows: Sequence,
    minibatch_windows: int,
    rng: np.random.Generator,
) -> List[ModelBatch]:
    """Shuffle windows (grouped by length) and assemble fixed-size batches."""
    by_length: Dict[int, List] = {}
    for window in windows:
        by_length.setdefault(window.length, []).append(window)
    batches: List[ModelBatch] = []
    for length, group in by_length.items():
        order = rng.permutation(len(group))
        for start in range(0, len(group), minibatch_windows):
            chunk = [group[i] for i in order[start : start + minibatch_windows]]
            batches.append(assembler.assemble(chunk, with_target=True))
    return batches
