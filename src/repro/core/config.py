"""GenDT configuration.

Defaults follow the paper (§A.3): batch length L = 50, sliding step Δt = 5
(any step in [1, 15] behaves similarly), hidden size H = 100 for both the
GNN-node and aggregation LSTMs, stochastic-layer noise intensity
a_h = a_c = 2, adversarial loss weight λ = 0.1.  Tests and CI-scale
benchmarks construct smaller configs; the physics does not change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple


@dataclass
class GenDTConfig:
    """Hyper-parameters of the GenDT generator and its training."""

    # Batching (paper §4.3.3)
    batch_len: Optional[int] = 50        #: L; None => whole-series one-shot (ablation)
    train_step: int = 5                  #: Δt for overlapping training windows

    # Architecture (paper §4.3.1)
    hidden_size: int = 100               #: H for GNN-node and aggregation LSTMs
    n_noise_node: int = 2                #: N_z0, denoising noise on the node net
    n_noise_resgen: int = 4              #: N_z1, stochastic noise into ResGen
    resgen_hidden: Tuple[int, ...] = (64, 64, 32)
    resgen_ar_window: int = 3            #: m recent KPI values fed back (autoregression)
    resgen_dropout: float = 0.2

    # Stochastic layers (paper §4.3.4, §A.2)
    use_stochastic_layers: bool = True
    noise_intensity_h: float = 2.0       #: a_h
    noise_intensity_c: float = 2.0       #: a_c

    # Components (ablation switches, paper Table 12)
    use_resgen: bool = True

    # Training (paper §4.3.5)
    lambda_adv: float = 0.1              #: λ weight of the GAN loss
    lr_generator: float = 1e-3
    lr_discriminator: float = 1e-3
    epochs: int = 30
    minibatch_windows: int = 8           #: windows per gradient step
    grad_clip: float = 5.0
    d_steps_per_g_step: int = 1

    # Context scope
    max_cells: int = 8                   #: cap on N_b per window

    def validate(self) -> None:
        if self.batch_len is not None and self.batch_len < 2:
            raise ValueError("batch_len must be >= 2 (or None for one-shot)")
        if self.train_step < 1:
            raise ValueError("train_step must be >= 1")
        if self.hidden_size < 1:
            raise ValueError("hidden_size must be positive")
        if not 0.0 <= self.resgen_dropout < 1.0:
            raise ValueError("dropout must be in [0, 1)")
        if self.lambda_adv < 0:
            raise ValueError("lambda_adv must be non-negative")
        if self.resgen_ar_window < 1:
            raise ValueError("resgen_ar_window must be >= 1")


def small_config(**overrides) -> GenDTConfig:
    """A reduced configuration for tests and CI-scale benchmarks.

    Keeps every mechanism active (stochastic layers, ResGen, GAN loss,
    batching) but shrinks widths and epochs so the pure-numpy substrate
    trains in seconds.
    """
    config = GenDTConfig(
        batch_len=30,
        train_step=10,
        hidden_size=24,
        resgen_hidden=(32, 32, 16),
        epochs=8,
        minibatch_windows=8,
        max_cells=6,
    )
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise AttributeError(f"unknown config field: {key}")
        setattr(config, key, value)
    config.validate()
    return config
