"""Assembly of context windows into fixed-shape model arrays.

Windows carry variable numbers of visible cells (N_b changes along a
trajectory); the model consumes fixed-shape batches.  ``assemble`` pads every
window to ``max_cells`` and returns a validity mask so the aggregation step
can mean-pool over real cells only (the paper's ``h_avg``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..context.normalize import (
    CellFeatureTransform,
    EnvFeatureNormalizer,
    N_CELL_FEATURES,
    TargetNormalizer,
)
from ..context.windows import ContextWindow

#: Kinematic conditioning columns appended to the environment features:
#: per-step speed and the sampling interval.  They are derivable from the
#: input trajectory itself (no extra measurement needed) and tell ResGen how
#: fast the residual process decorrelates per sample.
N_KINEMATIC_FEATURES = 2


@dataclass
class ModelBatch:
    """Fixed-shape arrays for a minibatch of windows.

    Attributes:
        cell_x: [B, max_cells, L, N_CELL_FEATURES] transformed cell features
            (zero-padded beyond each window's real cell count).
        cell_mask: [B, max_cells] — 1 for real cells, 0 for padding.
        env: [B, L, 26 + N_KINEMATIC_FEATURES] normalized environment
            context plus kinematic conditioning.
        target: [B, L, N_ch] normalized targets, or None at generation time.
        scenarios: per-window scenario tags (for per-scenario evaluation).
    """

    cell_x: np.ndarray
    cell_mask: np.ndarray
    env: np.ndarray
    target: Optional[np.ndarray]
    scenarios: List[str]

    @property
    def n_windows(self) -> int:
        return self.cell_x.shape[0]

    @property
    def length(self) -> int:
        return self.cell_x.shape[2]


class WindowAssembler:
    """Applies normalizers and pads windows into :class:`ModelBatch` arrays."""

    def __init__(
        self,
        cell_transform: CellFeatureTransform,
        env_normalizer: EnvFeatureNormalizer,
        target_normalizer: TargetNormalizer,
        max_cells: int,
    ) -> None:
        self.cell_transform = cell_transform
        self.env_normalizer = env_normalizer
        self.target_normalizer = target_normalizer
        self.max_cells = max_cells

    def assemble(self, windows: Sequence[ContextWindow], with_target: bool = True) -> ModelBatch:
        if not windows:
            raise ValueError("no windows to assemble")
        length = windows[0].length
        if any(w.length != length for w in windows):
            raise ValueError("all windows in a batch must share their length")
        batch = len(windows)
        cell_x = np.zeros((batch, self.max_cells, length, N_CELL_FEATURES))
        cell_mask = np.zeros((batch, self.max_cells))
        n_env = windows[0].env_features.shape[-1] + N_KINEMATIC_FEATURES
        env = np.empty((batch, length, n_env))
        target: Optional[np.ndarray] = None
        if with_target:
            if any(w.target is None for w in windows):
                raise ValueError("windows lack targets")
            n_ch = windows[0].target.shape[-1]
            target = np.empty((batch, length, n_ch))
        for i, window in enumerate(windows):
            features = self.cell_transform(window, window.ue_lat, window.ue_lon)
            n_cells = min(window.n_cells, self.max_cells)
            cell_x[i, :n_cells] = features[:, :n_cells].transpose(1, 0, 2)
            cell_mask[i, :n_cells] = 1.0
            speed = window.ue_speed
            if len(speed) != length:
                speed = np.zeros(length)
            kinematics = np.column_stack(
                [speed / 30.0, np.full(length, window.interval_s / 5.0)]
            )
            env[i] = np.concatenate(
                [self.env_normalizer(window.env_features), kinematics], axis=-1
            )
            if with_target:
                target[i] = self.target_normalizer.normalize(window.target)
        return ModelBatch(
            cell_x=cell_x,
            cell_mask=cell_mask,
            env=env,
            target=target,
            scenarios=[w.scenario for w in windows],
        )


def recent_values_matrix(series: np.ndarray, ar_window: int, initial: Optional[np.ndarray] = None) -> np.ndarray:
    """Teacher-forcing AR inputs: for each t, the previous ``m`` values.

    Args:
        series: [B, L, N_ch] (normalized) target series.
        ar_window: m.
        initial: [B, m, N_ch] values preceding the window (e.g. the tail of
            the previous generation batch); zeros if omitted.

    Returns:
        [B, L, m * N_ch] where row t holds ``x[t-m], ..., x[t-1]`` flattened.
    """
    b, length, n_ch = series.shape
    if initial is None:
        initial = np.zeros((b, ar_window, n_ch))
    if initial.shape != (b, ar_window, n_ch):
        raise ValueError("initial must be [B, m, N_ch]")
    padded = np.concatenate([initial, series], axis=1)
    out = np.empty((b, length, ar_window * n_ch))
    for t in range(length):
        out[:, t] = padded[:, t : t + ar_window].reshape(b, ar_window * n_ch)
    return out
