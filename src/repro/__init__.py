"""GenDT reproduction: generative modeling of drive-test radio KPI series.

Reproduces *GenDT: Mobile Network Drive Testing Made Efficient with
Generative Modeling* (Sun, Xu, Marina, Benn — CoNEXT '22) as a
self-contained Python library, including every substrate the paper depends
on: a numpy neural-network engine, an LTE radio/propagation simulator, a
procedural environment-context world, the GenDT conditional generative model,
all evaluation baselines, fidelity metrics, and the downstream use cases.

Quickstart::

    from repro.datasets import make_dataset_a, split_per_scenario
    from repro.core import GenDT, small_config
    import numpy as np

    dataset = make_dataset_a(samples_per_scenario=1500)
    split = split_per_scenario(dataset, 0.3, 300.0, np.random.default_rng(0))
    model = GenDT(dataset.region, kpis=["rsrp", "rsrq"], config=small_config())
    model.fit(split.train)
    series = model.generate(split.test[0].trajectory)   # [T, 2], dBm / dB
"""

__version__ = "1.0.0"

from . import nn, geo, world, radio, context, datasets, runtime, core, baselines, metrics, usecases, eval

__all__ = [
    "nn",
    "geo",
    "world",
    "radio",
    "context",
    "datasets",
    "runtime",
    "core",
    "baselines",
    "metrics",
    "usecases",
    "eval",
    "__version__",
]
