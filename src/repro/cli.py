"""Command-line interface: the operator's "desktop tool" (paper Figure 14).

Subcommands:

* ``simulate`` — synthesize a drive-test dataset and print its Table-1/2
  style statistics;
* ``train`` — fit a GenDT model on a dataset and save the checkpoint;
* ``generate`` — load a checkpoint and generate KPI series for a fresh
  route in the dataset's region (written as CSV);
* ``generate-campaign`` — resilient batch generation over many routes via
  the serving runtime (:mod:`repro.serving`): per-route quarantine,
  deadlines, circuit breaker, degradation ladder; JSONL envelopes out;
* ``evaluate`` — fidelity of a checkpoint against a held-out split;
* ``lint`` — run the project static-analysis engine (see
  ``repro/analysis/README.md``) over source trees.

All commands are deterministic under ``--seed``.  Run
``python -m repro <command> --help`` for options.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7, help="master seed")
    parser.add_argument(
        "--dataset", choices=("a", "b"), default="a", help="which synthetic dataset"
    )
    parser.add_argument(
        "--samples", type=int, default=900, help="samples per scenario"
    )


def _make_dataset(args):
    from .datasets import make_dataset_a, make_dataset_b

    if args.dataset == "a":
        return make_dataset_a(seed=args.seed, samples_per_scenario=args.samples)
    return make_dataset_b(seed=args.seed, samples_per_scenario=args.samples)


def _split(dataset, seed: int):
    from .datasets import split_per_scenario

    return split_per_scenario(dataset, 0.3, 200.0, np.random.default_rng(seed))


def cmd_simulate(args) -> int:
    from .datasets import dataset_stats
    from .eval import format_table

    dataset = _make_dataset(args)
    stats = dataset_stats(
        {s: dataset.by_scenario(s) for s in dataset.scenarios()}
    )
    rows = [list(s.as_dict().values()) for s in stats]
    headers = list(stats[0].as_dict().keys())
    print(format_table(headers, rows, title=f"dataset {args.dataset.upper()} statistics"))
    return 0


def cmd_train(args) -> int:
    from .core import GenDT, small_config
    from .runtime import CheckpointManager, HealthGuard

    if args.epochs <= 0:
        print("no epochs run")
        return 0
    dataset = _make_dataset(args)
    split = _split(dataset, args.seed)
    kpis = args.kpis.split(",")
    config = small_config(
        epochs=args.epochs, hidden_size=args.hidden, batch_len=25, train_step=5,
        minibatch_windows=16,
    )
    model = GenDT(dataset.region, kpis=kpis, config=config, seed=args.seed)

    checkpoint_dir = args.checkpoint_dir
    if checkpoint_dir is None and args.checkpoint_every > 0:
        checkpoint_dir = f"{args.out}.ckpts"
    resume_from = None
    if args.resume:
        if checkpoint_dir is None:
            print("--resume requires --checkpoint-every (or --checkpoint-dir)")
            return 2
        latest = CheckpointManager(checkpoint_dir, keep_last=args.keep_last).latest()
        if latest is None:
            print(f"no checkpoint found in {checkpoint_dir}; training from scratch")
        else:
            print(f"resuming from {latest}")
            resume_from = latest

    guard = HealthGuard() if not args.no_guard else None
    print(f"training GenDT on {len(split.train)} records ({args.epochs} epochs)...")
    history = model.fit(
        split.train,
        verbose=True,
        guard=guard,
        checkpoint_every=args.checkpoint_every or None,
        checkpoint_dir=checkpoint_dir,
        keep_last=args.keep_last,
        resume_from=resume_from,
        detect_anomaly=args.detect_anomaly,
    )
    model.save(args.out)
    if guard is not None and guard.recoveries:
        print(f"guard recovered {guard.recoveries} unhealthy step(s)")
    if not history.mse:
        print(f"saved checkpoint to {args.out} (no epochs run)")
    else:
        print(f"saved checkpoint to {args.out} (final mse={history.mse[-1]:.3f})")
    return 0


def cmd_generate(args) -> int:
    from .core import GenDT, small_config

    dataset = _make_dataset(args)
    kpis = args.kpis.split(",")
    config = small_config(
        epochs=1, hidden_size=args.hidden, batch_len=25, train_step=5
    )
    model = GenDT(dataset.region, kpis=kpis, config=config, seed=args.seed)
    model.load(args.checkpoint)

    rng = np.random.default_rng(args.seed + 1)
    route = dataset.region.roads.random_walk_route(
        rng, args.route_length_m, city=dataset.region.cities[0].name
    )
    trajectory = dataset.region.roads.route_to_trajectory(
        route, args.speed, args.interval, scenario="cli", rng=rng
    )
    series = model.generate(trajectory)

    out = Path(args.out)
    header = "t_s,lat,lon," + ",".join(kpis)
    rows = np.column_stack([trajectory.t, trajectory.lat, trajectory.lon, series])
    np.savetxt(out, rows, delimiter=",", header=header, comments="")
    print(f"generated {len(trajectory)} samples -> {out}")
    return 0


def cmd_generate_campaign(args) -> int:
    import json

    from .baselines.fdas import FDaS
    from .core import GenDT, small_config
    from .serving import CampaignConfig, CampaignRunner

    dataset = _make_dataset(args)
    kpis = args.kpis.split(",")
    config = small_config(
        epochs=1, hidden_size=args.hidden, batch_len=25, train_step=5
    )
    model = GenDT(dataset.region, kpis=kpis, config=config, seed=args.seed)
    model.load(args.checkpoint)

    fdas = None
    if not args.no_fdas:
        split = _split(dataset, args.seed)
        fdas = FDaS(kpis=kpis, seed=args.seed + 2)
        fdas.fit(split.train)

    rng = np.random.default_rng(args.seed + 1)
    trajectories = []
    if args.routes_file:
        routes = json.loads(Path(args.routes_file).read_text(encoding="utf-8"))
        for route in routes:
            waypoints = [(float(lat), float(lon)) for lat, lon in route]
            trajectories.append(
                dataset.region.roads.route_to_trajectory(
                    waypoints, args.speed, args.interval,
                    scenario="campaign", rng=rng,
                )
            )
    else:
        city = dataset.region.cities[0].name
        for _ in range(args.routes):
            route = dataset.region.roads.random_walk_route(
                rng, args.route_length_m, city=city
            )
            trajectories.append(
                dataset.region.roads.route_to_trajectory(
                    route, args.speed, args.interval,
                    scenario="campaign", rng=rng,
                )
            )

    runner = CampaignRunner(
        model,
        fdas=fdas,
        config=CampaignConfig(
            trajectory_deadline_s=args.trajectory_deadline or None,
            campaign_deadline_s=args.campaign_deadline or None,
            max_resamples=args.max_resamples,
            breaker_threshold=args.breaker_threshold,
            seed=args.seed,
        ),
    )
    result = runner.run(trajectories)
    out = Path(args.out)
    result.to_jsonl(out, include_series=args.emit_series)
    summary = result.summary()
    counts = summary["status_counts"]
    levels = summary["level_counts"]
    print(
        f"campaign: {summary['trajectories']} trajectories -> {out} "
        f"(ok={counts['ok']} quarantined={counts['quarantined']} "
        f"deadline={counts['deadline_exceeded']} failed={counts['failed']} "
        f"cancelled={counts['cancelled']}; levels full={levels['full']} "
        f"first_stage={levels['first_stage']} fdas={levels['fdas']}; "
        f"faults={summary['faults']})"
    )
    # Partial results are success; an empty campaign or one where nothing
    # could be served at any level signals failure to the shell.
    served = counts["ok"]
    return 0 if served > 0 else 1


def cmd_evaluate(args) -> int:
    from .core import GenDT, small_config
    from .eval import compare_methods, format_table, average_rows

    dataset = _make_dataset(args)
    split = _split(dataset, args.seed)
    kpis = args.kpis.split(",")
    config = small_config(epochs=1, hidden_size=args.hidden, batch_len=25, train_step=5)
    model = GenDT(dataset.region, kpis=kpis, config=config, seed=args.seed)
    model.load(args.checkpoint)
    on_error = "skip" if args.skip_failures else "raise"
    results = compare_methods(
        {"gendt": model.generate}, split.test, kpis, on_error=on_error
    )
    headers, rows = average_rows(results, kpis)
    print(format_table(headers, rows, title="fidelity on the held-out split"))
    skipped = sum(len(r.failures) for r in results.values())
    if skipped:
        print(f"skipped {skipped} failed generation(s); see logs for details")
    return 0


def cmd_lint(args) -> int:
    from .analysis import main as lint_main

    argv: List[str] = list(args.paths)
    if args.select:
        argv += ["--select", args.select]
    if args.ignore:
        argv += ["--ignore", args.ignore]
    if args.format != "text":
        argv += ["--format", args.format]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def cmd_verify_graph(args) -> int:
    import json

    from .analysis.graph import verify
    from .analysis.graph.registry import seeded_defects, shipped_entries

    entries = shipped_entries()
    if args.list:
        for entry in entries:
            print(f"{entry.name:28s} {entry.description}")
        return 0
    if args.models:
        known = {entry.name for entry in entries}
        unknown = [name for name in args.models if name not in known]
        if unknown:
            print(f"unknown model(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        entries = [entry for entry in entries if entry.name in set(args.models)]

    failures = 0
    results = []
    for entry in entries:
        report = verify(entry.build(args.seed))
        results.append(
            {
                "name": entry.name,
                "module": report.module,
                "method": report.method,
                "ok": report.ok,
                "violations": [str(v) for v in report.violations],
                "dead_params": report.dead_params,
                "severed_params": [list(s) for s in report.severed_params],
                "no_grad_output": report.no_grad_output,
                "bound_dims": report.bound_dims,
            }
        )
        if args.format == "text":
            print(report.format())
        if not report.ok:
            failures += 1

    if args.self_test:
        # Prove the verifier still catches the seeded defect classes: a
        # clean pass on a broken module is itself a gate failure.
        for defect in seeded_defects():
            report = verify(defect.build(args.seed))
            text = report.format()
            detected = not report.ok and defect.expect in text
            results.append(
                {"name": f"defect:{defect.name}", "detected": detected}
            )
            if args.format == "text":
                if detected:
                    print(f"ok    defect {defect.name} detected")
                else:
                    print(f"FAIL  defect {defect.name} NOT detected:")
                    print(text)
            if not detected:
                failures += 1

    if args.format == "json":
        print(json.dumps(results, indent=2))
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GenDT reproduction CLI: simulate, train, generate, evaluate",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="synthesize a dataset, print stats")
    _add_common(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_train = sub.add_parser("train", help="fit GenDT and save a checkpoint")
    _add_common(p_train)
    p_train.add_argument("--kpis", default="rsrp,rsrq")
    p_train.add_argument("--epochs", type=int, default=12)
    p_train.add_argument("--hidden", type=int, default=28)
    p_train.add_argument("--out", default="gendt.npz")
    p_train.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="write an atomic training checkpoint every N epochs (0 = off)",
    )
    p_train.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint directory (default: <out>.ckpts when checkpointing)",
    )
    p_train.add_argument(
        "--keep-last", type=int, default=3,
        help="rotating retention: keep only the newest N checkpoints",
    )
    p_train.add_argument(
        "--resume", action="store_true",
        help="resume from the newest checkpoint in the checkpoint directory",
    )
    p_train.add_argument(
        "--no-guard", action="store_true",
        help="disable the numerical-health guard (NaN/divergence rollback)",
    )
    p_train.add_argument(
        "--detect-anomaly", action="store_true",
        help="train under repro.nn.detect_anomaly: fail fast at the op that "
             "first produces a NaN/Inf, naming it and its call site",
    )
    p_train.set_defaults(func=cmd_train)

    p_gen = sub.add_parser("generate", help="generate KPIs for a fresh route")
    _add_common(p_gen)
    p_gen.add_argument("--kpis", default="rsrp,rsrq")
    p_gen.add_argument("--hidden", type=int, default=28)
    p_gen.add_argument("--checkpoint", required=True)
    p_gen.add_argument("--route-length-m", type=float, default=2000.0)
    p_gen.add_argument("--speed", type=float, default=8.0)
    p_gen.add_argument("--interval", type=float, default=1.0)
    p_gen.add_argument("--out", default="generated.csv")
    p_gen.set_defaults(func=cmd_generate)

    p_camp = sub.add_parser(
        "generate-campaign",
        help="resilient batch generation over many routes (serving runtime)",
    )
    _add_common(p_camp)
    p_camp.add_argument("--kpis", default="rsrp,rsrq")
    p_camp.add_argument("--hidden", type=int, default=28)
    p_camp.add_argument("--checkpoint", required=True)
    p_camp.add_argument(
        "--routes", type=int, default=8,
        help="number of random-walk routes to serve (ignored with --routes-file)",
    )
    p_camp.add_argument(
        "--routes-file", default=None,
        help="JSON file: list of routes, each a list of [lat, lon] waypoints",
    )
    p_camp.add_argument("--route-length-m", type=float, default=2000.0)
    p_camp.add_argument("--speed", type=float, default=8.0)
    p_camp.add_argument("--interval", type=float, default=1.0)
    p_camp.add_argument(
        "--trajectory-deadline", type=float, default=0.0, metavar="S",
        help="wall-clock budget per trajectory in seconds (0 = unlimited)",
    )
    p_camp.add_argument(
        "--campaign-deadline", type=float, default=0.0, metavar="S",
        help="wall-clock budget for the whole campaign (0 = unlimited)",
    )
    p_camp.add_argument(
        "--max-resamples", type=int, default=1,
        help="bounded re-sampling attempts per ladder level on NaN/Inf output",
    )
    p_camp.add_argument(
        "--breaker-threshold", type=int, default=3,
        help="consecutive model faults that open the circuit breaker",
    )
    p_camp.add_argument(
        "--no-fdas", action="store_true",
        help="disable the FDaS fallback rung of the degradation ladder",
    )
    p_camp.add_argument(
        "--emit-series", action="store_true",
        help="embed full generated series in the JSONL envelopes",
    )
    p_camp.add_argument("--out", default="campaign.jsonl")
    p_camp.set_defaults(func=cmd_generate_campaign)

    p_eval = sub.add_parser("evaluate", help="fidelity of a checkpoint")
    _add_common(p_eval)
    p_eval.add_argument("--kpis", default="rsrp,rsrq")
    p_eval.add_argument("--hidden", type=int, default=28)
    p_eval.add_argument("--checkpoint", required=True)
    p_eval.add_argument(
        "--skip-failures", action="store_true",
        help="survive individual generation failures instead of aborting "
             "the sweep (failures are counted and logged)",
    )
    p_eval.set_defaults(func=cmd_evaluate)

    p_lint = sub.add_parser("lint", help="run the project static-analysis engine")
    p_lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    p_lint.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    p_lint.add_argument(
        "--ignore", default=None, metavar="RULES",
        help="comma-separated rule IDs to skip (applied after --select)",
    )
    p_lint.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="violation output format (default: text)",
    )
    p_lint.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    p_lint.set_defaults(func=cmd_lint)

    p_verify = sub.add_parser(
        "verify-graph",
        help="symbolically verify model graphs (shape/dtype contracts + "
             "gradient-flow audit)",
    )
    p_verify.add_argument(
        "models", nargs="*", metavar="MODEL",
        help="registry names to verify (default: every shipped model)",
    )
    p_verify.add_argument("--seed", type=int, default=0, help="builder seed")
    p_verify.add_argument(
        "--self-test", action="store_true",
        help="also verify the seeded-defect fixtures are still detected",
    )
    p_verify.add_argument(
        "--list", action="store_true", help="list registry model names and exit"
    )
    p_verify.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report output format (default: text)",
    )
    p_verify.set_defaults(func=cmd_verify_graph)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
