"""Input validation at the generation boundary.

``GenDT.generate`` consumes arbitrary caller-supplied trajectories.  A NaN
coordinate or a non-monotonic clock would otherwise surface deep inside the
context pipeline as an inscrutable shape or numerics error; here it is
rejected up front with :class:`ContextValidationError` carrying the index of
the first offending sample.

Zero-visible-cell timesteps are *not* an error: the context extractor
already falls back to the single nearest cell when a window sees no cell
within ``d_s`` (a coverage hole), and a fully empty cell set degrades to an
all-zero ``h_avg`` through the masked mean (the mask zeroes every cell and
the pooled representation collapses to the environment-driven base).  This
module documents and enforces that contract: :func:`validate_windows`
annotates such windows instead of letting them become shape errors.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..geo.trajectory import Trajectory
from .errors import ContextValidationError


def _first_bad_index(mask: np.ndarray) -> int:
    bad = np.nonzero(mask)[0]
    return int(bad[0]) if len(bad) else -1


def validate_trajectory(trajectory: Trajectory) -> None:
    """Sanity-check a trajectory before context extraction.

    Checks: non-empty, finite timestamps and coordinates, strictly
    increasing timestamps, latitude/longitude within WGS-84 bounds.

    Raises:
        ContextValidationError: with ``index`` set to the first offending
            sample (-1 for whole-trajectory problems such as emptiness).
    """
    if len(trajectory) == 0:
        raise ContextValidationError("empty trajectory (no samples)", index=-1)
    t = np.asarray(trajectory.t, dtype=float)
    lat = np.asarray(trajectory.lat, dtype=float)
    lon = np.asarray(trajectory.lon, dtype=float)
    if not np.all(np.isfinite(t)):
        raise ContextValidationError(
            "non-finite timestamp", index=_first_bad_index(~np.isfinite(t))
        )
    bad_coord = ~(np.isfinite(lat) & np.isfinite(lon))
    if np.any(bad_coord):
        raise ContextValidationError(
            "non-finite latitude/longitude", index=_first_bad_index(bad_coord)
        )
    if len(t) >= 2:
        steps = np.diff(t)
        if np.any(steps <= 0):
            # +1: the *second* sample of the offending pair is the culprit.
            raise ContextValidationError(
                "timestamps not strictly increasing",
                index=_first_bad_index(steps <= 0) + 1,
            )
    out_of_range = (np.abs(lat) > 90.0) | (np.abs(lon) > 180.0)
    if np.any(out_of_range):
        raise ContextValidationError(
            "latitude/longitude outside WGS-84 bounds",
            index=_first_bad_index(out_of_range),
        )


def validate_route(route_latlon: Sequence) -> None:
    """Reject empty or non-finite waypoint routes before trajectory building."""
    if len(route_latlon) == 0:
        raise ContextValidationError("empty route (no waypoints)", index=-1)
    points = np.asarray(route_latlon, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ContextValidationError("route must be a sequence of (lat, lon) pairs")
    bad = ~np.all(np.isfinite(points), axis=1)
    if np.any(bad):
        raise ContextValidationError(
            "non-finite route waypoint", index=_first_bad_index(bad)
        )


def validate_windows(windows: Sequence) -> List[int]:
    """Check assembled context windows; returns indices of empty-cell windows.

    A window whose visible-cell set is empty is tolerated (see module
    docstring for the degradation contract) but reported, so callers can log
    the coverage hole.  Non-finite context features are fatal.

    Raises:
        ContextValidationError: on non-finite cell or environment features,
            with ``index`` set to the window position.
    """
    empty: List[int] = []
    for i, window in enumerate(windows):
        if window.n_cells == 0:
            empty.append(i)
        elif not np.all(np.isfinite(window.cell_features)):
            raise ContextValidationError(
                "non-finite cell context features", index=i
            )
        if not np.all(np.isfinite(window.env_features)):
            raise ContextValidationError(
                "non-finite environment context features", index=i
            )
    return empty
