"""Structured exception taxonomy for the fault-tolerant runtime.

Callers distinguish *retryable* failures (a measurement pass that timed out,
a transient simulator error) from *fatal* ones (a checkpoint whose checksum
does not verify, a training run that keeps diverging after every recovery
attempt).  Everything the runtime raises derives from
:class:`GenDTRuntimeError`, so ``except GenDTRuntimeError`` catches the whole
family without swallowing programming errors.
"""

from __future__ import annotations

from typing import Optional


class GenDTRuntimeError(RuntimeError):
    """Base class for all runtime-layer failures."""


class DivergenceError(GenDTRuntimeError):
    """Training health could not be restored within ``max_recoveries``.

    Raised by :class:`~repro.runtime.guards.HealthGuard` after it has
    exhausted its rollback budget; the trainer's parameters are left at the
    last-good snapshot so the caller can still checkpoint or inspect them.
    """

    def __init__(self, message: str, step: int = -1, recoveries: int = 0) -> None:
        super().__init__(message)
        self.step = step
        self.recoveries = recoveries


class CheckpointCorruptError(GenDTRuntimeError):
    """A checkpoint failed structural or checksum verification on load."""

    def __init__(self, message: str, path: Optional[str] = None) -> None:
        super().__init__(message if path is None else f"{path}: {message}")
        self.path = path


class ContextValidationError(GenDTRuntimeError):
    """Generation-boundary input failed validation.

    ``index`` points at the first offending sample (or -1 when the problem
    is not tied to a single sample, e.g. an empty trajectory).
    """

    def __init__(self, message: str, index: int = -1) -> None:
        super().__init__(message)
        self.index = index


class MeasurementError(GenDTRuntimeError):
    """A measurement campaign step failed (possibly after retries).

    ``attempts`` records how many times the measurement was tried before
    giving up; the triggering exception is chained as ``__cause__``.
    """

    def __init__(self, message: str, area: int = -1, attempts: int = 0) -> None:
        super().__init__(message)
        self.area = area
        self.attempts = attempts


class DeadlineExceeded(GenDTRuntimeError):
    """A wall-clock budget expired mid-generation.

    ``scope`` names which budget tripped (``"trajectory"`` or
    ``"campaign"``); ``budget_s``/``elapsed_s`` record the configured budget
    and the time actually consumed when the deadline was detected.  The
    serving runner converts this into a clean partial result instead of
    letting it escape the campaign.
    """

    def __init__(
        self,
        message: str,
        scope: str = "trajectory",
        budget_s: float = float("nan"),
        elapsed_s: float = float("nan"),
    ) -> None:
        super().__init__(message)
        self.scope = scope
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class CircuitOpenError(GenDTRuntimeError):
    """The generation circuit breaker is open; the model is not callable.

    ``cooldown_remaining_s`` says how long until the breaker will admit a
    half-open probe.  The serving runner reacts by demoting straight to the
    model-free FDaS rung of the degradation ladder.
    """

    def __init__(self, message: str, cooldown_remaining_s: float = 0.0) -> None:
        super().__init__(message)
        self.cooldown_remaining_s = cooldown_remaining_s


class GenerationFaultError(GenDTRuntimeError):
    """One generation attempt failed (injected or real).

    ``trajectory``/``window`` locate the fault within a campaign (−1 when
    unknown); ``kind`` is a machine-readable fault class (e.g.
    ``"exception"``, ``"non_finite_output"``).
    """

    def __init__(
        self,
        message: str,
        trajectory: int = -1,
        window: int = -1,
        kind: str = "exception",
    ) -> None:
        super().__init__(message)
        self.trajectory = trajectory
        self.window = window
        self.kind = kind


class GraphContractError(GenDTRuntimeError):
    """A model graph failed symbolic verification (see repro.analysis.graph).

    Raised at *definition/load time* — before any real compute — when a
    traced module violates its ``@contract`` shape/dtype declaration, an op
    performs an accidental broadcast, or the gradient-flow audit finds dead
    or severed parameters.  ``module_path`` is the dotted location inside
    the traced module tree (e.g. ``GenDTGenerator.resgen.mlp``), ``op`` the
    offending tensor operation or contract role, and ``expected``/``actual``
    the rendered symbolic shapes.
    """

    def __init__(
        self,
        message: str,
        module_path: Optional[str] = None,
        op: Optional[str] = None,
        expected: Optional[str] = None,
        actual: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.module_path = module_path
        self.op = op
        self.expected = expected
        self.actual = actual


class NumericalAnomalyError(GenDTRuntimeError):
    """A NaN/Inf surfaced on the autodiff tape under ``detect_anomaly``.

    Raised by :mod:`repro.nn.anomaly` when anomaly mode is active and a
    forward output or a backward gradient contains non-finite values.
    ``op`` is the tensor operation that produced (forward) or backpropagated
    through (backward) the offending value, ``site`` is the ``file:line`` of
    the code that invoked it, and ``module_chain`` lists the enclosing
    :class:`~repro.nn.Module` classes, outermost last.
    """

    def __init__(
        self,
        message: str,
        op: Optional[str] = None,
        site: Optional[str] = None,
        phase: str = "forward",
    ) -> None:
        super().__init__(message)
        self.op = op
        self.site = site
        self.phase = phase
        self.module_chain: list = []

    def __str__(self) -> str:
        base = super().__str__()
        if self.module_chain:
            return f"{base} [module path: {' -> '.join(self.module_chain)}]"
        return base
