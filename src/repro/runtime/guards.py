"""Numerical-health guards for the training loop.

GAN training on KPI series occasionally goes off the rails — a NaN sneaks
through an ill-conditioned Gaussian NLL, or the adversarial term explodes.
Without protection one such step poisons every parameter and the whole run
is lost.  :class:`HealthGuard` watches each optimization step for

* non-finite losses,
* non-finite gradients (checked *before* the optimizer applies them),
* non-finite parameters after the update,
* divergence: the loss exploding relative to a rolling median baseline,

and on any trip rolls the trainer back to the last-good snapshot of
parameters **and** optimizer state, then backs off the learning rates by
``lr_backoff`` so the same step is unlikely to blow up again.  After
``max_recoveries`` rollbacks it gives up and raises
:class:`~repro.runtime.errors.DivergenceError` — with the trainer left at
the last-good snapshot, so a checkpoint written afterwards is still sane.

A deterministic fault-injection hook (:meth:`HealthGuard.inject_fault`)
forces NaN losses, corrupted gradients, or exploding losses at a chosen
step; the test suite uses it to exercise every recovery path without
relying on real numerical accidents.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence

import numpy as np

from .errors import DivergenceError

#: Fault kinds understood by :meth:`HealthGuard.inject_fault`.
FAULT_KINDS = ("nan_loss", "corrupt_grad", "explode_loss")


@dataclass
class GuardEvent:
    """One guard intervention, for post-mortems and tests."""

    step: int
    kind: str  # "nan_loss" | "nonfinite_grad" | "nonfinite_param" | "divergence"
    action: str  # "rollback" | "fatal"
    loss: float
    lr_after: float


@dataclass
class _Snapshot:
    modules: List[Dict[str, np.ndarray]] = field(default_factory=list)
    optimizers: List[Dict[str, np.ndarray]] = field(default_factory=list)


class HealthGuard:
    """Per-step numerical watchdog with rollback-and-backoff recovery.

    Args:
        max_recoveries: rollback budget for one ``fit`` call; the next trip
            beyond it raises :class:`DivergenceError`.
        lr_backoff: multiplicative learning-rate decay applied to every
            attached optimizer on each rollback.
        divergence_factor: a finite loss larger than ``divergence_factor``
            times the rolling median of recent healthy losses counts as
            divergence.
        baseline_window: number of recent healthy losses in the rolling
            baseline.
        min_baseline: healthy steps required before divergence detection
            arms (early training is legitimately noisy).
        snapshot_every: take a last-good snapshot every N healthy steps.
    """

    def __init__(
        self,
        max_recoveries: int = 3,
        lr_backoff: float = 0.5,
        divergence_factor: float = 25.0,
        baseline_window: int = 32,
        min_baseline: int = 5,
        snapshot_every: int = 1,
    ) -> None:
        if max_recoveries < 0:
            raise ValueError("max_recoveries must be >= 0")
        if not 0 < lr_backoff <= 1:
            raise ValueError("lr_backoff must be in (0, 1]")
        if divergence_factor <= 1:
            raise ValueError("divergence_factor must exceed 1")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.max_recoveries = max_recoveries
        self.lr_backoff = lr_backoff
        self.divergence_factor = divergence_factor
        self.min_baseline = min_baseline
        self.snapshot_every = snapshot_every
        self.events: List[GuardEvent] = []
        self.recoveries = 0
        self._losses: Deque[float] = deque(maxlen=baseline_window)
        self._injections: List[Dict] = []
        self._modules: List = []
        self._optimizers: List = []
        self._snapshot: Optional[_Snapshot] = None
        self._step = -1
        self._healthy_steps = 0
        self._grad_fault = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, modules: Sequence, optimizers: Sequence) -> None:
        """Bind the guard to the modules/optimizers it protects.

        Called by ``GenDTTrainer.fit``; takes the initial snapshot so a
        fault on the very first step can still roll back.
        """
        self._modules = [m for m in modules if m is not None]
        self._optimizers = [o for o in optimizers if o is not None]
        self._step = -1
        self._healthy_steps = 0
        self._grad_fault = False
        self._take_snapshot()

    def inject_fault(self, kind: str, at_step: int) -> None:
        """Schedule a deterministic fault at ``at_step`` (0-based, per fit)."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
        self._injections.append({"kind": kind, "at_step": int(at_step)})

    def _pop_injection(self, kind: str) -> bool:
        for i, injection in enumerate(self._injections):
            if injection["kind"] == kind and injection["at_step"] == self._step:
                del self._injections[i]
                return True
        return False

    # ------------------------------------------------------------------
    # Per-step protocol (driven by the trainer)
    # ------------------------------------------------------------------
    def begin_step(self) -> int:
        """Advance to the next optimization step; returns its index."""
        self._step += 1
        self._grad_fault = False
        return self._step

    def inspect_gradients(self, optimizer) -> bool:
        """Check (and possibly tamper with) gradients post-backward.

        Applies a scheduled ``corrupt_grad`` injection, then scans every
        gradient for NaN/Inf.  Returns ``False`` when the optimizer step
        must be skipped; :meth:`after_step` will then roll back.
        """
        if self._pop_injection("corrupt_grad"):
            for param in optimizer.params:
                if param.grad is not None:
                    param.grad[...] = np.nan  # repro: noqa[TEN001] (deliberate fault injection)
                    break
        for param in optimizer.params:
            if param.grad is not None and not np.all(np.isfinite(param.grad)):
                self._grad_fault = True
                return False
        return True

    def after_step(self, loss_value: float) -> bool:
        """Health-check the finished step; returns True if it was rolled back."""
        if self._pop_injection("nan_loss"):
            loss_value = float("nan")
        if self._pop_injection("explode_loss"):
            baseline = self._baseline() or 1.0
            loss_value = baseline * self.divergence_factor * 1e6
        kind = self._diagnose(loss_value)
        if kind is None:
            self._losses.append(float(loss_value))
            self._healthy_steps += 1
            if self._healthy_steps % self.snapshot_every == 0:
                self._take_snapshot()
            return False
        self._recover(kind, loss_value)
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _baseline(self) -> Optional[float]:
        if len(self._losses) < self.min_baseline:
            return None
        return float(np.median(self._losses))

    def _diagnose(self, loss_value: float) -> Optional[str]:
        if self._grad_fault:
            return "nonfinite_grad"
        if not np.isfinite(loss_value):
            return "nan_loss"
        for module in self._modules:
            for param in module.parameters():
                if not np.all(np.isfinite(param.data)):
                    return "nonfinite_param"
        baseline = self._baseline()
        if baseline is not None and abs(loss_value) > self.divergence_factor * max(
            abs(baseline), 1e-12
        ):
            return "divergence"
        return None

    def _take_snapshot(self) -> None:
        self._snapshot = _Snapshot(
            modules=[m.state_dict() for m in self._modules],
            optimizers=[o.state_dict() for o in self._optimizers],
        )

    def _restore_snapshot(self) -> None:
        assert self._snapshot is not None, "guard used before attach()"
        for module, state in zip(self._modules, self._snapshot.modules):
            module.load_state_dict(state)
        for optimizer, state in zip(self._optimizers, self._snapshot.optimizers):
            optimizer.load_state_dict(state)

    def _recover(self, kind: str, loss_value: float) -> None:
        self._restore_snapshot()
        self.recoveries += 1
        if self.recoveries > self.max_recoveries:
            self.events.append(
                GuardEvent(
                    step=self._step, kind=kind, action="fatal",
                    loss=float(loss_value),
                    lr_after=self._optimizers[0].lr if self._optimizers else float("nan"),
                )
            )
            raise DivergenceError(
                f"training unhealthy ({kind}) at step {self._step} after "
                f"{self.recoveries - 1} recoveries",
                step=self._step,
                recoveries=self.recoveries - 1,
            )
        for optimizer in self._optimizers:
            optimizer.lr *= self.lr_backoff
        self.events.append(
            GuardEvent(
                step=self._step, kind=kind, action="rollback",
                loss=float(loss_value),
                lr_after=self._optimizers[0].lr if self._optimizers else float("nan"),
            )
        )
