"""Atomic, checksummed, resumable checkpoints.

File format (``.gendt`` container, extension-agnostic)::

    MAGIC (8 bytes)  "GENDTCK1"
    header_len       uint64 big-endian
    header_json      UTF-8 JSON: {"schema_version", "payload_sha256",
                                  "payload_size", "meta": {...}}
    header_sha256    32 raw bytes over header_json
    payload          an .npz archive of the checkpoint arrays

Writes go to a temp file in the destination directory, are fsync'd, and land
via ``os.replace`` — a crash mid-write can never leave a half-written file
under the final name.  Loads verify the magic, the header digest, the schema
version and the payload SHA-256 before a single array is deserialized; any
mismatch raises :class:`CheckpointCorruptError`, so a truncated disk or a
bit-flip is reported instead of silently loading garbage weights.

Training checkpoints capture *everything* ``GenDTTrainer.fit`` needs to
continue bit-exactly: generator and discriminator parameters, both Adam
states (including learning rates, which a :class:`HealthGuard` may have
backed off), the epoch index, the RNG bit-generator state and the
:class:`TrainingHistory` so far.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import re
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from .errors import CheckpointCorruptError

PathLike = Union[str, Path]

MAGIC = b"GENDTCK1"
SCHEMA_VERSION = 1

_CKPT_NAME = re.compile(r"^(?P<prefix>.+)-(?P<epoch>\d{6})\.gendt$")


# ----------------------------------------------------------------------
# Container read/write
# ----------------------------------------------------------------------
def write_checkpoint(
    path: PathLike, arrays: Dict[str, np.ndarray], meta: Optional[Dict[str, Any]] = None
) -> Path:
    """Atomically write ``arrays`` + ``meta`` as a checksummed checkpoint."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    payload = buffer.getvalue()
    header = json.dumps(
        {
            "schema_version": SCHEMA_VERSION,
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
            "payload_size": len(payload),
            "meta": meta or {},
        },
        sort_keys=True,
    ).encode("utf-8")
    fd, tmp_name = tempfile.mkstemp(prefix=path.name + ".", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(MAGIC)
            handle.write(len(header).to_bytes(8, "big"))
            handle.write(header)
            handle.write(hashlib.sha256(header).digest())
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)
    return path


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def read_checkpoint(path: PathLike) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Load and verify a checkpoint; returns ``(arrays, meta)``.

    Raises:
        CheckpointCorruptError: missing file, bad magic, header/payload
            checksum mismatch, truncation, or an unknown schema version.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointCorruptError(f"unreadable: {exc}", path=str(path)) from exc
    if len(raw) < len(MAGIC) + 8 or raw[: len(MAGIC)] != MAGIC:
        raise CheckpointCorruptError("bad magic (not a GenDT checkpoint)", path=str(path))
    cursor = len(MAGIC)
    header_len = int.from_bytes(raw[cursor : cursor + 8], "big")
    cursor += 8
    if header_len <= 0 or cursor + header_len + 32 > len(raw):
        raise CheckpointCorruptError("truncated header", path=str(path))
    header_bytes = raw[cursor : cursor + header_len]
    cursor += header_len
    digest = raw[cursor : cursor + 32]
    cursor += 32
    if hashlib.sha256(header_bytes).digest() != digest:
        raise CheckpointCorruptError("header checksum mismatch", path=str(path))
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointCorruptError(f"unparseable header: {exc}", path=str(path)) from exc
    version = header.get("schema_version")
    if version != SCHEMA_VERSION:
        raise CheckpointCorruptError(
            f"unsupported schema version {version!r} (expected {SCHEMA_VERSION})",
            path=str(path),
        )
    payload = raw[cursor:]
    if len(payload) != header.get("payload_size"):
        raise CheckpointCorruptError(
            f"payload size mismatch: expected {header.get('payload_size')}, "
            f"got {len(payload)}",
            path=str(path),
        )
    if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
        raise CheckpointCorruptError("payload checksum mismatch", path=str(path))
    try:
        with np.load(io.BytesIO(payload)) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except Exception as exc:  # malformed zip despite good checksum
        raise CheckpointCorruptError(f"unreadable payload: {exc}", path=str(path)) from exc
    return arrays, header.get("meta", {})


def is_checkpoint(path: PathLike) -> bool:
    """Magic-byte sniff: is ``path`` a GenDT checkpoint container?"""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def resolve_checkpoint(path: PathLike) -> Path:
    """Resolve a checkpoint argument: a file is itself; a directory resolves
    to its newest (highest-epoch) managed checkpoint."""
    path = Path(path)
    if path.is_dir():
        latest = CheckpointManager(path).latest()
        if latest is None:
            raise CheckpointCorruptError("no checkpoints found in directory", path=str(path))
        return latest
    return path


# ----------------------------------------------------------------------
# Rotating retention
# ----------------------------------------------------------------------
class CheckpointManager:
    """Writes epoch-indexed checkpoints into a directory, keeping the last N."""

    def __init__(self, directory: PathLike, keep_last: int = 3, prefix: str = "ckpt") -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.keep_last = keep_last
        self.prefix = prefix

    def path_for(self, epoch: int) -> Path:
        return self.directory / f"{self.prefix}-{epoch:06d}.gendt"

    def checkpoints(self) -> List[Tuple[int, Path]]:
        """``(epoch, path)`` pairs, oldest first."""
        found = []
        if self.directory.is_dir():
            for entry in self.directory.iterdir():
                match = _CKPT_NAME.match(entry.name)
                if match and match.group("prefix") == self.prefix:
                    found.append((int(match.group("epoch")), entry))
        return sorted(found)

    def latest(self) -> Optional[Path]:
        existing = self.checkpoints()
        return existing[-1][1] if existing else None

    def save(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any], epoch: int
    ) -> Path:
        path = write_checkpoint(self.path_for(epoch), arrays, meta)
        self._prune()
        return path

    def _prune(self) -> None:
        existing = self.checkpoints()
        for _, stale in existing[: max(0, len(existing) - self.keep_last)]:
            try:
                stale.unlink()
            except OSError:  # pragma: no cover - raced deletion is fine
                pass


# ----------------------------------------------------------------------
# Trainer state capture / restore
# ----------------------------------------------------------------------
def capture_trainer_state(
    trainer, epoch: int, extra_meta: Optional[Dict[str, Any]] = None
) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
    """Snapshot a :class:`GenDTTrainer` after finishing ``epoch`` (0-based).

    The snapshot is complete: restoring it and continuing reproduces an
    uninterrupted run bit-exactly, because the shared RNG's bit-generator
    state is captured alongside parameters and optimizer moments.
    """
    arrays: Dict[str, np.ndarray] = {}
    for name, value in trainer.generator.state_dict().items():
        arrays[f"model.{name}"] = value
    for key, value in trainer.g_optimizer.state_dict().items():
        arrays[f"optg.{key}"] = value
    if trainer.discriminator is not None:
        for name, value in trainer.discriminator.state_dict().items():
            arrays[f"disc.{name}"] = value
        for key, value in trainer.d_optimizer.state_dict().items():
            arrays[f"optd.{key}"] = value
    meta: Dict[str, Any] = {
        "kind": "trainer",
        "epoch": int(epoch),
        "rng_state": trainer.rng.bit_generator.state,
        "history": asdict(trainer.history),
    }
    if extra_meta:
        meta.update(extra_meta)
    return arrays, meta


def restore_trainer_state(trainer, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]) -> int:
    """Restore a snapshot into ``trainer``; returns the next epoch index."""
    if meta.get("kind") != "trainer":
        raise CheckpointCorruptError(
            f"not a trainer checkpoint (kind={meta.get('kind')!r})"
        )
    split: Dict[str, Dict[str, np.ndarray]] = {"model": {}, "disc": {}, "optg": {}, "optd": {}}
    for key, value in arrays.items():
        namespace, _, name = key.partition(".")
        if namespace in split:
            split[namespace][name] = value
    trainer.generator.load_state_dict(split["model"])
    trainer.g_optimizer.load_state_dict(split["optg"])
    if trainer.discriminator is not None:
        if not split["disc"]:
            raise CheckpointCorruptError("checkpoint lacks discriminator state")
        trainer.discriminator.load_state_dict(split["disc"])
        trainer.d_optimizer.load_state_dict(split["optd"])
    trainer.rng.bit_generator.state = meta["rng_state"]
    history = meta.get("history", {})
    for field_name, values in history.items():
        if hasattr(trainer.history, field_name):
            setattr(trainer.history, field_name, list(values))
    return int(meta["epoch"]) + 1
