"""Fault-tolerant training & generation runtime.

The pieces a production GenDT deployment leans on when things go wrong:

* :mod:`~repro.runtime.errors` — structured exception taxonomy
  (retryable vs fatal);
* :mod:`~repro.runtime.guards` — NaN/divergence watchdog with
  rollback-and-backoff recovery for the trainer;
* :mod:`~repro.runtime.checkpoint` — atomic, checksummed, resumable
  training checkpoints with rotating retention;
* :mod:`~repro.runtime.retry` — exponential backoff with deterministic
  jitter for the Fig. 14 measurement loop;
* :mod:`~repro.runtime.validate` — generation-boundary input validation.
"""

from .errors import (
    CheckpointCorruptError,
    CircuitOpenError,
    ContextValidationError,
    DeadlineExceeded,
    DivergenceError,
    GenDTRuntimeError,
    GenerationFaultError,
    MeasurementError,
    NumericalAnomalyError,
)
from .guards import FAULT_KINDS, GuardEvent, HealthGuard
from .checkpoint import (
    SCHEMA_VERSION,
    CheckpointManager,
    capture_trainer_state,
    is_checkpoint,
    read_checkpoint,
    resolve_checkpoint,
    restore_trainer_state,
    write_checkpoint,
)
from .retry import REAL_SLEEP, backoff_schedule, retry
from .validate import validate_route, validate_trajectory, validate_windows

__all__ = [
    "GenDTRuntimeError",
    "DivergenceError",
    "CheckpointCorruptError",
    "ContextValidationError",
    "MeasurementError",
    "NumericalAnomalyError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "GenerationFaultError",
    "HealthGuard",
    "GuardEvent",
    "FAULT_KINDS",
    "CheckpointManager",
    "SCHEMA_VERSION",
    "write_checkpoint",
    "read_checkpoint",
    "is_checkpoint",
    "resolve_checkpoint",
    "capture_trainer_state",
    "restore_trainer_state",
    "retry",
    "backoff_schedule",
    "REAL_SLEEP",
    "validate_trajectory",
    "validate_route",
    "validate_windows",
]
