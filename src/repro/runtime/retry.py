"""Generic retry with exponential backoff and deterministic jitter.

Used by the Fig. 14 ③ measurement loop (``core.workflow``): a drive-test
campaign step that fails transiently is retried with growing delays instead
of aborting a multi-hour active-learning run.  The jitter source is a seeded
:class:`numpy.random.Generator` and the sleep function is injectable, so
tests exercise the full backoff schedule without touching the wall clock.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Tuple, Type, TypeVar

import numpy as np

T = TypeVar("T")

#: The wall-clock sleep used when a caller wants real delays.  Serving-layer
#: code must reference this (or take an injected sleep) instead of naming
#: ``time.sleep`` directly — lint rule RTY001 enforces it, so every real
#: cool-down flows through one audited spot and stays injectable in tests.
REAL_SLEEP = time.sleep

#: Sentinel distinguishing "use the real clock" from an explicit ``None``
#: (= do not sleep at all, e.g. under test or when the callee is a simulator).
_REAL_SLEEP = REAL_SLEEP


def backoff_schedule(
    retries: int,
    backoff: float,
    factor: float = 2.0,
    jitter: float = 0.25,
    seed: int = 0,
) -> list:
    """The deterministic delay sequence ``retry`` would use (for inspection)."""
    rng = np.random.default_rng(seed)
    return [
        backoff * factor**attempt * (1.0 + jitter * float(rng.uniform(-1.0, 1.0)))
        for attempt in range(retries)
    ]


def retry(
    fn: Callable[[], T],
    retries: int = 2,
    backoff: float = 0.5,
    factor: float = 2.0,
    jitter: float = 0.25,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    seed: int = 0,
    sleep: Optional[Callable[[float], None]] = _REAL_SLEEP,
    on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
) -> T:
    """Call ``fn`` with up to ``retries`` retries on exceptions in ``retry_on``.

    Delay before retry ``k`` (0-based) is ``backoff * factor**k`` scaled by a
    deterministic jitter in ``[1 - jitter, 1 + jitter]`` drawn from a
    generator seeded with ``seed`` — two runs with the same seed back off
    identically.  ``sleep=None`` skips the delays entirely (the schedule is
    still computed, so ``on_retry`` sees the same delays either way).

    Args:
        fn: zero-argument callable to execute.
        retries: retry budget *after* the first attempt.
        backoff: base delay in seconds.
        factor: exponential growth factor.
        jitter: relative jitter amplitude.
        retry_on: exception classes that trigger a retry; anything else
            propagates immediately.
        seed: seed for the jitter generator.
        sleep: delay function; ``None`` disables sleeping.
        on_retry: ``(attempt, exception, delay)`` callback fired before each
            retry — use it to count/log transient failures.

    Returns:
        ``fn()``'s result from the first successful attempt.

    Raises:
        the last exception, once the retry budget is exhausted.
    """
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if backoff < 0 or factor <= 0 or not 0 <= jitter < 1:
        raise ValueError("invalid backoff schedule parameters")
    delays = backoff_schedule(retries, backoff, factor, jitter, seed)
    for attempt in range(retries + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= retries:
                raise
            delay = delays[attempt]
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            if sleep is not None:
                sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
