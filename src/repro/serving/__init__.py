"""Resilient batch-generation service for GenDT.

The serving layer turns ``GenDT.generate`` — an all-or-nothing call — into a
production-shaped campaign runtime: per-request admission and quarantine,
wall-clock deadlines, a circuit breaker around the model, and a graceful
degradation ladder (full GenDT → deterministic first stage → FDaS), all
observable through structured result envelopes and deterministic under an
injected clock and :class:`FaultPlan`.

Quick tour::

    from repro.serving import CampaignConfig, CampaignRunner

    runner = CampaignRunner(model, fdas=fallback,
                            config=CampaignConfig(trajectory_deadline_s=30.0))
    result = runner.run(trajectories)          # never raises per-request
    result.to_jsonl("campaign.jsonl")          # envelopes + fault log
    print(result.summary())

See the README's "Resilient generation" section for the envelope schema and
the breaker/ladder semantics.
"""

from .breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    BreakerTransition,
    CircuitBreaker,
)
from .envelope import (
    DEGRADATION_LEVELS,
    STATUS_CANCELLED,
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUSES,
    CampaignResult,
    FaultRecord,
    GenerationEnvelope,
)
from .faults import FAULT_KINDS, FaultPlan, FiredFault
from .ladder import LadderExecutor, levels_from, output_is_valid
from .runner import CampaignConfig, CampaignRunner, ManualClock

__all__ = [
    "CampaignRunner",
    "CampaignConfig",
    "CampaignResult",
    "GenerationEnvelope",
    "FaultRecord",
    "ManualClock",
    "CircuitBreaker",
    "BreakerTransition",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
    "FaultPlan",
    "FiredFault",
    "FAULT_KINDS",
    "LadderExecutor",
    "levels_from",
    "output_is_valid",
    "DEGRADATION_LEVELS",
    "STATUSES",
    "STATUS_OK",
    "STATUS_QUARANTINED",
    "STATUS_DEADLINE",
    "STATUS_FAILED",
    "STATUS_CANCELLED",
]
