"""Structured result envelopes for the resilient generation service.

Every trajectory a campaign admits produces exactly one
:class:`GenerationEnvelope` — success or not — so a caller can always answer
"what happened to request *i*?" without parsing tracebacks.  The envelope
records the terminal :data:`status <STATUSES>`, the degradation-ladder level
that actually produced the series (``None`` when nothing did), the faults
absorbed along the way, and timing.  :class:`CampaignResult` aggregates the
envelopes with the campaign-wide fault log and the circuit-breaker
transition trace, and serializes the lot as deterministic JSONL.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

#: Degradation-ladder levels, best first (see :mod:`repro.serving.ladder`).
DEGRADATION_LEVELS = ("full", "first_stage", "fdas")

#: Terminal envelope statuses.
STATUS_OK = "ok"
STATUS_QUARANTINED = "quarantined"
STATUS_DEADLINE = "deadline_exceeded"
STATUS_FAILED = "failed"
STATUS_CANCELLED = "cancelled"
STATUSES = (
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_CANCELLED,
)


@dataclass
class FaultRecord:
    """One absorbed fault, locatable within the campaign.

    ``window`` is −1 when the fault is not tied to a single generation
    window (e.g. admission failures); ``level`` is the ladder level active
    when the fault fired ("admission" before the ladder starts).
    """

    trajectory: int
    window: int
    level: str
    kind: str
    detail: str = ""

    def as_dict(self) -> Dict[str, Any]:
        return {
            "trajectory": self.trajectory,
            "window": self.window,
            "level": self.level,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class GenerationEnvelope:
    """Per-trajectory result: status + achieved level + faults + series."""

    trajectory: int
    status: str
    level: Optional[str] = None
    series: Optional[np.ndarray] = None
    kpi_names: List[str] = field(default_factory=list)
    faults: List[FaultRecord] = field(default_factory=list)
    quarantine_reason: Optional[Dict[str, Any]] = None
    windows_completed: int = 0
    resamples: int = 0
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def as_dict(self, include_series: bool = False) -> Dict[str, Any]:
        """JSON-ready view; the series is summarized unless requested."""
        payload: Dict[str, Any] = {
            "trajectory": self.trajectory,
            "status": self.status,
            "level": self.level,
            "windows_completed": self.windows_completed,
            "resamples": self.resamples,
            "elapsed_s": round(float(self.elapsed_s), 6),
            "faults": [f.as_dict() for f in self.faults],
        }
        if self.quarantine_reason is not None:
            payload["quarantine_reason"] = self.quarantine_reason
        if self.series is not None:
            payload["series_shape"] = list(self.series.shape)
            payload["series_mean"] = {
                kpi: round(float(np.mean(self.series[:, idx])), 6)
                for idx, kpi in enumerate(self.kpi_names)
            }
            if include_series:
                payload["series"] = [
                    [round(float(v), 6) for v in row] for row in self.series
                ]
        return payload


@dataclass
class CampaignResult:
    """Everything one :class:`~repro.serving.runner.CampaignRunner.run` returns."""

    envelopes: List[GenerationEnvelope] = field(default_factory=list)
    fault_log: List[FaultRecord] = field(default_factory=list)
    breaker_transitions: List[Dict[str, Any]] = field(default_factory=list)
    elapsed_s: float = 0.0
    deadline_hit: bool = False

    def __len__(self) -> int:
        return len(self.envelopes)

    def by_status(self, status: str) -> List[GenerationEnvelope]:
        return [e for e in self.envelopes if e.status == status]

    def summary(self) -> Dict[str, Any]:
        """Machine-readable campaign roll-up (also the CLI's closing line)."""
        counts = {status: 0 for status in STATUSES}
        levels = {level: 0 for level in DEGRADATION_LEVELS}
        for envelope in self.envelopes:
            counts[envelope.status] += 1
            if envelope.ok and envelope.level is not None:
                levels[envelope.level] += 1
        return {
            "trajectories": len(self.envelopes),
            "status_counts": counts,
            "level_counts": levels,
            "faults": len(self.fault_log),
            "breaker_transitions": len(self.breaker_transitions),
            "campaign_deadline_hit": self.deadline_hit,
            "elapsed_s": round(float(self.elapsed_s), 6),
        }

    def to_jsonl(
        self, path: Union[str, Path], include_series: bool = False
    ) -> Path:
        """Write one JSON line per envelope, then a ``summary`` trailer line.

        The output is deterministic for a fixed campaign result (keys are
        sorted and floats rounded), so chaos tests can compare files
        byte-for-byte across re-runs.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            for envelope in self.envelopes:
                record = dict(envelope.as_dict(include_series=include_series),
                              record="envelope")
                handle.write(json.dumps(record, sort_keys=True) + "\n")
            trailer = {
                "record": "summary",
                **self.summary(),
                "breaker": self.breaker_transitions,
                "fault_log": [f.as_dict() for f in self.fault_log],
            }
            handle.write(json.dumps(trailer, sort_keys=True) + "\n")
        return path
