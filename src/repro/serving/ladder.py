"""The graceful-degradation ladder: full GenDT → first stage → FDaS.

Production serving prefers a degraded-but-valid KPI series over no series.
The ladder's three rungs trade fidelity for robustness:

1. ``full`` — the complete stochastic GenDT pipeline (G_n + G_a + ResGen),
   the paper's headline generator;
2. ``first_stage`` — the first-stage output (``stochastic=False``, ResGen
   residual sampling skipped): loses the shadowing texture but keeps all
   context conditioning, and cannot be destabilized by the autoregressive
   residual loop.  SRNN sampling is off; the only randomness left is the
   denoising noise ``z0``, drawn from the model's seeded generation RNG —
   deterministic conditional on that RNG's state;
3. ``fdas`` — the context-free fit-distribution-and-sample baseline
   (:class:`repro.baselines.fdas.FDaS`): statistically plausible marginals
   with no model call at all, so it also serves while the circuit breaker
   holds the model open.

Each rung's output is validated for NaN/Inf before it is accepted; the
runner re-samples a bounded number of times at a rung before demoting to
the next one, and the achieved level is recorded in the result envelope.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..geo.trajectory import Trajectory
from .envelope import DEGRADATION_LEVELS

#: ``window_hook`` signature shared with :meth:`GenDT.generate_normalized`.
WindowHook = Callable[[int, np.ndarray], Optional[np.ndarray]]

LEVEL_FULL, LEVEL_FIRST_STAGE, LEVEL_FDAS = DEGRADATION_LEVELS


def output_is_valid(series: Optional[np.ndarray]) -> bool:
    """A generated series is servable iff it is entirely finite."""
    return series is not None and bool(np.all(np.isfinite(series)))


def levels_from(start_level: str) -> tuple:
    """The ladder from ``start_level`` downward (inclusive)."""
    if start_level not in DEGRADATION_LEVELS:
        raise ValueError(
            f"unknown ladder level {start_level!r}; "
            f"expected one of {DEGRADATION_LEVELS}"
        )
    return DEGRADATION_LEVELS[DEGRADATION_LEVELS.index(start_level):]


class LadderExecutor:
    """Executes one generation attempt at one ladder level.

    Kept deliberately stateless between calls: re-sampling, demotion,
    deadlines, and breaker accounting are the
    :class:`~repro.serving.runner.CampaignRunner`'s job; this class only
    knows how to produce a series at a given fidelity.

    Args:
        model: a fitted :class:`repro.core.GenDT`.
        fdas: an optional fitted :class:`repro.baselines.fdas.FDaS` with the
            same KPI layout as ``model``; without it the ``fdas`` rung is
            unavailable and the ladder bottoms out at ``first_stage``.
    """

    def __init__(self, model, fdas=None) -> None:
        self.model = model
        self.fdas = fdas
        if fdas is not None and list(fdas.kpi_names) != list(model.kpi_names):
            raise ValueError(
                f"FDaS fallback KPI layout {fdas.kpi_names} does not match "
                f"model {model.kpi_names}"
            )

    def available_levels(self, start_level: str = LEVEL_FULL) -> tuple:
        levels = levels_from(start_level)
        if self.fdas is None:
            levels = tuple(lv for lv in levels if lv != LEVEL_FDAS)
        return levels

    def uses_model(self, level: str) -> bool:
        """Does this rung call the GenDT model (i.e. breaker-protected)?"""
        return level in (LEVEL_FULL, LEVEL_FIRST_STAGE)

    def attempt(
        self,
        trajectory: Trajectory,
        level: str,
        window_hook: Optional[WindowHook] = None,
    ) -> np.ndarray:
        """One generation attempt at ``level``; may raise or return NaNs.

        The caller validates the output (:func:`output_is_valid`) and
        decides whether to re-sample or demote.
        """
        if level == LEVEL_FULL:
            return self.model.generate(trajectory, window_hook=window_hook)
        if level == LEVEL_FIRST_STAGE:
            return self.model.generate(
                trajectory,
                stochastic=False,
                first_stage_only=True,
                window_hook=window_hook,
            )
        if level == LEVEL_FDAS:
            if self.fdas is None:
                raise RuntimeError("no FDaS fallback configured")
            series = self.fdas.generate(trajectory)
            # The fallback gets the same chaos surface as the model rungs:
            # its whole output counts as window 0 for the hook.
            if window_hook is not None:
                replaced = window_hook(0, series)
                if replaced is not None:
                    series = np.asarray(replaced)
            return series
        raise ValueError(f"unknown ladder level {level!r}")
