"""The resilient campaign runner: fault isolation for batch generation.

``CampaignRunner.run`` takes a campaign (a sequence of trajectories) and
returns one structured :class:`~repro.serving.envelope.GenerationEnvelope`
per trajectory — it never lets a single bad request abort the batch.  The
isolation layers, in the order a request meets them:

1. **Admission / quarantine** — :func:`validate_trajectory` and
   :func:`validate_windows` run per request; a failure quarantines that
   trajectory with a machine-readable reason instead of raising.
2. **Deadlines** — a wall-clock budget per trajectory and per campaign,
   checked at every generation window; expiry yields a clean partial result
   (``deadline_exceeded`` for the trajectory that tripped it,
   ``cancelled`` envelopes for work never started).
3. **Circuit breaker** — consecutive model faults open the breaker
   (:class:`~repro.serving.breaker.CircuitBreaker`); while open, requests
   demote straight to the model-free FDaS rung instead of hammering a
   failing model.
4. **Degradation ladder** — full stochastic GenDT → deterministic first
   stage → FDaS, with NaN/Inf validation and bounded re-sampling before
   each demotion (:mod:`repro.serving.ladder`); the achieved level is
   recorded in the envelope.

Clock and sleep are injectable (:class:`ManualClock`), and combined with a
:class:`~repro.serving.faults.FaultPlan` plus ``CampaignConfig.seed`` every
run is deterministic: the chaos tests re-run whole campaigns and compare
the JSONL output byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass
import time
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..geo.trajectory import Trajectory
from ..runtime.errors import (
    ContextValidationError,
    DeadlineExceeded,
    GenDTRuntimeError,
    GenerationFaultError,
)
from ..runtime.retry import REAL_SLEEP
from ..runtime.validate import validate_trajectory, validate_windows
from .breaker import CircuitBreaker
from .envelope import (
    STATUS_CANCELLED,
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    CampaignResult,
    FaultRecord,
    GenerationEnvelope,
)
from .faults import FaultPlan
from .ladder import LEVEL_FULL, LadderExecutor, levels_from, output_is_valid


class ManualClock:
    """A hand-advanced clock for deterministic serving runs.

    Use as both ``clock`` and ``sleep``::

        clock = ManualClock()
        runner = CampaignRunner(model, clock=clock, sleep=clock.sleep)

    Injected latency faults then advance virtual time only, so deadline and
    breaker cool-down behavior is bit-reproducible and tests never wait.
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self.now_s = float(start_s)

    def __call__(self) -> float:
        return self.now_s

    def sleep(self, seconds: float) -> None:
        self.now_s += float(seconds)


@dataclass
class CampaignConfig:
    """Tunables for one campaign run.

    ``seed`` (when set) reseeds the model's generation RNG — and the FDaS
    fallback's — before the campaign starts, making a re-run with the same
    trajectories and :class:`FaultPlan` byte-identical.
    """

    trajectory_deadline_s: Optional[float] = None
    campaign_deadline_s: Optional[float] = None
    max_resamples: int = 1
    breaker_threshold: int = 3
    breaker_cooldown_base_s: float = 1.0
    breaker_cooldown_factor: float = 2.0
    start_level: str = LEVEL_FULL
    seed: Optional[int] = None

    def validate(self) -> None:
        if self.max_resamples < 0:
            raise ValueError("max_resamples must be >= 0")
        for name in ("trajectory_deadline_s", "campaign_deadline_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive when set")
        levels_from(self.start_level)  # raises on an unknown ladder level


class CampaignRunner:
    """Serve a batch-generation campaign with per-request fault isolation.

    Args:
        model: a fitted :class:`repro.core.GenDT`.
        fdas: optional fitted :class:`repro.baselines.fdas.FDaS` fallback
            (same KPI layout); without it the ladder has no model-free rung.
        config: campaign tunables (:class:`CampaignConfig`).
        fault_plan: optional :class:`FaultPlan` for deterministic chaos.
        clock: monotonic-seconds source (default: ``time.monotonic``).
        sleep: delay function used by injected latency faults (default:
            :data:`repro.runtime.retry.REAL_SLEEP`; pass the
            :class:`ManualClock`'s ``sleep`` in tests).
    """

    def __init__(
        self,
        model,
        fdas=None,
        config: Optional[CampaignConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        self.config = config or CampaignConfig()
        self.config.validate()
        self.executor = LadderExecutor(model, fdas=fdas)
        self.fault_plan = fault_plan
        self._clock = clock if clock is not None else time.monotonic
        self._sleep = sleep if sleep is not None else REAL_SLEEP
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_base_s=self.config.breaker_cooldown_base_s,
            cooldown_factor=self.config.breaker_cooldown_factor,
            seed=self.config.seed or 0,
            clock=self._clock,
        )

    # ------------------------------------------------------------------
    # Campaign loop
    # ------------------------------------------------------------------
    def run(self, trajectories: Sequence[Trajectory]) -> CampaignResult:
        """Serve every trajectory; never raises for per-request faults."""
        if self.config.seed is not None:
            self._reseed(self.config.seed)
        result = CampaignResult()
        started_s = self._clock()
        campaign_deadline = (
            started_s + self.config.campaign_deadline_s
            if self.config.campaign_deadline_s is not None
            else None
        )
        for index, trajectory in enumerate(trajectories):
            if campaign_deadline is not None and self._clock() >= campaign_deadline:
                result.deadline_hit = True
                fault = FaultRecord(
                    trajectory=index, window=-1, level="admission",
                    kind="campaign_deadline",
                    detail="campaign budget exhausted before this trajectory",
                )
                result.fault_log.append(fault)
                result.envelopes.append(
                    GenerationEnvelope(
                        trajectory=index, status=STATUS_CANCELLED,
                        faults=[fault],
                    )
                )
                continue
            envelope = self._serve_one(
                index, trajectory, campaign_deadline, result.fault_log
            )
            if envelope.status == STATUS_DEADLINE and any(
                f.kind == "campaign_deadline" for f in envelope.faults
            ):
                result.deadline_hit = True
            result.envelopes.append(envelope)
        result.breaker_transitions = [
            t.as_dict() for t in self.breaker.transitions
        ]
        result.elapsed_s = self._clock() - started_s
        return result

    # ------------------------------------------------------------------
    # One request
    # ------------------------------------------------------------------
    def _serve_one(
        self,
        index: int,
        trajectory: Trajectory,
        campaign_deadline: Optional[float],
        fault_log: List[FaultRecord],
    ) -> GenerationEnvelope:
        model = self.executor.model
        started_s = self._clock()
        trajectory_deadline = (
            started_s + self.config.trajectory_deadline_s
            if self.config.trajectory_deadline_s is not None
            else None
        )
        faults: List[FaultRecord] = []

        def record(kind: str, window: int, level: str, detail: str) -> FaultRecord:
            fault = FaultRecord(
                trajectory=index, window=window, level=level,
                kind=kind, detail=detail,
            )
            faults.append(fault)
            fault_log.append(fault)
            return fault

        def finish(envelope: GenerationEnvelope) -> GenerationEnvelope:
            envelope.faults = faults
            envelope.elapsed_s = self._clock() - started_s
            return envelope

        # 1. Admission: quarantine instead of raising.
        try:
            validate_trajectory(trajectory)
            windows = model.context.generation_windows(
                trajectory, model._batch_len(len(trajectory))
            )
            validate_windows(windows)
        except ContextValidationError as exc:
            record("quarantined", exc.index, "admission", str(exc))
            return finish(
                GenerationEnvelope(
                    trajectory=index,
                    status=STATUS_QUARANTINED,
                    quarantine_reason={"error": str(exc), "index": exc.index},
                )
            )

        # 2-4. Ladder with breaker and deadlines.
        progress = {"windows": 0}
        resamples = 0
        for level in self.executor.available_levels(self.config.start_level):
            uses_model = self.executor.uses_model(level)
            for attempt in range(self.config.max_resamples + 1):
                if uses_model and not self.breaker.allow():
                    record(
                        "breaker_open", -1, level,
                        f"circuit open; {self.breaker.cooldown_remaining_s():.3f}s "
                        "cooldown remaining",
                    )
                    break  # demote without touching the model
                hook = self._window_hook(
                    index, level, trajectory_deadline, campaign_deadline,
                    started_s, progress, record,
                )
                try:
                    series = self.executor.attempt(
                        trajectory, level, window_hook=hook
                    )
                except DeadlineExceeded as exc:
                    record(
                        f"{exc.scope}_deadline", progress["windows"], level,
                        str(exc),
                    )
                    return finish(
                        GenerationEnvelope(
                            trajectory=index,
                            status=STATUS_DEADLINE,
                            windows_completed=progress["windows"],
                            resamples=resamples,
                        )
                    )
                except GenerationFaultError as exc:
                    record("exception", exc.window, level, str(exc))
                    if uses_model:
                        self.breaker.record_failure()
                    break  # infrastructure fault: demote, don't re-sample
                except GenDTRuntimeError as exc:
                    record("exception", -1, level, str(exc))
                    if uses_model:
                        self.breaker.record_failure()
                    break
                except Exception as exc:
                    # Fault-isolation boundary: a raw error from deep inside
                    # the generator must not abort the campaign.  Normalize
                    # it into the taxonomy before recording.
                    wrapped = GenerationFaultError(
                        f"unexpected {type(exc).__name__}: {exc}",
                        trajectory=index, kind="exception",
                    )
                    wrapped.__cause__ = exc
                    record("exception", -1, level, str(wrapped))
                    if uses_model:
                        self.breaker.record_failure()
                    break
                if output_is_valid(series):
                    if uses_model:
                        self.breaker.record_success()
                    return finish(
                        GenerationEnvelope(
                            trajectory=index,
                            status=STATUS_OK,
                            level=level,
                            series=series,
                            kpi_names=list(model.kpi_names),
                            windows_completed=progress["windows"],
                            resamples=resamples,
                        )
                    )
                record(
                    "non_finite_output", -1, level,
                    "generated series contains NaN/Inf",
                )
                if uses_model:
                    self.breaker.record_failure()
                if attempt < self.config.max_resamples:
                    resamples += 1
        return finish(
            GenerationEnvelope(
                trajectory=index,
                status=STATUS_FAILED,
                windows_completed=progress["windows"],
                resamples=resamples,
            )
        )

    # ------------------------------------------------------------------
    # Per-window hook: chaos injection + deadline enforcement
    # ------------------------------------------------------------------
    def _window_hook(
        self,
        index: int,
        level: str,
        trajectory_deadline: Optional[float],
        campaign_deadline: Optional[float],
        started_s: float,
        progress: dict,
        record: Callable[[str, int, str, str], FaultRecord],
    ):
        def hook(window_index: int, out: np.ndarray) -> Optional[np.ndarray]:
            replacement: Optional[np.ndarray] = None
            if self.fault_plan is not None:
                fired = self.fault_plan.pop(
                    "latency", index, window_index, level
                )
                if fired is not None:
                    record(
                        "latency", window_index, level,
                        f"injected {fired.latency_s}s stall",
                    )
                    self._sleep(fired.latency_s)
                if self.fault_plan.pop(
                    "exception", index, window_index, level
                ) is not None:
                    raise GenerationFaultError(
                        "injected generation fault",
                        trajectory=index, window=window_index,
                        kind="exception",
                    )
                if self.fault_plan.pop(
                    "nan_output", index, window_index, level
                ) is not None:
                    replacement = np.full_like(np.asarray(out, dtype=float), np.nan)
            now = self._clock()
            if campaign_deadline is not None and now >= campaign_deadline:
                raise DeadlineExceeded(
                    "campaign wall-clock budget exhausted mid-trajectory",
                    scope="campaign",
                    budget_s=self.config.campaign_deadline_s or float("nan"),
                    elapsed_s=now - started_s,
                )
            if trajectory_deadline is not None and now >= trajectory_deadline:
                raise DeadlineExceeded(
                    "trajectory wall-clock budget exhausted",
                    scope="trajectory",
                    budget_s=self.config.trajectory_deadline_s or float("nan"),
                    elapsed_s=now - started_s,
                )
            progress["windows"] = window_index + 1
            return replacement

        return hook

    # ------------------------------------------------------------------
    # Determinism
    # ------------------------------------------------------------------
    def _reseed(self, seed: int) -> None:
        """Reset generation RNG state in place (shared by every submodule)."""
        state = np.random.default_rng(seed).bit_generator.state
        self.executor.model.rng.bit_generator.state = state
        if self.executor.fdas is not None:
            self.executor.fdas.reseed(seed + 1)
