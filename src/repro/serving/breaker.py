"""Circuit breaker around the GenDT model call.

A burst of consecutive generation faults usually means something systemic —
a corrupted checkpoint, a context pipeline bug, an exhausted accelerator —
and hammering the model with the rest of a million-trajectory campaign only
makes the incident worse.  The breaker implements the classic three-state
machine:

* **closed** — requests flow; ``failure_threshold`` *consecutive* faults
  trip it open.
* **open** — the model is not called at all (the runner demotes affected
  trajectories straight to the model-free FDaS rung); after a cool-down the
  breaker admits exactly one probe.
* **half-open** — the probe's outcome decides: success closes the breaker,
  failure re-opens it with the *next* (longer) cool-down.

Cool-downs come from :func:`repro.runtime.retry.backoff_schedule` — the same
deterministic exponential-with-jitter schedule the measurement loop uses —
so successive trips back off exponentially and two runs with the same seed
cool down identically.  The clock is injectable; tests drive the state
machine with a fake clock and never sleep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..runtime.errors import CircuitOpenError
from ..runtime.retry import backoff_schedule

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


@dataclass
class BreakerTransition:
    """One state change, stamped with the injectable clock."""

    at_s: float
    from_state: str
    to_state: str
    reason: str

    def as_dict(self) -> Dict[str, Any]:
        return {
            "at_s": round(float(self.at_s), 6),
            "from": self.from_state,
            "to": self.to_state,
            "reason": self.reason,
        }


class CircuitBreaker:
    """Consecutive-failure circuit breaker with scheduled cool-downs.

    Args:
        failure_threshold: consecutive faults (while closed) that trip the
            breaker open.
        cooldown_base_s: base cool-down; trip ``k`` (0-based) cools down for
            ``backoff_schedule(...)[k]`` seconds, clamped to the last entry
            once the schedule is exhausted.
        cooldown_factor: exponential growth factor between successive trips.
        max_trips: length of the precomputed cool-down schedule.
        seed: seed for the deterministic cool-down jitter.
        clock: monotonic-seconds source; defaults to :func:`time.monotonic`.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_base_s: float = 1.0,
        cooldown_factor: float = 2.0,
        max_trips: int = 8,
        seed: int = 0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_base_s < 0:
            raise ValueError("cooldown_base_s must be >= 0")
        self.failure_threshold = failure_threshold
        self._cooldowns = backoff_schedule(
            max_trips, cooldown_base_s, factor=cooldown_factor, seed=seed
        )
        self._clock = clock if clock is not None else time.monotonic
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        self._trip_count = 0
        self._opened_at: Optional[float] = None
        self.transitions: List[BreakerTransition] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        return self._state

    @property
    def trip_count(self) -> int:
        """How many times the breaker has opened over its lifetime."""
        return self._trip_count

    def current_cooldown_s(self) -> float:
        """The cool-down for the most recent trip."""
        index = min(max(self._trip_count - 1, 0), len(self._cooldowns) - 1)
        return self._cooldowns[index]

    def cooldown_remaining_s(self) -> float:
        if self._state != STATE_OPEN or self._opened_at is None:
            return 0.0
        remaining = self.current_cooldown_s() - (self._clock() - self._opened_at)
        return max(0.0, remaining)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the protected call proceed right now?

        While open, returns ``False`` until the cool-down elapses, then
        transitions to half-open and admits one probe.
        """
        if self._state == STATE_OPEN:
            if self.cooldown_remaining_s() > 0.0:
                return False
            self._transition(STATE_HALF_OPEN, "cooldown elapsed; admitting probe")
        return True

    def check(self) -> None:
        """Like :meth:`allow` but raises :class:`CircuitOpenError` when shut."""
        if not self.allow():
            remaining = self.cooldown_remaining_s()
            raise CircuitOpenError(
                f"circuit open for another {remaining:.3f}s "
                f"(trip {self._trip_count})",
                cooldown_remaining_s=remaining,
            )

    def record_success(self) -> None:
        """The protected call completed cleanly."""
        self._consecutive_failures = 0
        if self._state == STATE_HALF_OPEN:
            self._transition(STATE_CLOSED, "probe succeeded")

    def record_failure(self) -> None:
        """The protected call faulted."""
        if self._state == STATE_HALF_OPEN:
            self._open("probe failed")
            return
        self._consecutive_failures += 1
        if (
            self._state == STATE_CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._open(
                f"{self._consecutive_failures} consecutive failures "
                f">= threshold {self.failure_threshold}"
            )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _open(self, reason: str) -> None:
        self._trip_count += 1
        self._consecutive_failures = 0
        self._opened_at = self._clock()
        self._transition(STATE_OPEN, reason)

    def _transition(self, to_state: str, reason: str) -> None:
        self.transitions.append(
            BreakerTransition(
                at_s=self._clock(),
                from_state=self._state,
                to_state=to_state,
                reason=reason,
            )
        )
        self._state = to_state
