"""Deterministic fault injection for the serving runtime (chaos harness).

Modeled on :meth:`repro.runtime.guards.HealthGuard.inject_fault`, but
addressed by campaign coordinates instead of training steps: a
:class:`FaultPlan` schedules faults at chosen ``(trajectory, window)``
positions, optionally filtered to one degradation-ladder level, and the
:class:`~repro.serving.runner.CampaignRunner` consults the plan at every
generation window.  Because the plan, the breaker cool-downs, and the
runner's clock are all deterministic, every breaker and ladder transition is
reproducible bit-for-bit — the chaos tests assert byte-identical campaign
output across re-runs.

Fault kinds:

* ``nan_output`` — the window's generated block is replaced with NaNs
  (models a numerical blow-up inside the generator);
* ``exception`` — a :class:`GenerationFaultError` is raised mid-trajectory
  (models an infrastructure fault);
* ``latency`` — the runner's injectable sleep is invoked for ``latency_s``
  (models a hung window; with a fake clock this deterministically trips
  deadline enforcement).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

#: Fault kinds understood by :meth:`FaultPlan.inject`.
FAULT_KINDS = ("nan_output", "exception", "latency")


@dataclass
class _Injection:
    kind: str
    trajectory: int
    window: Optional[int]          # None = any window
    level: Optional[str]           # None = any ladder level
    remaining: Optional[int]       # None = unlimited firings
    latency_s: float = 0.0

    def matches(self, kind: str, trajectory: int, window: int, level: str) -> bool:
        if self.kind != kind or self.trajectory != trajectory:
            return False
        if self.window is not None and self.window != window:
            return False
        if self.level is not None and self.level != level:
            return False
        return self.remaining is None or self.remaining > 0


@dataclass
class FiredFault:
    """One firing of a scheduled fault (for assertions and the fault log)."""

    kind: str
    trajectory: int
    window: int
    level: str
    latency_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "trajectory": self.trajectory,
            "window": self.window,
            "level": self.level,
            "latency_s": self.latency_s,
        }


class FaultPlan:
    """A schedule of deterministic serving faults.

    >>> plan = FaultPlan()
    >>> plan.inject("nan_output", trajectory=2, level="full", times=None)
    >>> plan.inject("exception", trajectory=5, window=0)
    >>> plan.inject("latency", trajectory=1, window=3, latency_s=9.5)
    """

    def __init__(self) -> None:
        self._injections: List[_Injection] = []
        self.fired: List[FiredFault] = []

    def inject(
        self,
        kind: str,
        trajectory: int,
        window: Optional[int] = None,
        level: Optional[str] = None,
        times: Optional[int] = 1,
        latency_s: float = 0.0,
    ) -> "FaultPlan":
        """Schedule a fault; returns ``self`` for chaining.

        Args:
            kind: one of :data:`FAULT_KINDS`.
            trajectory: campaign trajectory index the fault targets.
            window: generation-window index within the trajectory
                (``None`` = fire at any window).
            level: only fire while the ladder is at this level
                (``None`` = any level).
            times: how many firings before the injection is spent
                (``None`` = unlimited — e.g. to defeat every re-sample at a
                level and force a demotion).
            latency_s: artificial delay for ``latency`` faults.
        """
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}"
            )
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        if kind == "latency" and latency_s <= 0:
            raise ValueError("latency faults need latency_s > 0")
        self._injections.append(
            _Injection(
                kind=kind,
                trajectory=int(trajectory),
                window=None if window is None else int(window),
                level=level,
                remaining=times,
                latency_s=latency_s,
            )
        )
        return self

    def pop(
        self, kind: str, trajectory: int, window: int, level: str
    ) -> Optional[FiredFault]:
        """Fire (and account) the first matching injection, if any."""
        for injection in self._injections:
            if injection.matches(kind, trajectory, window, level):
                if injection.remaining is not None:
                    injection.remaining -= 1
                fired = FiredFault(
                    kind=kind,
                    trajectory=trajectory,
                    window=window,
                    level=level,
                    latency_s=injection.latency_s,
                )
                self.fired.append(fired)
                return fired
        return None

    def pending(self) -> int:
        """Number of injections that can still fire."""
        return sum(
            1
            for injection in self._injections
            if injection.remaining is None or injection.remaining > 0
        )
