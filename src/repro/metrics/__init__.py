"""Evaluation metrics: fidelity (MAE/DTW/HWD) and measurement efficiency."""

from .fidelity import dtw, evaluate_series, hwd, mae, wasserstein_1d
from .efficiency import fraction_used, measurement_efficiency, total_measurement_time_s

__all__ = [
    "mae",
    "dtw",
    "hwd",
    "wasserstein_1d",
    "evaluate_series",
    "fraction_used",
    "measurement_efficiency",
    "total_measurement_time_s",
]
