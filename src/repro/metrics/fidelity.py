"""Fidelity metrics: MAE, DTW, HWD (paper §5.1).

* **MAE** — mean absolute pointwise error between real and generated series.
* **DTW** — dynamic time warping distance, robust to the small temporal
  shifts different drives over the same route exhibit.  Classic O(T²)
  dynamic program with an optional Sakoe-Chiba band; reported as the
  alignment cost normalized by the warping-path length, so values are
  comparable across series lengths (and to MAE).
* **HWD** — Histogram Wasserstein Distance: the 1-Wasserstein distance
  between the empirical distributions of real and generated values,
  computed on binned histograms as the paper does.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def mae(real: np.ndarray, generated: np.ndarray) -> float:
    """Mean absolute error between two aligned series."""
    real = np.asarray(real, dtype=float)
    generated = np.asarray(generated, dtype=float)
    if real.shape != generated.shape:
        raise ValueError(f"shape mismatch: {real.shape} vs {generated.shape}")
    return float(np.mean(np.abs(real - generated)))


def dtw(
    real: np.ndarray,
    generated: np.ndarray,
    band: Optional[int] = None,
    normalize: bool = True,
) -> float:
    """Dynamic time warping distance between two 1-D series.

    Args:
        real, generated: the two series (lengths may differ).
        band: Sakoe-Chiba band half-width; None = unconstrained.  A band of
            ~10 % of the series length is a good speed/accuracy tradeoff for
            long drive-test series.
        normalize: divide the alignment cost by the warping-path length.
    """
    x = np.asarray(real, dtype=float).ravel()
    y = np.asarray(generated, dtype=float).ravel()
    n, m = len(x), len(y)
    if n == 0 or m == 0:
        raise ValueError("empty series")
    if band is None:
        band = max(n, m)
    band = max(band, abs(n - m))  # the band must admit the corner-to-corner path

    big = np.inf
    prev = np.full(m + 1, big)
    prev[0] = 0.0
    path_prev = np.zeros(m + 1)
    cur = np.full(m + 1, big)
    path_cur = np.zeros(m + 1)
    for i in range(1, n + 1):
        cur.fill(big)
        j_lo = max(1, i - band)
        j_hi = min(m, i + band)
        xi = x[i - 1]
        costs = np.abs(xi - y[j_lo - 1 : j_hi])
        for j, cost in zip(range(j_lo, j_hi + 1), costs):
            # Tie-break on path length symmetrically: among predecessors of
            # equal cost, keep the shortest path.  "Up" and "left" swap when
            # the arguments swap, so first-found tie-breaking would make the
            # *normalized* distance depend on argument order.
            best = prev[j]
            steps = path_prev[j]
            if prev[j - 1] < best or (
                prev[j - 1] == best and path_prev[j - 1] < steps
            ):
                best = prev[j - 1]
                steps = path_prev[j - 1]
            if cur[j - 1] < best or (
                cur[j - 1] == best and path_cur[j - 1] < steps
            ):
                best = cur[j - 1]
                steps = path_cur[j - 1]
            cur[j] = cost + best
            path_cur[j] = steps + 1
        prev, cur = cur, prev
        path_prev, path_cur = path_cur, path_prev
    total = prev[m]
    if not np.isfinite(total):
        raise RuntimeError("DTW band too narrow for the series lengths")
    if normalize:
        return float(total / max(path_prev[m], 1.0))
    return float(total)


def wasserstein_1d(real: np.ndarray, generated: np.ndarray) -> float:
    """Exact 1-D Wasserstein-1 distance between two empirical samples."""
    x = np.sort(np.asarray(real, dtype=float).ravel())
    y = np.sort(np.asarray(generated, dtype=float).ravel())
    all_values = np.concatenate([x, y])
    all_values.sort(kind="mergesort")
    deltas = np.diff(all_values)
    x_cdf = np.searchsorted(x, all_values[:-1], side="right") / len(x)
    y_cdf = np.searchsorted(y, all_values[:-1], side="right") / len(y)
    return float(np.sum(np.abs(x_cdf - y_cdf) * deltas))


def hwd(real: np.ndarray, generated: np.ndarray, n_bins: int = 50) -> float:
    """Histogram Wasserstein Distance (paper §5.1), in the KPI's units.

    Histograms of the two samples over a shared binning, compared with the
    1-Wasserstein distance between the binned distributions: the L1 area
    between the two histogram CDFs.
    """
    x = np.asarray(real, dtype=float).ravel()
    y = np.asarray(generated, dtype=float).ravel()
    lo = min(x.min(), y.min())
    hi = max(x.max(), y.max())
    if hi <= lo:
        return 0.0
    bins = np.linspace(lo, hi, n_bins + 1)
    hx, _ = np.histogram(x, bins=bins)
    hy, _ = np.histogram(y, bins=bins)
    px = hx / hx.sum()
    py = hy / hy.sum()
    # W1 between discrete distributions on a shared support = L1 of the CDF
    # gap times the bin width.
    cdf_gap = np.cumsum(px - py)
    bin_width = bins[1] - bins[0]
    return float(np.sum(np.abs(cdf_gap)) * bin_width)


def evaluate_series(
    real: np.ndarray,
    generated: np.ndarray,
    dtw_band_fraction: float = 0.1,
) -> Dict[str, float]:
    """All three fidelity metrics for one KPI channel."""
    band = max(2, int(dtw_band_fraction * max(len(real), len(generated))))
    return {
        "mae": mae(real, generated),
        "dtw": dtw(real, generated, band=band),
        "hwd": hwd(real, generated),
    }
