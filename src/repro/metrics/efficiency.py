"""Measurement-efficiency accounting (paper §5.1).

Because scenarios differ in movement speed, the paper measures training data
in *time* (~distance/speed) rather than distance, and reports efficiency as
the fraction of the available data used.  These helpers compute the
time-weighted fraction for record collections and the headline
"measurement efficiency" (1 - fraction used).
"""

from __future__ import annotations

from typing import Sequence

from ..radio.simulator import DriveTestRecord


def total_measurement_time_s(records: Sequence[DriveTestRecord]) -> float:
    """Total drive-test time represented by a set of records."""
    return float(sum(r.trajectory.duration_s for r in records))


def fraction_used(
    used: Sequence[DriveTestRecord], available: Sequence[DriveTestRecord]
) -> float:
    """Time-weighted share of the available measurement data that was used."""
    total = total_measurement_time_s(available)
    if total <= 0:
        raise ValueError("available data has zero duration")
    return total_measurement_time_s(used) / total


def measurement_efficiency(
    used: Sequence[DriveTestRecord], available: Sequence[DriveTestRecord]
) -> float:
    """Paper's headline number: 1 - fraction of data needed (e.g. 0.9 = 90%)."""
    return 1.0 - fraction_used(used, available)
