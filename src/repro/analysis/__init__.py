"""Static-analysis subsystem: the project lint engine.

Machine-checked invariants for the reproduction — deterministic RNG
threading, honest exception handling, tape-safe tensor use — instead of
reviewer vigilance.  See ``repro/analysis/README.md`` for the rule table
and suppression syntax.

Programmatic use::

    from repro.analysis import lint_paths
    violations = lint_paths(["src"])     # [] when the tree is clean

CLI use: ``python -m repro.cli lint src`` or ``python -m repro.analysis src``.
"""

from .engine import (
    FileContext,
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    main,
    suppressed_rules,
)
from .rules import RULES, Rule, iter_rules, register

__all__ = [
    "FileContext",
    "Violation",
    "Rule",
    "RULES",
    "register",
    "iter_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "suppressed_rules",
    "main",
]
