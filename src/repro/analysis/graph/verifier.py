"""The verifier: one-shot symbolic verification of a contracted module.

:func:`verify` builds probe inputs from the module's ``@contract``, traces
the entry method with :class:`~repro.analysis.graph.trace.TraceSession`
(shape/dtype contract checks fire inside the trace), then runs the
gradient-flow audit over the symbolic outputs:

* **dead parameters** — registered parameters whose value never reaches any
  output (a mis-wired or orphaned submodule);
* **severed parameters** — parameters that reach an output, but only
  through ``detach()``/``no_grad`` paths, so no gradient can flow back;
* **no grad path** — a module with trainable parameters whose outputs carry
  no gradient path at all.

Determinism: traced forwards draw from the module's own
``np.random.Generator`` objects (noise injection, dropout, z0/z1).  The
verifier snapshots every generator reachable from the module tree before
tracing and restores it after, so calling :func:`verify` inside
``GenDT.fit``/``GenDT.load`` does not shift the seeded streams — training is
bit-identical with verification on or off.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ...nn.module import Module
from ...nn.tensor import Tensor
from ...runtime.errors import GraphContractError
from .spec import Contract, DimEnv
from .symbolic import SymbolicTensor
from .trace import TraceSession

__all__ = ["Report", "verify"]


@dataclass
class Report:
    """Outcome of one :func:`verify` run."""

    module: str
    method: str
    violations: List[GraphContractError] = field(default_factory=list)
    dead_params: List[str] = field(default_factory=list)
    severed_params: List[Tuple[str, str, str]] = field(default_factory=list)
    no_grad_output: bool = False
    bound_dims: Dict[str, int] = field(default_factory=dict)
    n_params: int = 0

    @property
    def ok(self) -> bool:
        return not (
            self.violations
            or self.dead_params
            or self.severed_params
            or self.no_grad_output
        )

    def format(self) -> str:
        dims = ", ".join(f"{k}={v}" for k, v in sorted(self.bound_dims.items()))
        head = f"{self.module}.{self.method} ({dims or 'no bound dims'}, {self.n_params} params)"
        if self.ok:
            return f"ok    {head}"
        lines = [f"FAIL  {head}"]
        for violation in self.violations:
            lines.append(f"      contract violation: {violation}")
        for name in self.dead_params:
            lines.append(
                f"      dead parameter (unreachable from outputs): {name}"
            )
        for name, op, path in self.severed_params:
            lines.append(
                f"      severed gradient: {name} reaches the output only "
                f"through {op!r} at {path}"
            )
        if self.no_grad_output:
            lines.append(
                "      no grad path: outputs carry no gradient route to any parameter"
            )
        return "\n".join(lines)

    def first_error(self) -> GraphContractError:
        """The violation to raise when ``raise_on_error`` is set."""
        if self.violations:
            return self.violations[0]
        details = []
        if self.dead_params:
            details.append(f"dead parameters {self.dead_params}")
        for name, op, path in self.severed_params:
            details.append(f"gradient to {name!r} severed by {op!r} at {path}")
        if self.no_grad_output:
            details.append("outputs have no grad path to any parameter")
        return GraphContractError(
            f"{self.module}.{self.method}: gradient-flow audit failed: "
            + "; ".join(details),
            module_path=self.module,
            op="grad_audit",
        )


def _collect_generators(module: Module) -> List[np.random.Generator]:
    found: Dict[int, np.random.Generator] = {}
    for sub in module.modules():
        for value in vars(sub).values():
            if isinstance(value, np.random.Generator):
                found.setdefault(id(value), value)
    return list(found.values())


def _collect_outputs(value: Any, into: List[SymbolicTensor]) -> None:
    if isinstance(value, SymbolicTensor):
        into.append(value)
    elif isinstance(value, (tuple, list)):
        for item in value:
            _collect_outputs(item, into)
    elif isinstance(value, dict):
        for item in value.values():
            _collect_outputs(item, into)
    elif isinstance(value, Tensor):
        # A traced method returning a *real* tensor means the value never
        # passed through a traced op; the grad audit treats it as opaque.
        pass


def verify(
    module: Module,
    contract: Optional[Contract] = None,
    raise_on_error: bool = False,
) -> Report:
    """Symbolically verify a module against its ``@contract``.

    Args:
        module: any :class:`repro.nn.Module` whose class (or the explicit
            ``contract`` argument) declares a graph contract.
        contract: overrides the class-attached contract.
        raise_on_error: raise the first
            :class:`~repro.runtime.errors.GraphContractError` instead of
            returning a failing report.

    Returns:
        A :class:`Report`; ``report.ok`` is True when every shape/dtype
        contract holds and the gradient-flow audit is clean.
    """
    if contract is None:
        contract = getattr(type(module), "__graph_contract__", None)
    if contract is None:
        raise ValueError(
            f"{type(module).__name__} has no @contract declaration; "
            "decorate the class or pass contract= explicitly"
        )

    generators = _collect_generators(module)
    snapshots = [copy.deepcopy(rng.bit_generator.state) for rng in generators]

    env = DimEnv()
    bound = contract.bind_dims(module)
    env.bind_all(bound)
    session = TraceSession(module, env=env, audit=contract.audit)
    report = Report(
        module=type(module).__name__,
        method=contract.method,
        bound_dims=dict(bound),
        n_params=len(session.param_names),
    )

    outputs: List[SymbolicTensor] = []
    try:
        with session.active():
            try:
                args, kwargs = session.build_probe_inputs(module, contract)
                binding = dict(bound)
                session.check_inputs(module, contract, args, kwargs, binding)
                result = getattr(module, contract.method)(*args, **kwargs)
                if contract.outputs is not None:
                    session.check_value(
                        result, contract.outputs, binding, "output", contract.method
                    )
                report.bound_dims = dict(binding)
                _collect_outputs(result, outputs)
            except GraphContractError as exc:
                report.violations.append(exc)
    finally:
        for rng, state in zip(generators, snapshots):
            rng.bit_generator.state = state

    if contract.audit and not report.violations and outputs:
        registered = set(session.param_names.values())
        grad_reached: set = set()
        data_reached: set = set()
        for out in outputs:
            grad_reached |= out.grad_roots
            data_reached |= out.data_roots
        report.dead_params = sorted(registered - data_reached)
        for name in sorted((data_reached - grad_reached) & registered):
            op, path = session.severed.get(name, ("detach/no_grad", report.module))
            report.severed_params.append((name, op, path))
        report.no_grad_output = bool(registered) and not grad_reached

    if raise_on_error and not report.ok:
        raise report.first_error()
    return report
