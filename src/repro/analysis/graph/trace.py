"""Trace sessions: run a real ``Module.forward`` over symbolic tensors.

A :class:`TraceSession` installs two hooks for the duration of one
verification run:

* a *tensor hook* in :mod:`repro.nn.tensor` — ``Tensor(...)`` construction
  inside traced code lifts the data into a :class:`SymbolicTensor`, real
  tensor ops report their outputs for parameter-lineage bookkeeping, and the
  ``concat``/``stack``/``where`` free functions dispatch to their symbolic
  counterparts when any operand is symbolic;
* a *call hook* in :mod:`repro.nn.module` — every ``module(...)`` call is
  routed through :meth:`TraceSession.call_module`, which records the dotted
  module path (for violation messages) and checks the module's
  ``@contract`` declaration against the actual symbolic inputs/outputs.

No real compute happens beyond tiny probe-sized shadow arrays; the shipped
forwards run unmodified.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...nn import module as module_mod
from ...nn import tensor as tensor_mod
from ...nn.module import Module
from ...nn.tensor import Tensor, is_grad_enabled
from ...runtime.errors import GraphContractError
from .spec import ANY, Contract, Dim, DimEnv, Spec, render_dims
from .symbolic import SymbolicTensor, sym_concat, sym_stack, sym_where

__all__ = ["TraceSession"]

_EMPTY = frozenset()


class TraceSession:
    """One symbolic trace of a module tree: hooks, paths, lineage, checks."""

    def __init__(self, root: Module, env: Optional[DimEnv] = None, audit: bool = True) -> None:
        self.root = root
        self.env = env if env is not None else DimEnv()
        self.audit = audit
        # Dotted-path stack of modules currently executing (innermost last).
        # Named path_stack, not stack: the stack() hook method must stay
        # callable on the instance.
        self.path_stack: List[str] = [type(root).__name__]
        self.paths: Dict[int, str] = {}
        self._name_modules(root, type(root).__name__)
        self.param_names: Dict[int, str] = {
            id(param): name for name, param in root.named_parameters()
        }
        # Lineage of *real* tensors created during the trace (e.g. weight.T):
        # id -> (grad_roots, data_roots).  ``_keep`` pins the objects so ids
        # are never recycled while the session lives.
        self.lineage: Dict[int, Tuple[frozenset, frozenset]] = {}
        self._keep: List[Tensor] = []
        #: First sever event per parameter: root name -> (op, module path).
        self.severed: Dict[str, Tuple[str, str]] = {}

    def _name_modules(self, module: Module, path: str) -> None:
        self.paths[id(module)] = path
        for name, child in module._modules.items():
            self._name_modules(child, f"{path}.{name}")

    # ------------------------------------------------------------------
    # Session state used by the symbolic ops
    # ------------------------------------------------------------------
    def current_path(self) -> str:
        return self.path_stack[-1]

    def record_sever(self, op: str, roots: frozenset) -> None:
        for root in roots:
            self.severed.setdefault(root, (op, self.current_path()))

    def roots_of(self, value: Any) -> Tuple[frozenset, frozenset]:
        """(grad_roots, data_roots) reaching a real or symbolic tensor."""
        if isinstance(value, SymbolicTensor):
            return value.grad_roots, value.data_roots
        name = self.param_names.get(id(value))
        if name is not None:
            roots = frozenset((name,))
            return roots, roots
        return self.lineage.get(id(value), (_EMPTY, _EMPTY))

    def coerce(self, value: Any) -> SymbolicTensor:
        """Lift any operand (symbolic, real tensor, array, scalar) to symbolic."""
        if isinstance(value, SymbolicTensor):
            return value
        if isinstance(value, Tensor):
            grad_roots, data_roots = self.roots_of(value)
            shadow = np.asarray(value.data, dtype=np.float64)
            return SymbolicTensor(
                dims=self.env.name_shape(shadow.shape, origin="external"),
                shadow=shadow,
                requires_grad=value.requires_grad and is_grad_enabled(),
                grad_roots=grad_roots,
                data_roots=data_roots,
                session=self,
            )
        shadow = np.asarray(value, dtype=np.float64)
        return SymbolicTensor(
            dims=self.env.name_shape(shadow.shape, origin="external"),
            shadow=shadow,
            session=self,
        )

    # ------------------------------------------------------------------
    # Tensor hooks (installed into repro.nn.tensor)
    # ------------------------------------------------------------------
    def lift_new(self, data: Any, requires_grad: bool) -> SymbolicTensor:
        """Intercept ``Tensor(data)`` construction inside traced code."""
        sym = self.coerce(data)
        if requires_grad and is_grad_enabled() and not sym.requires_grad:
            sym = SymbolicTensor(
                dims=sym.dims,
                shadow=sym.shadow,
                requires_grad=True,
                grad_roots=sym.grad_roots,
                data_roots=sym.data_roots,
                session=self,
            )
        return sym

    def note_real(self, out: Tensor, parents: Sequence[Any]) -> None:
        """Track parameter lineage through ops on *real* tensors."""
        grad_roots: frozenset = _EMPTY
        data_roots: frozenset = _EMPTY
        for parent in parents:
            g, d = self.roots_of(parent)
            grad_roots = grad_roots | g
            data_roots = data_roots | d
        if not data_roots:
            return
        if not is_grad_enabled():
            if grad_roots and self.audit:
                self.record_sever("no_grad", grad_roots)
            grad_roots = _EMPTY
        self.lineage[id(out)] = (grad_roots, data_roots)
        self._keep.append(out)

    def concat(self, tensors: Sequence[Any], axis: int) -> Optional[SymbolicTensor]:
        if not any(isinstance(t, SymbolicTensor) for t in tensors):
            return None
        return sym_concat(self, tensors, axis)

    def stack(self, tensors: Sequence[Any], axis: int) -> Optional[SymbolicTensor]:
        if not any(isinstance(t, SymbolicTensor) for t in tensors):
            return None
        return sym_stack(self, tensors, axis)

    def where(self, condition: Any, a: Any, b: Any) -> Optional[SymbolicTensor]:
        if not any(isinstance(v, SymbolicTensor) for v in (condition, a, b)):
            return None
        return sym_where(self, condition, a, b)

    # ------------------------------------------------------------------
    # Module-call hook (installed into repro.nn.module)
    # ------------------------------------------------------------------
    def call_module(self, module: Module, args: tuple, kwargs: dict):
        path = self.paths.get(id(module), type(module).__name__)
        self.path_stack.append(path)
        try:
            contract = getattr(type(module), "__graph_contract__", None)
            binding: Optional[Dict[str, int]] = None
            checked = contract is not None and contract.method == "forward"
            if checked:
                binding = dict(contract.bind_dims(module))
                self.check_inputs(module, contract, args, kwargs, binding)
            out = module.forward(*args, **kwargs)
            if checked and contract.outputs is not None:
                self.check_value(out, contract.outputs, binding, "output", contract.method)
            return out
        finally:
            self.path_stack.pop()

    # ------------------------------------------------------------------
    # Contract checking
    # ------------------------------------------------------------------
    def check_inputs(
        self,
        module: Module,
        contract: Contract,
        args: tuple,
        kwargs: dict,
        binding: Dict[str, int],
    ) -> None:
        names = contract.signature_names(module)
        bound = dict(zip(names, args))
        bound.update(kwargs)
        for name, spec_tree in contract.inputs.items():
            if name not in bound or bound[name] is None:
                continue  # defaulted argument: nothing to check
            self.check_value(bound[name], spec_tree, binding, name, contract.method)

    def _fail_contract(
        self, method: str, label: str, detail: str,
        expected: Optional[str] = None, actual: Optional[str] = None,
    ) -> None:
        path = self.current_path()
        message = f"{path}.{method}: '{label}' {detail}"
        if expected is not None:
            message += f" (expected {expected}, got {actual})"
        raise GraphContractError(
            message,
            module_path=path,
            op=f"{method}:{label}",
            expected=expected,
            actual=actual,
        )

    def check_value(
        self, value: Any, spec_tree: Any, binding: Dict[str, int],
        label: str, method: str,
    ) -> None:
        """Check a value against a spec tree, unifying named dims via ``binding``."""
        if spec_tree is None or spec_tree is ANY:
            return
        if isinstance(spec_tree, Spec):
            self._check_tensor(value, spec_tree, binding, label, method)
            return
        if isinstance(spec_tree, Mapping):
            if not isinstance(value, Mapping):
                self._fail_contract(
                    method, label,
                    f"expected a mapping of tensors, got {type(value).__name__}",
                )
            # Intersection semantics: optional keys (e.g. a disabled ResGen's
            # mu/log_sigma) are not required, but present keys must conform.
            for key, sub in spec_tree.items():
                if key in value:
                    self.check_value(value[key], sub, binding, f"{label}[{key!r}]", method)
            return
        if isinstance(spec_tree, (tuple, list)):
            if not isinstance(value, (tuple, list)) or len(value) != len(spec_tree):
                got = (
                    f"a {len(value)}-element {type(value).__name__}"
                    if isinstance(value, (tuple, list))
                    else type(value).__name__
                )
                self._fail_contract(
                    method, label,
                    f"expected a {len(spec_tree)}-element sequence, got {got}",
                )
            for i, (item, sub) in enumerate(zip(value, spec_tree)):
                self.check_value(item, sub, binding, f"{label}[{i}]", method)
            return
        raise TypeError(f"unsupported spec tree entry for {label!r}: {spec_tree!r}")

    @staticmethod
    def _dims_of(value: Any) -> Optional[Tuple[Tuple[Dim, ...], Any, Optional[bool]]]:
        """(dims, dtype, requires_grad) of a checkable value, else None."""
        if isinstance(value, SymbolicTensor):
            return value.dims, value.shadow.dtype, value.requires_grad
        if isinstance(value, Tensor):
            dims = tuple(Dim(int(s)) for s in value.data.shape)
            return dims, value.data.dtype, value.requires_grad
        if isinstance(value, np.ndarray):
            return tuple(Dim(int(s)) for s in value.shape), value.dtype, None
        if isinstance(value, (int, float, np.floating, np.integer)):
            return (), np.asarray(value).dtype, None
        return None

    def _check_tensor(
        self, value: Any, spec: Spec, binding: Dict[str, int],
        label: str, method: str,
    ) -> None:
        described = self._dims_of(value)
        if described is None:
            self._fail_contract(
                method, label, f"expected a tensor, got {type(value).__name__}"
            )
        dims, dtype, requires_grad = described
        fixed = spec.fixed
        if spec.has_ellipsis:
            if len(dims) < len(fixed):
                self._fail_contract(
                    method, label,
                    f"rank drift: needs at least rank {len(fixed)}, got rank {len(dims)}",
                    expected=spec.render(binding), actual=render_dims(dims),
                )
            tail = dims[len(dims) - len(fixed):] if fixed else ()
        else:
            if len(dims) != len(fixed):
                self._fail_contract(
                    method, label,
                    f"rank drift: expected rank {len(fixed)}, got rank {len(dims)}",
                    expected=spec.render(binding), actual=render_dims(dims),
                )
            tail = dims
        for entry, dim in zip(fixed, tail):
            if isinstance(entry, str):
                expected_value = binding.get(entry)
                if expected_value is None:
                    binding[entry] = int(dim)
                elif int(dim) != expected_value:
                    self._fail_contract(
                        method, label,
                        f"dim {entry!r} should be {expected_value}, got {int(dim)}",
                        expected=spec.render(binding), actual=render_dims(dims),
                    )
            elif int(entry) != int(dim):
                self._fail_contract(
                    method, label,
                    f"fixed dim should be {int(entry)}, got {int(dim)}",
                    expected=spec.render(binding), actual=render_dims(dims),
                )
        if spec.dtype is not None:
            actual_dtype = np.dtype(dtype)
            if actual_dtype != spec.dtype:
                detail = f"dtype should be {spec.dtype}, got {actual_dtype}"
                if actual_dtype.itemsize < spec.dtype.itemsize:
                    detail += " (precision truncation, e.g. float64 -> float32)"
                self._fail_contract(method, label, detail)
        if spec.requires_grad is not None and requires_grad is not None:
            if bool(requires_grad) != spec.requires_grad:
                self._fail_contract(
                    method, label,
                    f"requires_grad should be {spec.requires_grad}, got {bool(requires_grad)}",
                )

    # ------------------------------------------------------------------
    # Probe construction for standalone verification
    # ------------------------------------------------------------------
    def build_probe_inputs(self, module: Module, contract: Contract) -> Tuple[tuple, dict]:
        """Probe (args, kwargs) for the contract's entry method."""
        if contract.build_inputs is not None:
            return contract.build_inputs(module, self.env)
        kwargs = {}
        for name in contract.signature_names(module):
            if name in contract.inputs:
                kwargs[name] = self._build_value(contract.inputs[name], name)
        return (), kwargs

    def _build_value(self, spec_tree: Any, label: str) -> Any:
        if isinstance(spec_tree, Spec):
            dims: List[Dim] = []
            for entry in spec_tree.shape:
                if entry == "...":
                    dims.append(self.env.fresh("B"))
                elif isinstance(entry, str):
                    dims.append(self.env.fresh(entry))
                else:
                    dims.append(Dim(int(entry), origin="spec"))
            shadow = np.zeros(
                tuple(int(d) for d in dims),
                dtype=spec_tree.dtype if spec_tree.dtype is not None else np.float64,
            )
            if spec_tree.array:
                return shadow
            return SymbolicTensor(
                dims=tuple(dims),
                shadow=shadow,
                requires_grad=bool(spec_tree.requires_grad),
                session=self,
            )
        if isinstance(spec_tree, (tuple, list)):
            return tuple(
                self._build_value(sub, f"{label}[{i}]") for i, sub in enumerate(spec_tree)
            )
        if isinstance(spec_tree, Mapping):
            return {
                key: self._build_value(sub, f"{label}[{key!r}]")
                for key, sub in spec_tree.items()
            }
        raise GraphContractError(
            f"cannot build a probe for input {label!r} declared as {spec_tree!r}; "
            "give the contract a build_inputs callable",
            module_path=self.current_path(),
            op=f"probe:{label}",
        )

    # ------------------------------------------------------------------
    # Hook lifecycle
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def active(self):
        """Install the tensor + module hooks for the duration of the trace."""
        prev_tensor = tensor_mod._set_symbolic_hook(self)
        prev_module = module_mod._set_call_hook(self)
        if prev_tensor is not None or prev_module is not None:
            tensor_mod._set_symbolic_hook(prev_tensor)
            module_mod._set_call_hook(prev_module)
            raise RuntimeError("a symbolic trace is already active; traces do not nest")
        try:
            yield self
        finally:
            tensor_mod._set_symbolic_hook(prev_tensor)
            module_mod._set_call_hook(prev_module)
