"""Symbolic graph verification for :mod:`repro.nn` models.

Traces a module's real ``forward`` over :class:`SymbolicTensor` probes —
named dims, tiny shadow arrays, no real compute — checking the per-module
``@contract`` shape/dtype declarations and auditing gradient flow (dead
weights, ``detach()``/``no_grad``-severed paths).

Only the contract *language* (:mod:`~repro.analysis.graph.spec`) is imported
eagerly: model modules decorate themselves with :func:`contract`, so this
package must stay import-light to avoid a cycle with ``repro.nn``.  The
tracer and verifier load on the first :func:`verify` call.
"""

from .spec import ANY, Contract, Dim, DimEnv, Spec, contract, render_dims

__all__ = [
    "ANY",
    "Contract",
    "Dim",
    "DimEnv",
    "Spec",
    "contract",
    "render_dims",
    "verify",
]


def verify(module, contract=None, raise_on_error=False):
    """Verify a module against its ``@contract``; see
    :func:`repro.analysis.graph.verifier.verify` (lazy import keeps the
    decorator path light)."""
    from .verifier import verify as _verify

    return _verify(module, contract=contract, raise_on_error=raise_on_error)
