"""Registry of shipped model builders for ``repro verify-graph``.

Every contracted model class in :mod:`repro.core`, :mod:`repro.baselines`
and :mod:`repro.nn.lstm` gets a small representative instance here so the
CLI (and the CI gate) can verify the whole model zoo in one sweep.

:func:`seeded_defects` additionally builds modules with *known* graph bugs —
a mis-sized ResGen AR window, an accidental broadcast in a residual add, and
a parameter unreachable from the loss — used by ``verify-graph --self-test``
to prove the verifier actually catches the defect classes it claims to.

This module imports the model packages, so it must only be loaded from the
CLI/tests, never from :mod:`repro.analysis.graph` itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ... import nn
from ...baselines.doppelganger import _DGDiscriminator, _DGGenerator
from ...baselines.lstm_gnn import _LstmGnnNet
from ...context.normalize import N_CELL_FEATURES
from ...core.config import small_config
from ...core.generator import GenDTGenerator
from ...core.networks import (
    AggregationNetwork,
    Discriminator,
    GnnNodeNetwork,
    ResGen,
)
from ...core.stochastic_lstm import StochasticLSTM
from .spec import Spec, contract

__all__ = ["DefectEntry", "RegistryEntry", "seeded_defects", "shipped_entries"]


@dataclass(frozen=True)
class RegistryEntry:
    """One verifiable shipped model: name, description, seeded builder."""

    name: str
    description: str
    build: Callable[[int], nn.Module]


@dataclass(frozen=True)
class DefectEntry:
    """A deliberately broken module and a substring the error must contain."""

    name: str
    description: str
    build: Callable[[int], nn.Module]
    expect: str


def _build_linear(seed: int = 0) -> nn.Module:
    return nn.Linear(12, 6, np.random.default_rng(seed))


def _build_mlp(seed: int = 0) -> nn.Module:
    return nn.MLP(12, [16, 8], 4, np.random.default_rng(seed), dropout=0.2)


def _build_lstm_cell(seed: int = 0) -> nn.Module:
    return nn.LSTMCell(9, 14, np.random.default_rng(seed))


def _build_lstm(seed: int = 0) -> nn.Module:
    return nn.LSTM(9, 14, np.random.default_rng(seed), num_layers=2)


def _build_lstm_regressor(seed: int = 0) -> nn.Module:
    return nn.LSTMRegressor(9, 14, 3, np.random.default_rng(seed))


def _build_stochastic_lstm(seed: int = 0) -> nn.Module:
    return StochasticLSTM(9, 14, np.random.default_rng(seed))


def _build_gnn_node(seed: int = 0) -> nn.Module:
    return GnnNodeNetwork(N_CELL_FEATURES, small_config(), np.random.default_rng(seed))


def _build_aggregation(seed: int = 0) -> nn.Module:
    return AggregationNetwork(2, small_config(), np.random.default_rng(seed))


def _build_resgen(seed: int = 0) -> nn.Module:
    return ResGen(28, 2, small_config(), np.random.default_rng(seed))


def _build_discriminator(seed: int = 0) -> nn.Module:
    return Discriminator(2, small_config(), np.random.default_rng(seed))


def _build_gendt_generator(seed: int = 0) -> nn.Module:
    return GenDTGenerator(2, 28, small_config(), np.random.default_rng(seed))


def _build_gendt_generator_no_resgen(seed: int = 0) -> nn.Module:
    return GenDTGenerator(
        2, 28, small_config(use_resgen=False), np.random.default_rng(seed)
    )


def _build_lstm_gnn(seed: int = 0) -> nn.Module:
    return _LstmGnnNet(N_CELL_FEATURES, 16, 2, np.random.default_rng(seed))


def _build_dg_generator(seed: int = 0) -> nn.Module:
    return _DGGenerator(10, 4, 16, 2, np.random.default_rng(seed))


def _build_dg_discriminator(seed: int = 0) -> nn.Module:
    return _DGDiscriminator(10, 2, 16, np.random.default_rng(seed))


def shipped_entries() -> List[RegistryEntry]:
    """Every shipped contracted model class, smallest sensible instance."""
    return [
        RegistryEntry("linear", "nn.Linear affine layer", _build_linear),
        RegistryEntry("mlp", "nn.MLP with dropout", _build_mlp),
        RegistryEntry("lstm_cell", "nn.LSTMCell single step", _build_lstm_cell),
        RegistryEntry("lstm", "nn.LSTM, 2 stacked layers", _build_lstm),
        RegistryEntry("lstm_regressor", "nn.LSTMRegressor", _build_lstm_regressor),
        RegistryEntry(
            "stochastic_lstm", "GenDT SRNN layer (noise-injected LSTM)",
            _build_stochastic_lstm,
        ),
        RegistryEntry("gnn_node", "G_n node network", _build_gnn_node),
        RegistryEntry("aggregation", "G_a aggregation network", _build_aggregation),
        RegistryEntry("resgen", "G_r residual generator", _build_resgen),
        RegistryEntry("discriminator", "GenDT discriminator R", _build_discriminator),
        RegistryEntry(
            "gendt_generator", "full GenDT generator (teacher-forced)",
            _build_gendt_generator,
        ),
        RegistryEntry(
            "gendt_generator_no_resgen", "GenDT generator, ResGen ablated",
            _build_gendt_generator_no_resgen,
        ),
        RegistryEntry("lstm_gnn", "LSTM-GNN baseline network", _build_lstm_gnn),
        RegistryEntry("dg_generator", "DoppelGANger stage-2 generator", _build_dg_generator),
        RegistryEntry(
            "dg_discriminator", "DoppelGANger discriminator", _build_dg_discriminator
        ),
    ]


# ----------------------------------------------------------------------
# Seeded defects: modules with known graph bugs the verifier must catch.
# ----------------------------------------------------------------------
@contract(
    inputs={"x": Spec("B", "L", "C")},
    outputs=Spec("B", "L", "C"),
    dims={"C": "head.out_features"},
)
class _BroadcastResidualNet(nn.Module):
    """Defect: the residual add manufactures a plain size-1 axis via reshape,
    silently broadcasting the *last step* over the whole sequence."""

    def __init__(self, n_channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.head = nn.Linear(n_channels, n_channels, rng)

    def forward(self, x):
        base = self.head(x)
        last = base[:, -1, :]
        residual = last.reshape(x.shape[0], 1, self.head.out_features)
        return base + residual


@contract(
    inputs={"x": Spec("B", "F")},
    outputs=Spec("B", "O"),
    dims={"F": "used.in_features", "O": "used.out_features"},
)
class _DeadWeightNet(nn.Module):
    """Defect: a registered layer the forward pass never touches."""

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self.used = nn.Linear(8, 4, rng)
        self.orphan = nn.Linear(8, 4, rng)

    def forward(self, x):
        return self.used(x)


@contract(
    inputs={"x": Spec("B", "F")},
    outputs=Spec("B", "O"),
    dims={"F": "stem.in_features", "O": "stem.out_features"},
)
class _DetachedHeadNet(nn.Module):
    """Defect: the output reaches its parameters only through detach()."""

    def __init__(self, rng: np.random.Generator) -> None:
        super().__init__()
        self.stem = nn.Linear(8, 8, rng)

    def forward(self, x):
        return self.stem(x).detach()


def _build_miswindowed_resgen(seed: int = 0) -> nn.Module:
    config = small_config()
    module = ResGen(28, 2, config, np.random.default_rng(seed))
    # Simulates loading weights trained with a different AR window m: the
    # recent-residuals input no longer matches the MLP's first layer.
    module.ar_window = config.resgen_ar_window + 2
    return module


def _build_broadcast_residual(seed: int = 0) -> nn.Module:
    return _BroadcastResidualNet(3, np.random.default_rng(seed))


def _build_dead_weight(seed: int = 0) -> nn.Module:
    return _DeadWeightNet(np.random.default_rng(seed))


def _build_detached_head(seed: int = 0) -> nn.Module:
    return _DetachedHeadNet(np.random.default_rng(seed))


def seeded_defects() -> List[DefectEntry]:
    """(name, builder, expected-error-substring) triples for --self-test."""
    return [
        DefectEntry(
            "resgen_miswindowed",
            "ResGen AR window m disagrees with the trained MLP input width",
            _build_miswindowed_resgen,
            "mlp",
        ),
        DefectEntry(
            "broadcast_residual",
            "residual add silently broadcasts a reshape-made size-1 axis",
            _build_broadcast_residual,
            "broadcast",
        ),
        DefectEntry(
            "dead_weight",
            "registered parameter unreachable from the outputs",
            _build_dead_weight,
            "dead",
        ),
        DefectEntry(
            "detached_head",
            "gradient path severed by detach()",
            _build_detached_head,
            "severed",
        ),
    ]
