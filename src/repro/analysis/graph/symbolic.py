"""Symbolic tensors: shape/dtype/grad-lineage shadows of ``repro.nn.Tensor``.

A :class:`SymbolicTensor` mirrors the full op vocabulary of
:mod:`repro.nn.tensor` but records *symbolic* shapes (tuples of
:class:`~repro.analysis.graph.spec.Dim`) and gradient lineage (which
parameters reach this value, and through which grad-carrying paths) instead
of an autodiff tape.  It also carries a tiny concrete ``shadow`` array —
shipped forwards interleave numpy side-computation (``state.data``,
``base.numpy()``), so a pure shape-only trace cannot execute them; the
shadow keeps that code running on probe-sized data while every tensor op is
checked symbolically.

Checks performed per op:

* elementwise broadcast unification — rank extension and *intentional*
  size-1 axes (external inputs, ``keepdims`` reductions, spec-declared) are
  allowed; a plain size-1 axis manufactured by a reshape/slice broadcasting
  against a real dimension raises an accidental-broadcast violation;
* named-dim alignment — two dims that happen to share a size but carry
  different bound names cannot be elementwise-combined;
* matmul inner-dimension agreement, reshape element-count conservation;
* float64→float32 truncation at contract boundaries (via dtype tracking).

Violations raise :class:`repro.runtime.errors.GraphContractError`
immediately, carrying the dotted module path of the op that failed.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from ...nn.tensor import is_grad_enabled
from ...runtime.errors import GraphContractError
from .spec import Dim, INTENTIONAL_ORIGINS, render_dims

__all__ = [
    "DIFFERENTIABLE_OPS",
    "SymbolicTensor",
    "broadcast_dims",
    "sym_concat",
    "sym_stack",
    "sym_where",
]

#: Ops through which the real engine propagates gradients.  The gradcheck
#: sweep in ``tests/test_tensor_gradcheck.py`` asserts it covers exactly this
#: set, so the symbolic table and the real backward passes cannot drift.
DIFFERENTIABLE_OPS = frozenset(
    {
        "add", "neg", "sub", "mul", "div", "pow", "sqrt", "matmul",
        "exp", "log", "tanh", "sigmoid", "relu", "leaky_relu", "softplus",
        "abs", "clip", "sum", "mean", "var",
        "reshape", "transpose", "getitem", "concat", "stack", "where",
    }
)

#: Ops that deliberately sever the gradient path.
NON_DIFFERENTIABLE_OPS = frozenset({"detach"})


def _fail(
    session,
    op: str,
    message: str,
    expected: Optional[str] = None,
    actual: Optional[str] = None,
) -> None:
    path = session.current_path()
    detail = f"{path}: op {op!r}: {message}"
    if expected is not None:
        detail += f" (expected {expected}, got {actual})"
    raise GraphContractError(
        detail, module_path=path, op=op, expected=expected, actual=actual
    )


def _merge_equal(da: Dim, db: Dim) -> Dim:
    """Pick the more informative of two same-valued aligned dims."""
    if int(da) == 1:
        if da.origin in INTENTIONAL_ORIGINS:
            return da
        if db.origin in INTENTIONAL_ORIGINS:
            return db
        return da
    if da.name:
        return da
    return db


def broadcast_dims(
    a: Tuple[Dim, ...],
    b: Tuple[Dim, ...],
    op: str,
    session,
    strict_ones: bool = True,
) -> Tuple[Dim, ...]:
    """Numpy broadcast rules over symbolic dims, with accident detection.

    ``strict_ones=False`` relaxes the accidental-broadcast check (used for
    matmul *batch* dims, where numpy broadcasts stacks by design).
    """
    la, lb = len(a), len(b)
    n = max(la, lb)
    out = []
    for i in range(n):
        ia, ib = i - (n - la), i - (n - lb)
        da = a[ia] if ia >= 0 else None
        db = b[ib] if ib >= 0 else None
        if da is None or db is None:
            # Rank extension (e.g. adding a bias vector) is always fine.
            out.append(da if db is None else db)
            continue
        va, vb = int(da), int(db)
        if va == vb:
            if da.name and db.name and da.name != db.name:
                _fail(
                    session, op,
                    f"axis {i - n} aligns dim {da.render()} with "
                    f"{db.render()}: same size ({va}) but different named "
                    "dimensions — likely a transposed or mis-ordered operand",
                    expected=render_dims(a), actual=render_dims(b),
                )
            out.append(_merge_equal(da, db))
        elif va == 1 or vb == 1:
            one, other = (da, db) if va == 1 else (db, da)
            if strict_ones and one.origin not in INTENTIONAL_ORIGINS:
                _fail(
                    session, op,
                    f"accidental broadcast on axis {i - n}: a size-1 axis "
                    "(not an input or keepdims reduction) is being "
                    f"broadcast against {other.render()}",
                    expected=render_dims(a), actual=render_dims(b),
                )
            out.append(other)
        else:
            _fail(
                session, op,
                "operands are not broadcast-compatible",
                expected=render_dims(a), actual=render_dims(b),
            )
    return tuple(out)


def _union(parents: Sequence["SymbolicTensor"], attr: str) -> frozenset:
    roots: frozenset = frozenset()
    for p in parents:
        roots = roots | getattr(p, attr)
    return roots


def _result(
    session,
    op: str,
    dims: Tuple[Dim, ...],
    shadow: np.ndarray,
    parents: Sequence["SymbolicTensor"],
    differentiable: bool = True,
) -> "SymbolicTensor":
    grad_on = differentiable and is_grad_enabled()
    data_roots = _union(parents, "data_roots")
    if grad_on:
        grad_roots = _union(parents, "grad_roots")
        requires = bool(grad_roots) or any(p.requires_grad for p in parents)
    else:
        grad_roots = frozenset()
        requires = False
        cut = _union(parents, "grad_roots")
        if cut and session.audit:
            session.record_sever(op, cut)
    return SymbolicTensor(
        dims=dims,
        shadow=shadow,
        requires_grad=requires,
        grad_roots=grad_roots,
        data_roots=data_roots,
        session=session,
    )


class SymbolicTensor:
    """A traced tensor: symbolic dims + shadow data + parameter lineage."""

    __slots__ = ("dims", "shadow", "requires_grad", "grad_roots", "data_roots", "session")

    __array_priority__ = 200  # beat both ndarray and Tensor in mixed ops

    def __init__(
        self,
        dims: Tuple[Dim, ...],
        shadow: np.ndarray,
        requires_grad: bool = False,
        grad_roots: frozenset = frozenset(),
        data_roots: frozenset = frozenset(),
        session=None,
    ) -> None:
        self.dims = tuple(dims)
        self.shadow = np.asarray(shadow)
        self.requires_grad = requires_grad
        self.grad_roots = grad_roots
        self.data_roots = data_roots
        self.session = session
        if self.shadow.shape != tuple(int(d) for d in self.dims):  # pragma: no cover
            raise AssertionError(
                f"shadow shape {self.shadow.shape} disagrees with symbolic "
                f"dims {render_dims(self.dims)}"
            )

    # ------------------------------------------------------------------
    # Tensor-compatible protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[Dim, ...]:
        return self.dims

    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def size(self) -> int:
        return int(self.shadow.size)

    @property
    def dtype(self) -> np.dtype:
        return self.shadow.dtype

    @property
    def data(self) -> np.ndarray:
        return self.shadow

    @property
    def grad(self) -> None:
        return None

    @property
    def T(self) -> "SymbolicTensor":
        return self.transpose()

    def __len__(self) -> int:
        return int(self.dims[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SymbolicTensor({render_dims(self.dims)}, dtype={self.shadow.dtype})"

    def item(self) -> float:
        return float(self.shadow.item())

    def numpy(self) -> np.ndarray:
        return self.shadow

    def detach(self) -> "SymbolicTensor":
        if self.grad_roots and self.session.audit:
            self.session.record_sever("detach", self.grad_roots)
        return SymbolicTensor(
            dims=self.dims,
            shadow=self.shadow,
            requires_grad=False,
            grad_roots=frozenset(),
            data_roots=self.data_roots,
            session=self.session,
        )

    def zero_grad(self) -> None:
        return None

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        _fail(self.session, "backward", "backward() is not available during symbolic tracing")

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _coerce(self, value: Any) -> "SymbolicTensor":
        return self.session.coerce(value)

    def _elementwise(
        self, other: Any, op: str, fn, differentiable: bool = True
    ) -> "SymbolicTensor":
        other = self._coerce(other)
        dims = broadcast_dims(self.dims, other.dims, op, self.session)
        shadow = fn(self.shadow, other.shadow)
        return _result(self.session, op, dims, shadow, (self, other), differentiable)

    def _unary(
        self, op: str, fn, dims: Optional[Tuple[Dim, ...]] = None
    ) -> "SymbolicTensor":
        shadow = fn(self.shadow)
        return _result(
            self.session, op, self.dims if dims is None else dims, shadow, (self,)
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Any) -> "SymbolicTensor":
        return self._elementwise(other, "add", lambda a, b: a + b)

    __radd__ = __add__

    def __neg__(self) -> "SymbolicTensor":
        return self._unary("neg", lambda a: -a)

    def __sub__(self, other: Any) -> "SymbolicTensor":
        return self._elementwise(other, "sub", lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "SymbolicTensor":
        return self._coerce(other) - self

    def __mul__(self, other: Any) -> "SymbolicTensor":
        return self._elementwise(other, "mul", lambda a, b: a * b)

    __rmul__ = __mul__

    def __truediv__(self, other: Any) -> "SymbolicTensor":
        return self._elementwise(other, "div", lambda a, b: a / b)

    def __rtruediv__(self, other: Any) -> "SymbolicTensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "SymbolicTensor":
        return self._unary("pow", lambda a: a**exponent)

    def __matmul__(self, other: Any) -> "SymbolicTensor":
        return self.matmul(other)

    def matmul(self, other: Any) -> "SymbolicTensor":
        other = self._coerce(other)
        a, b = self.dims, other.dims
        op = "matmul"
        if not a or not b:
            _fail(self.session, op, "matmul requires at least 1-D operands",
                  expected=render_dims(a), actual=render_dims(b))
        if len(b) == 1:
            if int(a[-1]) != int(b[0]):
                _fail(self.session, op,
                      f"inner dimensions disagree: {a[-1].render()} vs {b[0].render()}",
                      expected=render_dims(a), actual=render_dims(b))
            dims = a[:-1]
        elif len(a) == 1:
            if int(a[0]) != int(b[-2]):
                _fail(self.session, op,
                      f"inner dimensions disagree: {a[0].render()} vs {b[-2].render()}",
                      expected=render_dims(a), actual=render_dims(b))
            dims = b[:-2] + b[-1:]
        else:
            if int(a[-1]) != int(b[-2]):
                _fail(self.session, op,
                      f"inner dimensions disagree: {a[-1].render()} vs {b[-2].render()}",
                      expected=render_dims(a), actual=render_dims(b))
            batch = broadcast_dims(a[:-2], b[:-2], op, self.session, strict_ones=False)
            dims = batch + (a[-2], b[-1])
        shadow = self.shadow @ other.shadow
        return _result(self.session, op, dims, shadow, (self, other))

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "SymbolicTensor":
        return self._unary("exp", np.exp)

    def log(self) -> "SymbolicTensor":
        return self._unary("log", lambda a: np.log(np.where(a > 0, a, 1.0)))

    def sqrt(self) -> "SymbolicTensor":
        return self._unary("sqrt", lambda a: np.sqrt(np.abs(a)))

    def tanh(self) -> "SymbolicTensor":
        return self._unary("tanh", np.tanh)

    def sigmoid(self) -> "SymbolicTensor":
        return self._unary("sigmoid", lambda a: 1.0 / (1.0 + np.exp(-np.clip(a, -60.0, 60.0))))

    def relu(self) -> "SymbolicTensor":
        return self._unary("relu", lambda a: np.maximum(a, 0.0))

    def leaky_relu(self, negative_slope: float = 0.2) -> "SymbolicTensor":
        return self._unary("leaky_relu", lambda a: np.where(a > 0, a, negative_slope * a))

    def softplus(self) -> "SymbolicTensor":
        return self._unary("softplus", lambda a: np.log1p(np.exp(-np.abs(a))) + np.maximum(a, 0.0))

    def abs(self) -> "SymbolicTensor":
        return self._unary("abs", np.abs)

    def clip(self, lo: float, hi: float) -> "SymbolicTensor":
        return self._unary("clip", lambda a: np.clip(a, lo, hi))

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def _reduce_dims(self, axis, keepdims: bool) -> Tuple[Dim, ...]:
        if axis is None:
            if keepdims:
                return tuple(Dim(1, origin="keepdims") for _ in self.dims)
            return ()
        axes = (axis,) if isinstance(axis, int) else tuple(axis)
        axes = tuple(a % len(self.dims) for a in axes)
        out = []
        for i, d in enumerate(self.dims):
            if i in axes:
                if keepdims:
                    out.append(Dim(1, name=d.name, origin="keepdims"))
            else:
                out.append(d)
        return tuple(out)

    def sum(self, axis=None, keepdims: bool = False) -> "SymbolicTensor":
        dims = self._reduce_dims(axis, keepdims)
        shadow = self.shadow.sum(axis=axis, keepdims=keepdims)
        return _result(self.session, "sum", dims, shadow, (self,))

    def mean(self, axis=None, keepdims: bool = False) -> "SymbolicTensor":
        dims = self._reduce_dims(axis, keepdims)
        shadow = self.shadow.mean(axis=axis, keepdims=keepdims)
        return _result(self.session, "mean", dims, shadow, (self,))

    def var(self, axis=None, keepdims: bool = False) -> "SymbolicTensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "SymbolicTensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        known = [int(s) for s in shape if int(s) != -1]
        n_wild = sum(1 for s in shape if int(s) == -1)
        total = int(self.shadow.size)
        if n_wild > 1:
            _fail(self.session, "reshape", "at most one -1 allowed in reshape")
        if n_wild == 1:
            block = int(np.prod(known)) if known else 1
            if block == 0 or total % block != 0:
                _fail(self.session, "reshape",
                      "element count is not divisible by the known dims",
                      expected=render_dims(self.dims), actual=str(tuple(shape)))
        elif int(np.prod(known)) != total and total != 0:
            _fail(self.session, "reshape",
                  f"element count changes: {total} -> {int(np.prod(known))}",
                  expected=render_dims(self.dims), actual=str(tuple(shape)))
        env = self.session.env
        dims = []
        for s in shape:
            if isinstance(s, Dim):
                dims.append(s)
            elif int(s) == -1:
                block = int(np.prod(known)) if known else 1
                value = total // block if block else 0
                dims.append(Dim(value, name=env.lookup(value)))
            elif int(s) == 1:
                dims.append(Dim(1))
            else:
                dims.append(Dim(int(s), name=env.lookup(int(s))))
        shadow = self.shadow.reshape(tuple(int(d) for d in dims))
        return _result(self.session, "reshape", tuple(dims), shadow, (self,))

    def transpose(self, *axes) -> "SymbolicTensor":
        if not axes:
            dims = tuple(reversed(self.dims))
            shadow = self.shadow.T
        else:
            axes_tuple = tuple(int(a) for a in axes)
            dims = tuple(self.dims[a] for a in axes_tuple)
            shadow = self.shadow.transpose(axes_tuple)
        return _result(self.session, "transpose", dims, shadow, (self,))

    def _index_dims(self, index) -> Optional[Tuple[Dim, ...]]:
        """Symbolic result dims for basic indexing; None for advanced."""
        items = list(index) if isinstance(index, tuple) else [index]
        if any(isinstance(it, (list, np.ndarray, SymbolicTensor)) for it in items):
            return None
        n_concrete = sum(1 for it in items if it is not None and it is not Ellipsis)
        if Ellipsis in items:
            pos = items.index(Ellipsis)
            fill = len(self.dims) - n_concrete
            items[pos : pos + 1] = [slice(None)] * fill
        out = []
        di = 0
        for it in items:
            if it is None:
                # A None-inserted axis is a *plain* 1: broadcasting it later
                # is exactly the accident this verifier exists to catch.
                out.append(Dim(1))
                continue
            if di >= len(self.dims):
                return None
            d = self.dims[di]
            if isinstance(it, (int, np.integer)):
                di += 1
            elif isinstance(it, slice):
                length = len(range(*it.indices(int(d))))
                out.append(d if length == int(d) else Dim(length))
                di += 1
            else:
                return None
        out.extend(self.dims[di:])
        return tuple(out)

    def __getitem__(self, index) -> "SymbolicTensor":
        shadow = self.shadow[index]
        dims = self._index_dims(index)
        if dims is None or tuple(int(d) for d in dims) != shadow.shape:
            dims = self.session.env.name_shape(shadow.shape)
        return _result(self.session, "getitem", dims, shadow, (self,))


# ----------------------------------------------------------------------
# Free functions (dispatched from repro.nn.tensor during a trace)
# ----------------------------------------------------------------------
def sym_concat(session, tensors: Sequence[Any], axis: int = -1) -> SymbolicTensor:
    parts = [session.coerce(t) for t in tensors]
    rank = parts[0].ndim
    ax = axis % rank
    ref = parts[0].dims
    for p in parts[1:]:
        if p.ndim != rank:
            _fail(session, "concat", "rank mismatch between concatenated tensors",
                  expected=render_dims(ref), actual=render_dims(p.dims))
        for i in range(rank):
            if i == ax:
                continue
            if int(ref[i]) != int(p.dims[i]):
                _fail(session, "concat",
                      f"non-axis dim {i} differs between concatenated tensors",
                      expected=render_dims(ref), actual=render_dims(p.dims))
    joined = sum(int(p.dims[ax]) for p in parts)
    dims = list(ref)
    for i in range(rank):
        if i == ax:
            continue
        for p in parts[1:]:
            dims[i] = _merge_equal(dims[i], p.dims[i])
    dims[ax] = Dim(joined, name=session.env.lookup(joined))
    shadow = np.concatenate([p.shadow for p in parts], axis=axis)
    return _result(session, "concat", tuple(dims), shadow, parts)


def sym_stack(session, tensors: Sequence[Any], axis: int = 0) -> SymbolicTensor:
    parts = [session.coerce(t) for t in tensors]
    ref = parts[0].dims
    for p in parts[1:]:
        if tuple(int(d) for d in p.dims) != tuple(int(d) for d in ref):
            _fail(session, "stack", "stacked tensors must share their shape",
                  expected=render_dims(ref), actual=render_dims(p.dims))
    new = Dim(len(parts), name=session.env.lookup(len(parts)))
    ax = axis % (len(ref) + 1)
    dims = ref[:ax] + (new,) + ref[ax:]
    shadow = np.stack([p.shadow for p in parts], axis=axis)
    return _result(session, "stack", dims, shadow, parts)


def sym_where(session, condition: Any, a: Any, b: Any) -> SymbolicTensor:
    cond = session.coerce(np.asarray(condition, dtype=bool))
    a = session.coerce(a)
    b = session.coerce(b)
    dims = broadcast_dims(a.dims, b.dims, "where", session)
    dims = broadcast_dims(dims, cond.dims, "where", session)
    shadow = np.where(cond.shadow, a.shadow, b.shadow)
    return _result(session, "where", dims, shadow, (a, b))
