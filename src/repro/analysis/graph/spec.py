"""Contract specification language for the symbolic graph verifier.

This module is deliberately a *leaf*: it imports nothing from ``repro.nn``
or the rest of :mod:`repro.analysis.graph`, so model modules can decorate
themselves with :func:`contract` without creating an import cycle (the
tracer imports the model packages, which import this file).

The pieces:

* :class:`Dim` — an ``int`` subclass carrying a symbolic ``name`` (``"L"``,
  ``"H"``, ``"N_ch"``…) and an ``origin`` tag describing where a size-1 axis
  came from.  Being an ``int`` means symbolic shapes pass straight through
  numpy interop in traced forwards (``rng.normal(size=shape)``,
  ``range(steps)``, ``np.zeros((b, h))``).
* :class:`Spec` — one tensor's expected shape (named dims / literal ints /
  a leading ``"..."`` ellipsis), plus optional dtype and requires_grad.
* :data:`ANY` — "do not check this value".
* :class:`Contract` + the :func:`contract` decorator — a module's entry
  method, its input/output spec trees, and the ``dims`` mapping that binds
  symbolic names to the concrete architecture (ints, dotted attribute
  paths, or callables on the module instance).
* :class:`DimEnv` — the binding environment of one verification run: known
  name→value bindings, fresh probe values for free dims, and the reverse
  value→name map used to name dims of arrays lifted mid-trace.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

__all__ = ["ANY", "Contract", "Dim", "DimEnv", "Spec", "contract", "render_dims"]


class _Any:
    """Sentinel: skip checking/building this input or output."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "ANY"


ANY = _Any()

#: ``origin`` values of a size-1 axis that may legitimately broadcast.
#: Anything else (a plain 1 from a reshape/slice) is flagged as accidental.
INTENTIONAL_ORIGINS = ("external", "keepdims", "spec")


class Dim(int):
    """A symbolic dimension: an ``int`` with a name and an origin tag.

    Arithmetic on Dims degrades to plain ints (``b * n_c`` loses the names),
    which is correct: derived sizes are re-named, when unambiguous, through
    :meth:`DimEnv.lookup`.
    """

    def __new__(
        cls, value: int, name: Optional[str] = None, origin: Optional[str] = None
    ) -> "Dim":
        self = super().__new__(cls, int(value))
        self.name = name
        self.origin = origin
        return self

    def render(self) -> str:
        if self.name:
            return self.name
        return str(int(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.name:
            return f"Dim({int(self)}, {self.name!r})"
        return f"Dim({int(self)})"


def as_dim(value: Any) -> Dim:
    return value if isinstance(value, Dim) else Dim(int(value))


def render_dims(dims: Iterable[Any]) -> str:
    """``[B, L, 28]``-style rendering of a symbolic or concrete shape."""
    parts = []
    for d in dims:
        parts.append(d.render() if isinstance(d, Dim) else str(int(d)))
    return "[" + ", ".join(parts) + "]"


ShapeEntry = Union[str, int]


class Spec:
    """Expected shape (and optionally dtype / requires_grad) of one tensor.

    ``Spec("B", "L", "H")`` — three named dims; names bind per contract
    check, so ``"B"`` unifies across every input/output of one module call.
    ``Spec("...", "N_env")`` — any leading rank, last dim must be N_env.
    Literal ints check exact sizes (``Spec("B", 1)``).

    ``array=True`` marks an input that the module consumes as a plain
    ``np.ndarray`` rather than a Tensor (several baselines do this); the
    default probe builder then materializes a numpy array.
    """

    __slots__ = ("shape", "dtype", "requires_grad", "array")

    def __init__(
        self,
        *shape: ShapeEntry,
        dtype: Optional[Any] = None,
        requires_grad: Optional[bool] = None,
        array: bool = False,
    ) -> None:
        if "..." in shape[1:]:
            raise ValueError("'...' is only supported as the leading entry")
        self.shape: Tuple[ShapeEntry, ...] = shape
        self.dtype = None if dtype is None else np.dtype(dtype)
        self.requires_grad = requires_grad
        self.array = array

    @property
    def has_ellipsis(self) -> bool:
        return bool(self.shape) and self.shape[0] == "..."

    @property
    def fixed(self) -> Tuple[ShapeEntry, ...]:
        """Shape entries excluding the leading ellipsis."""
        return self.shape[1:] if self.has_ellipsis else self.shape

    def render(self, binding: Optional[Mapping[str, int]] = None) -> str:
        parts = [str(entry) for entry in self.shape]
        text = "[" + ", ".join(parts) + "]"
        if binding:
            bound = [
                f"{entry}={binding[entry]}"
                for entry in self.shape
                if isinstance(entry, str) and entry in binding and entry != "..."
            ]
            if bound:
                text += " with " + ", ".join(bound)
        return text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Spec{self.shape!r}"


SpecTree = Any  # Spec | ANY | tuple/list/dict of SpecTree
DimValue = Union[int, str, Callable[[Any], int]]


class Contract:
    """A module's graph contract: entry method, input/output specs, dims."""

    __slots__ = ("method", "inputs", "outputs", "dims", "build_inputs", "audit")

    def __init__(
        self,
        inputs: Optional[Mapping[str, SpecTree]] = None,
        outputs: SpecTree = None,
        dims: Optional[Mapping[str, DimValue]] = None,
        method: str = "forward",
        build_inputs: Optional[Callable[[Any, "DimEnv"], Tuple[tuple, dict]]] = None,
        audit: bool = True,
    ) -> None:
        self.method = method
        self.inputs: Dict[str, SpecTree] = dict(inputs or {})
        self.outputs = outputs
        self.dims: Dict[str, DimValue] = dict(dims or {})
        self.build_inputs = build_inputs
        self.audit = audit

    def bind_dims(self, module: Any) -> Dict[str, int]:
        """Evaluate the ``dims`` mapping against a concrete module instance."""
        bound: Dict[str, int] = {}
        for name, value in self.dims.items():
            if isinstance(value, int):
                bound[name] = value
            elif isinstance(value, str):
                target = module
                for part in value.split("."):
                    target = getattr(target, part)
                bound[name] = int(target)
            elif callable(value):
                bound[name] = int(value(module))
            else:
                raise TypeError(
                    f"contract dim {name!r} must be int, attribute path or "
                    f"callable, got {type(value).__name__}"
                )
        return bound

    def signature_names(self, module: Any) -> List[str]:
        """Positional parameter names of the entry method (without self)."""
        fn = getattr(type(module), self.method)
        names = []
        for pname, param in inspect.signature(fn).parameters.items():
            if pname == "self":
                continue
            if param.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD,
            ):
                continue
            names.append(pname)
        return names


def contract(
    inputs: Optional[Mapping[str, SpecTree]] = None,
    outputs: SpecTree = None,
    dims: Optional[Mapping[str, DimValue]] = None,
    method: str = "forward",
    build_inputs: Optional[Callable[[Any, "DimEnv"], Tuple[tuple, dict]]] = None,
    audit: bool = True,
):
    """Class decorator attaching a :class:`Contract` as ``__graph_contract__``.

    The verifier checks the contract whenever the module is *called* during
    a symbolic trace (nested modules included) and uses it to build probe
    inputs when the module is verified standalone.
    """

    spec = Contract(
        inputs=inputs,
        outputs=outputs,
        dims=dims,
        method=method,
        build_inputs=build_inputs,
        audit=audit,
    )

    def decorate(cls):
        cls.__graph_contract__ = spec
        return cls

    return decorate


#: Fresh-dim probe candidates.  Distinct small primes so free dims (B, L,
#: N_c…) rarely collide with architecture sizes; collisions degrade only
#: the cosmetic reverse naming, never the value checks.
_PROBE_CANDIDATES = (5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43)


class DimEnv:
    """Name→value bindings plus the reverse map for one verification run."""

    def __init__(self) -> None:
        self.bindings: Dict[str, int] = {}
        self._reverse: Dict[int, Optional[str]] = {}  # None == ambiguous

    def bind(self, name: str, value: int) -> Dim:
        value = int(value)
        existing = self.bindings.get(name)
        if existing is not None and existing != value:
            raise ValueError(
                f"dim {name!r} bound to both {existing} and {value}"
            )
        self.bindings[name] = value
        if value > 1:  # never reverse-map size 1; it is too common
            if value in self._reverse and self._reverse[value] != name:
                self._reverse[value] = None  # ambiguous
            else:
                self._reverse[value] = name
        return Dim(value, name=name, origin="spec")

    def bind_all(self, bound: Mapping[str, int]) -> None:
        for name, value in bound.items():
            self.bind(name, value)

    def fresh(self, name: str) -> Dim:
        """Bind ``name`` to an unused probe value (or return its binding)."""
        if name in self.bindings:
            return Dim(self.bindings[name], name=name, origin="spec")
        used = set(self.bindings.values())
        for candidate in _PROBE_CANDIDATES:
            if candidate not in used:
                return self.bind(name, candidate)
        raise RuntimeError("probe candidates exhausted")  # pragma: no cover

    def lookup(self, value: int) -> Optional[str]:
        """Unambiguous name for a concrete size, if any."""
        return self._reverse.get(int(value))

    def name_shape(self, shape: Iterable[int], origin: Optional[str] = None) -> Tuple[Dim, ...]:
        """Symbolic dims for a concrete shape via the reverse map.

        Size-1 axes get the given ``origin`` (lifted external arrays pass
        ``"external"`` so their broadcast-1s are treated as intentional).
        """
        dims = []
        for size in shape:
            size = int(size)
            if size == 1:
                dims.append(Dim(1, origin=origin))
            else:
                dims.append(Dim(size, name=self.lookup(size)))
        return tuple(dims)
