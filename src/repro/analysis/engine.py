"""AST lint engine: file walking, rule dispatch, suppression, reporting.

The engine parses each Python file once, hands the tree to every registered
rule (see :mod:`repro.analysis.rules`), and filters the resulting
violations through per-line suppression comments of the form::

    risky_line()  # repro: noqa[RULE001]          suppress one rule
    risky_line()  # repro: noqa[RULE001,RULE002]  suppress several
    risky_line()  # repro: noqa                   suppress everything

Run it as ``python -m repro.cli lint src`` or ``python -m repro.analysis
src``; the exit code is 0 when the tree is clean, 1 when violations were
found, 2 on bad usage.  Files that do not parse are reported as ``E999``
violations rather than crashing the run, so one broken file cannot hide
findings in the rest of the tree.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

PathLike = Union[str, Path]

#: Matches a suppression comment anywhere in a line (case-insensitive tag).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Za-z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at ``path:line:col``."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-serializable form (for ``--format json`` and CI tooling)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class FileContext:
    """Everything a rule needs to inspect one parsed file."""

    path: Path
    tree: ast.AST
    lines: List[str] = field(default_factory=list)

    @property
    def display_path(self) -> str:
        return str(self.path)

    def in_package(self, *parts: str) -> bool:
        """True when ``parts`` appears as a contiguous run of path components.

        Used by path-scoped rules, e.g. TEN001 exempts files inside
        ``repro/nn``: ``ctx.in_package("repro", "nn")``.
        """
        own = Path(self.path).parts
        n = len(parts)
        return any(own[i : i + n] == parts for i in range(len(own) - n + 1))

    def violation(self, rule: str, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=rule,
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def suppressed_rules(line_text: str) -> Optional[Set[str]]:
    """Parse a source line's suppression comment.

    Returns ``None`` when the line has no ``repro: noqa`` comment, an empty
    set for a blanket ``# repro: noqa``, or the set of named rule IDs.
    """
    match = _NOQA_RE.search(line_text)
    if match is None:
        return None
    rules = match.group("rules")
    if rules is None:
        return set()
    return {part.strip().upper() for part in rules.split(",") if part.strip()}


def _is_suppressed(violation: Violation, lines: Sequence[str]) -> bool:
    if not 1 <= violation.line <= len(lines):
        return False
    rules = suppressed_rules(lines[violation.line - 1])
    if rules is None:
        return False
    return not rules or violation.rule in rules


def lint_file(
    path: PathLike,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one file; returns its (unsuppressed) violations sorted by line."""
    from .rules import iter_rules

    path = Path(path)
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule="E999",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, tree=tree, lines=lines)
    violations: List[Violation] = []
    for rule in iter_rules(select):
        violations.extend(rule.check(ctx))
    violations = [v for v in violations if not _is_suppressed(v, lines)]
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def iter_python_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: Dict[Path, None] = {}
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            for found in sorted(entry.rglob("*.py")):
                seen.setdefault(found, None)
        elif entry.suffix == ".py":
            seen.setdefault(entry, None)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {entry}")
    return sorted(seen)


def lint_paths(
    paths: Sequence[PathLike],
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint every ``.py`` file under ``paths``; returns all violations."""
    violations: List[Violation] = []
    for file_path in iter_python_files(paths):
        violations.extend(lint_file(file_path, select=select))
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI driver shared by ``repro.cli lint`` and ``python -m repro.analysis``."""
    from .rules import RULES

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific AST lint engine (see repro/analysis/README.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories (default: src)"
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule IDs to skip (applied after --select)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="violation output format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}  {RULES[rule_id].summary}")
        return 0

    def parse_rule_list(raw: str, flag: str) -> Optional[List[str]]:
        rule_ids = [part.strip().upper() for part in raw.split(",") if part.strip()]
        unknown = [rule_id for rule_id in rule_ids if rule_id not in RULES]
        if unknown:
            print(f"unknown rule(s) in {flag}: {', '.join(unknown)}", file=sys.stderr)
            return None
        return rule_ids

    select = None
    if args.select is not None:
        select = parse_rule_list(args.select, "--select")
        if select is None:
            return 2
    if args.ignore is not None:
        ignored = parse_rule_list(args.ignore, "--ignore")
        if ignored is None:
            return 2
        select = [
            rule_id
            for rule_id in (select if select is not None else sorted(RULES))
            if rule_id not in ignored
        ]

    try:
        violations = lint_paths(args.paths, select=select)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.output_format == "json":
        print(json.dumps([v.to_dict() for v in violations], indent=2))
        return 1 if violations else 0
    for violation in violations:
        print(violation.format())
    if violations:
        counts: Dict[str, int] = {}
        for violation in violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        summary = ", ".join(f"{rule}: {n}" for rule, n in sorted(counts.items()))
        print(f"found {len(violations)} violation(s) ({summary})")
        return 1
    return 0
