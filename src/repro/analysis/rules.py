"""Project-specific lint rules for the GenDT reproduction.

Each rule targets a failure mode that has actually burned generative-model
reproductions: hidden global RNG state breaking determinism, silent broad
exception handlers hiding real faults, out-of-band mutation of autodiff
tensors, unseeded entry points, exact float-array comparison, and gradient
bookkeeping inside ``no_grad`` regions.

Rules register themselves into :data:`RULES` via :func:`register`; adding a
rule is: subclass :class:`Rule`, set ``id``/``summary``, implement
``check``, decorate with ``@register``.  The engine (``repro.analysis.engine``)
handles file walking, per-line ``# repro: noqa[RULE]`` suppression and
reporting.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from .engine import FileContext, Violation

#: Registry mapping rule ID -> rule instance.
RULES: Dict[str, "Rule"] = {}


def register(cls):
    """Class decorator: instantiate the rule and add it to :data:`RULES`."""
    instance = cls()
    if instance.id in RULES:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    RULES[instance.id] = instance
    return cls


def iter_rules(select: Optional[Iterable[str]] = None) -> List["Rule"]:
    """All registered rules, or the subset named by ``select`` (IDs)."""
    if select is None:
        return [RULES[rule_id] for rule_id in sorted(RULES)]
    return [RULES[rule_id] for rule_id in select]


class Rule:
    """Base class: one lint check over a parsed file."""

    id: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return ctx.violation(self.id, node, message)


def _attr_chain(node: ast.AST) -> Optional[str]:
    """Dotted name for Name/Attribute chains (``np.random.rand``), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_seed_or_rng(nodes: Sequence[ast.AST]) -> bool:
    """Does any Name/Attribute/arg in ``nodes`` reference a seed or rng?"""
    for root in nodes:
        for node in ast.walk(root):
            name = None
            if isinstance(node, ast.Name):
                name = node.id
            elif isinstance(node, ast.Attribute):
                name = node.attr
            if name is not None:
                lowered = name.lower()
                if "seed" in lowered or "rng" in lowered or "generator" in lowered:
                    return True
    return False


@register
class BanGlobalNumpyRandom(Rule):
    """RNG001: no ``np.random.*`` global-state calls; inject a Generator."""

    id = "RNG001"
    summary = (
        "module-level np.random.* global-state call; "
        "thread a seeded np.random.Generator instead"
    )

    #: numpy.random attributes that do NOT touch hidden global state.
    ALLOWED = {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Attribute):
                chain = _attr_chain(node)
                if chain is None:
                    continue
                parts = chain.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in self.ALLOWED
                ):
                    yield self.violation(
                        ctx,
                        node,
                        f"{chain} uses numpy's hidden global RNG state; "
                        "pass an explicit np.random.Generator",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name not in self.ALLOWED:
                            yield self.violation(
                                ctx,
                                node,
                                f"importing numpy.random.{alias.name} pulls in "
                                "global RNG state; import default_rng/Generator "
                                "and thread it explicitly",
                            )


@register
class NoSilentBroadExcept(Rule):
    """EXC001: broad handlers must re-raise or route through the taxonomy."""

    id = "EXC001"
    summary = (
        "except Exception/bare except that neither re-raises nor routes "
        "through repro.runtime.errors"
    )

    BROAD = {"Exception", "BaseException"}
    #: Referencing any of these inside the handler counts as routing the
    #: failure through the structured taxonomy.
    ERROR_NAMES = {
        "GenDTRuntimeError",
        "DivergenceError",
        "CheckpointCorruptError",
        "ContextValidationError",
        "MeasurementError",
        "NumericalAnomalyError",
        "DeadlineExceeded",
        "CircuitOpenError",
        "GenerationFaultError",
        "GraphContractError",
    }

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        exprs = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for expr in exprs:
            if isinstance(expr, ast.Name) and expr.id in self.BROAD:
                return True
            if isinstance(expr, ast.Attribute) and expr.attr in self.BROAD:
                return True
        return False

    def _handles_properly(self, handler: ast.ExceptHandler) -> bool:
        for stmt in handler.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Name) and node.id in self.ERROR_NAMES:
                    return True
                if isinstance(node, ast.Attribute) and node.attr in self.ERROR_NAMES:
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                if self._is_broad(node) and not self._handles_properly(node):
                    label = "bare except" if node.type is None else "except Exception"
                    yield self.violation(
                        ctx,
                        node,
                        f"{label} swallows the failure silently; narrow the "
                        "exception type, re-raise, or raise a "
                        "repro.runtime.errors type",
                    )


@register
class NoTensorMutationOutsideNN(Rule):
    """TEN001: no in-place mutation of Tensor.data/.grad outside repro/nn."""

    id = "TEN001"
    summary = "in-place mutation of Tensor.data/.grad outside repro/nn"

    ATTRS = {"data", "grad"}

    def _is_tensor_slot(self, node: ast.AST, allow_self: bool) -> bool:
        if isinstance(node, ast.Attribute) and node.attr in self.ATTRS:
            if not allow_self and isinstance(node.value, ast.Name) and node.value.id == "self":
                # `self.data = ...` defines the object's own attribute
                # (e.g. a dataset container); it is not a Tensor mutation.
                return False
            return True
        return False

    def _flags_target(self, target: ast.AST) -> bool:
        if isinstance(target, ast.Subscript):
            # x.data[...] = / x.grad[...] = mutate the array even on self.
            return self._is_tensor_slot(target.value, allow_self=True)
        return self._is_tensor_slot(target, allow_self=False)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.in_package("repro", "nn"):
            return
        for node in ast.walk(ctx.tree):
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "fill"
                    and self._is_tensor_slot(func.value, allow_self=True)
                ):
                    targets = [func.value]
            for target in targets:
                if self._flags_target(target):
                    yield self.violation(
                        ctx,
                        node,
                        "mutating .data/.grad bypasses the autodiff tape; use "
                        "Module.load_state_dict/optimizer APIs (or suppress a "
                        "deliberate site with # repro: noqa[TEN001])",
                    )


@register
class SeedMustReachRNG(Rule):
    """SEED001: entry points constructing RNGs must take/use a seed or rng."""

    id = "SEED001"
    summary = (
        "constructs an RNG but no seed/rng parameter reaches it; "
        "the CLI seed must stay the single entropy source"
    )

    CONSTRUCTORS = {"default_rng", "RandomState"}

    def _rng_calls(self, body: Sequence[ast.stmt]) -> Iterator[ast.Call]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    func = node.func
                    name = func.attr if isinstance(func, ast.Attribute) else (
                        func.id if isinstance(func, ast.Name) else None
                    )
                    if name in self.CONSTRUCTORS:
                        yield node

    def _signature_names(self, func: ast.AST) -> List[str]:
        args = func.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        funcs = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        in_function = set()
        for func in funcs:
            takes_seed = any(
                "seed" in name.lower() or "rng" in name.lower()
                for name in self._signature_names(func)
            )
            for call in self._rng_calls(func.body):
                in_function.add(id(call))
                if takes_seed:
                    continue
                if _mentions_seed_or_rng(list(call.args) + [k.value for k in call.keywords]):
                    continue  # e.g. default_rng(self.seed) / default_rng(args.seed)
                yield self.violation(
                    ctx,
                    call,
                    f"{func.name}() builds an RNG from nothing; accept a "
                    "`seed` or injected np.random.Generator so runs stay "
                    "reproducible from the CLI master seed",
                )
        # Module-level RNG construction is never seed-threaded state.
        for call in self._rng_calls(ctx.tree.body):
            if id(call) in in_function:
                continue
            yield self.violation(
                ctx,
                call,
                "module-level RNG construction creates hidden shared state; "
                "build the generator inside the entry point from its seed",
            )


@register
class NoExactFloatArrayComparison(Rule):
    """FLT001: no ==/!= between float arrays; use np.allclose/np.isclose."""

    id = "FLT001"
    summary = "exact ==/!= comparison between float arrays"

    #: numpy helpers that return scalars, safe to compare exactly.
    SCALAR_FUNCS = {
        "sum", "mean", "median", "min", "max", "prod", "dot", "vdot",
        "count_nonzero", "ndim", "size", "trace", "item", "float64", "int64",
    }

    def _is_arrayish(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute) and node.attr in ("data", "grad"):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if func.attr == "numpy":
                    return True  # Tensor.numpy()
                chain = _attr_chain(func)
                if chain is not None:
                    parts = chain.split(".")
                    if parts[0] in ("np", "numpy") and parts[-1] not in self.SCALAR_FUNCS:
                        return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left] + list(node.comparators)
            if any(self._is_arrayish(operand) for operand in operands):
                yield self.violation(
                    ctx,
                    node,
                    "exact float-array comparison is brittle across "
                    "platforms/BLAS builds; use np.allclose or "
                    "np.array_equal with an explicit tolerance decision",
                )


@register
class ServingSleepsUseBackoffSchedule(Rule):
    """RTY001: no ad-hoc ``time.sleep`` in ``repro/serving``.

    Every retry/cool-down delay in the serving layer must be derived from
    :func:`repro.runtime.retry.backoff_schedule` and executed through an
    injectable sleep (``repro.runtime.retry.REAL_SLEEP`` or a constructor
    parameter).  A literal ``time.sleep`` call hard-wires the wall clock
    into the serving path: chaos tests can no longer run the breaker and
    deadline machinery deterministically, and the delay escapes the audited
    backoff schedule.
    """

    id = "RTY001"
    summary = (
        "ad-hoc time.sleep in repro/serving; derive delays from "
        "runtime.retry.backoff_schedule and an injectable sleep"
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_package("repro", "serving"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = _attr_chain(node.func)
                if chain in ("time.sleep", "time.time"):
                    yield self.violation(
                        ctx,
                        node,
                        f"{chain}() hard-wires the wall clock into the "
                        "serving path; use the injectable sleep/clock "
                        "(repro.runtime.retry.REAL_SLEEP, time.monotonic "
                        "via a constructor parameter) with delays from "
                        "runtime.retry.backoff_schedule",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        yield self.violation(
                            ctx,
                            node,
                            "importing time.sleep into repro/serving "
                            "bypasses the injectable-sleep contract; take a "
                            "sleep callable defaulting to "
                            "repro.runtime.retry.REAL_SLEEP instead",
                        )


@register
class ExportedModulesNeedContracts(Rule):
    """SHP001: exported ``nn.Module`` subclasses must declare a ``@contract``.

    The symbolic graph verifier (:mod:`repro.analysis.graph`) can only
    check what the contracts declare, so every model class in the exported
    model packages — ``repro/core``, ``repro/baselines``, and the sequence
    modules in ``repro/nn/lstm.py`` — must carry a ``@contract(...)``
    decoration (or opt out explicitly with ``# repro: noqa[SHP001]`` on the
    class line for pure-container modules).
    """

    id = "SHP001"
    summary = (
        "nn.Module subclass without a @contract graph declaration "
        "(see repro.analysis.graph)"
    )

    #: Package scopes whose Module subclasses are exported model classes.
    SCOPES = (("repro", "core"), ("repro", "baselines"))
    #: Files in repro/nn that also count (the sequence-model layer).
    NN_FILES = ("lstm.py",)

    def _in_scope(self, ctx: FileContext) -> bool:
        if any(ctx.in_package(*scope) for scope in self.SCOPES):
            return True
        return (
            ctx.in_package("repro", "nn")
            and Path(ctx.path).name in self.NN_FILES
        )

    @staticmethod
    def _is_module_base(base: ast.AST) -> bool:
        if isinstance(base, ast.Name) and base.id == "Module":
            return True
        return isinstance(base, ast.Attribute) and base.attr == "Module"

    @staticmethod
    def _has_contract(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            if isinstance(target, ast.Name) and target.id == "contract":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "contract":
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not self._in_scope(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not any(self._is_module_base(base) for base in node.bases):
                continue
            if not self._has_contract(node):
                yield self.violation(
                    ctx,
                    node,
                    f"model class {node.name} has no @contract declaration, "
                    "so verify-graph cannot check its shapes or gradient "
                    "flow; declare inputs/outputs/dims (see "
                    "repro/analysis/README.md)",
                )


@register
class NoRequiresGradInsideNoGrad(Rule):
    """GRD001: no requires_grad=True inside a no_grad block."""

    id = "GRD001"
    summary = "sets requires_grad=True inside a no_grad() block"

    def _is_no_grad_with(self, node: ast.With) -> bool:
        for item in node.items:
            expr = item.context_expr
            call = expr if isinstance(expr, ast.Call) else None
            target = call.func if call is not None else expr
            if isinstance(target, ast.Name) and target.id == "no_grad":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "no_grad":
                return True
        return False

    def _grad_enables(self, body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    for keyword in node.keywords:
                        if (
                            keyword.arg == "requires_grad"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            yield node
                elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                    value = node.value
                    if (
                        isinstance(value, ast.Constant)
                        and value.value is True
                        and any(
                            isinstance(t, ast.Attribute) and t.attr == "requires_grad"
                            for t in targets
                        )
                    ):
                        yield node

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.With) and self._is_no_grad_with(node):
                for offender in self._grad_enables(node.body):
                    yield self.violation(
                        ctx,
                        offender,
                        "requires_grad=True inside no_grad() records nothing "
                        "and silently detaches the graph; move it outside the "
                        "block",
                    )
