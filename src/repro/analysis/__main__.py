"""Entry point for ``python -m repro.analysis``."""

import sys

from .engine import main

sys.exit(main())
