"""QoE prediction use case (paper §6.3.1).

An MLP regressor, after Sliwa & Wietfeld, predicts application-layer QoE
metrics (downlink throughput, packet error rate) from radio KPIs plus device
location features.  The evaluation protocol mirrors the paper:

1. train the QoE predictor on real KPI measurements + QoE ground truth;
2. predict QoE on the test set three ways — from real KPIs, from KPIs with
   RSRP/RSRQ dropped (showing those KPIs are critical), and from
   GenDT/baseline *generated* KPIs;
3. compare predicted-vs-real QoE series with MAE/DTW/HWD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..geo.trajectory import Trajectory
from ..metrics.fidelity import evaluate_series
from ..radio.simulator import DriveTestRecord

#: QoE target channels, in output order.
QOE_TARGETS = ("throughput_mbps", "per")


def _location_features(trajectory: Trajectory) -> np.ndarray:
    """Per-step location features: normalized offsets and speed."""
    lat0, lon0 = trajectory.centroid()
    speeds = trajectory.speeds_mps()
    speeds = np.concatenate([speeds[:1], speeds]) if len(speeds) else np.zeros(len(trajectory))
    return np.column_stack(
        [
            (trajectory.lat - lat0) * 100.0,
            (trajectory.lon - lon0) * 100.0,
            speeds / 30.0,
        ]
    )


@dataclass
class QoEPredictor:
    """MLP: (radio KPIs, location) -> (throughput, PER)."""

    kpi_names: Tuple[str, ...] = ("rsrp", "rsrq")
    hidden: Tuple[int, ...] = (48, 48)
    epochs: int = 60
    lr: float = 1e-3
    minibatch: int = 256
    seed: int = 0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        # An injected generator wins over the seed, so a caller holding one
        # entropy source (e.g. the CLI master seed) can thread it through.
        if self.rng is None:
            self.rng = np.random.default_rng(self.seed)
        self.net: Optional[nn.MLP] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean: Optional[np.ndarray] = None
        self._y_std: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _features(self, record: DriveTestRecord, kpi_override: Optional[np.ndarray]) -> np.ndarray:
        kpis = (
            kpi_override
            if kpi_override is not None
            else record.kpi_matrix(list(self.kpi_names))
        )
        return np.concatenate([kpis, _location_features(record.trajectory)], axis=1)

    def _targets(self, record: DriveTestRecord) -> np.ndarray:
        if not record.qoe:
            raise ValueError("record lacks QoE ground truth")
        return np.column_stack([record.qoe[name] for name in QOE_TARGETS])

    def fit(self, records: Sequence[DriveTestRecord]) -> None:
        x = np.concatenate([self._features(r, None) for r in records])
        y = np.concatenate([self._targets(r) for r in records])
        self._x_mean, self._x_std = x.mean(axis=0), np.maximum(x.std(axis=0), 1e-6)
        self._y_mean, self._y_std = y.mean(axis=0), np.maximum(y.std(axis=0), 1e-6)
        xn = (x - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std
        self.net = nn.MLP(x.shape[1], list(self.hidden), y.shape[1], self.rng)
        optimizer = nn.Adam(self.net.parameters(), lr=self.lr)
        n = len(xn)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.minibatch):
                idx = order[start : start + self.minibatch]
                loss = nn.mse_loss(self.net(nn.Tensor(xn[idx])), nn.Tensor(yn[idx]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def predict(
        self, record: DriveTestRecord, kpi_override: Optional[np.ndarray] = None
    ) -> Dict[str, np.ndarray]:
        """Predict QoE series; ``kpi_override`` substitutes generated KPIs."""
        if self.net is None:
            raise RuntimeError("fit before predict")
        x = self._features(record, kpi_override)
        xn = (x - self._x_mean) / self._x_std
        with nn.no_grad():
            yn = self.net(nn.Tensor(xn)).numpy()
        y = yn * self._y_std + self._y_mean
        out = {name: y[:, i] for i, name in enumerate(QOE_TARGETS)}
        out["per"] = np.clip(out["per"], 0.0, 1.0)
        out["throughput_mbps"] = np.maximum(out["throughput_mbps"], 0.0)
        return out


def evaluate_qoe_prediction(
    predictor: QoEPredictor,
    test_records: Sequence[DriveTestRecord],
    kpi_overrides: Optional[Sequence[Optional[np.ndarray]]] = None,
) -> Dict[str, Dict[str, float]]:
    """MAE/DTW/HWD of predicted vs. measured QoE over the test records.

    ``kpi_overrides[i]`` replaces record i's KPI features (None = real KPIs).
    Returns {"throughput_mbps": {...}, "per": {...}} with metrics averaged
    over records.
    """
    if kpi_overrides is None:
        kpi_overrides = [None] * len(test_records)
    sums: Dict[str, Dict[str, float]] = {
        name: {"mae": 0.0, "dtw": 0.0, "hwd": 0.0} for name in QOE_TARGETS
    }
    for record, override in zip(test_records, kpi_overrides):
        predicted = predictor.predict(record, kpi_override=override)
        for name in QOE_TARGETS:
            real = record.qoe[name]
            metrics = evaluate_series(real, predicted[name])
            for key, value in metrics.items():
                sums[name][key] += value
    n = len(test_records)
    return {
        name: {key: value / n for key, value in metrics.items()}
        for name, metrics in sums.items()
    }
