"""Downstream drive-testing use cases (paper §6.3 and §C.2)."""

from .qoe import QOE_TARGETS, QoEPredictor, evaluate_qoe_prediction
from .handover import (
    HandoverComparison,
    compare_handover_distributions,
    handover_intervals_from_series,
    real_handover_intervals,
)
from .cell_load import CellLoadEstimator, LOAD_FEATURES, serving_load_ground_truth
from .bandwidth import (
    BANDWIDTH_FEATURES,
    LinkBandwidthPredictor,
    bandwidth_features,
    handover_indicator,
)
from .video_qoe import (
    DEFAULT_LADDER,
    PlayerConfig,
    VideoSession,
    compare_sessions,
    simulate_session,
)
from .whatif import (
    WhatIfOutcome,
    deployment_override,
    run_what_if,
    with_new_site,
    with_power_offset,
    without_cells,
)

__all__ = [
    "QoEPredictor",
    "QOE_TARGETS",
    "evaluate_qoe_prediction",
    "HandoverComparison",
    "compare_handover_distributions",
    "handover_intervals_from_series",
    "real_handover_intervals",
    "CellLoadEstimator",
    "LOAD_FEATURES",
    "serving_load_ground_truth",
    "LinkBandwidthPredictor",
    "BANDWIDTH_FEATURES",
    "bandwidth_features",
    "handover_indicator",
    "PlayerConfig",
    "VideoSession",
    "DEFAULT_LADDER",
    "simulate_session",
    "compare_sessions",
    "WhatIfOutcome",
    "with_power_offset",
    "with_new_site",
    "without_cells",
    "deployment_override",
    "run_what_if",
]
