"""Video-streaming QoE estimation from a throughput series (paper §C.2).

Given a downlink-throughput time series (measured, or predicted from
GenDT-generated radio KPIs), simulate an adaptive-bitrate video session over
it and score the user experience.  The player substrate is a standard
buffer-dynamics model:

* the player picks the highest ladder bitrate below a safety fraction of a
  throughput estimate (harmonic mean of recent samples),
* the buffer fills at ``downloaded_seconds = throughput / bitrate`` per
  wall-clock second and drains at 1 s/s while playing,
* playback stalls when the buffer empties and resumes after it refills to a
  threshold.

The session metrics (average bitrate, stall ratio, bitrate switches) are
combined into a 1-5 MOS-like score with the usual impairment weighting
(stalls dominate, then low bitrate, then switching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Default bitrate ladder (Mbps), a typical HD set.
DEFAULT_LADDER = (0.6, 1.2, 2.4, 4.0, 6.0)


@dataclass(frozen=True)
class PlayerConfig:
    """Adaptive-bitrate player parameters."""

    ladder_mbps: Tuple[float, ...] = DEFAULT_LADDER
    safety_fraction: float = 0.8
    estimate_window: int = 5
    startup_buffer_s: float = 2.0
    rebuffer_target_s: float = 3.0
    max_buffer_s: float = 30.0


@dataclass
class VideoSession:
    """Outcome of one simulated streaming session."""

    bitrates_mbps: np.ndarray      #: chosen bitrate per second
    buffer_s: np.ndarray           #: buffer level per second
    stalled: np.ndarray            #: bool, was playback stalled this second

    @property
    def average_bitrate_mbps(self) -> float:
        playing = ~self.stalled
        if not playing.any():
            return 0.0
        return float(self.bitrates_mbps[playing].mean())

    @property
    def stall_ratio(self) -> float:
        return float(self.stalled.mean())

    @property
    def n_switches(self) -> int:
        return int(np.count_nonzero(np.diff(self.bitrates_mbps)))

    def qoe_score(self, ladder_max: float = DEFAULT_LADDER[-1]) -> float:
        """MOS-like score in [1, 5]: stalls, low bitrate, switching."""
        bitrate_term = self.average_bitrate_mbps / ladder_max          # [0, 1]
        stall_penalty = 3.0 * self.stall_ratio
        switch_penalty = 0.5 * min(
            self.n_switches / max(len(self.bitrates_mbps), 1) * 10.0, 1.0
        )
        raw = 1.0 + 4.0 * bitrate_term - stall_penalty - switch_penalty
        return float(np.clip(raw, 1.0, 5.0))


def simulate_session(
    throughput_mbps: np.ndarray, config: PlayerConfig = PlayerConfig()
) -> VideoSession:
    """Run the buffer-dynamics player over a 1 s-granularity throughput trace."""
    throughput = np.maximum(np.asarray(throughput_mbps, dtype=float), 0.0)
    n = len(throughput)
    if n == 0:
        raise ValueError("empty throughput series")
    ladder = np.asarray(config.ladder_mbps)

    bitrates = np.empty(n)
    buffer_levels = np.empty(n)
    stalled = np.zeros(n, dtype=bool)

    buffer_s = 0.0
    playing = False
    history: List[float] = []
    current_bitrate = ladder[0]
    for t in range(n):
        history.append(max(throughput[t], 1e-3))
        recent = history[-config.estimate_window :]
        estimate = len(recent) / np.sum(1.0 / np.asarray(recent))  # harmonic mean
        target = config.safety_fraction * estimate
        eligible = ladder[ladder <= target]
        current_bitrate = float(eligible[-1]) if len(eligible) else float(ladder[0])

        # One wall-clock second of downloading at the chosen bitrate.
        buffer_s = min(
            buffer_s + throughput[t] / current_bitrate, config.max_buffer_s
        )
        if playing:
            buffer_s -= 1.0
            if buffer_s <= 0.0:
                buffer_s = 0.0
                playing = False
        else:
            threshold = (
                config.startup_buffer_s if t < config.estimate_window
                else config.rebuffer_target_s
            )
            if buffer_s >= threshold:
                playing = True
        stalled[t] = not playing
        bitrates[t] = current_bitrate
        buffer_levels[t] = buffer_s

    return VideoSession(bitrates_mbps=bitrates, buffer_s=buffer_levels, stalled=stalled)


def compare_sessions(
    real_throughput: np.ndarray,
    generated_throughput: np.ndarray,
    config: PlayerConfig = PlayerConfig(),
) -> Dict[str, Dict[str, float]]:
    """Session metrics from real vs generated throughput (use-case check)."""
    out: Dict[str, Dict[str, float]] = {}
    for name, series in (("real", real_throughput), ("generated", generated_throughput)):
        session = simulate_session(series, config)
        out[name] = {
            "avg_bitrate_mbps": session.average_bitrate_mbps,
            "stall_ratio": session.stall_ratio,
            "n_switches": float(session.n_switches),
            "qoe_score": session.qoe_score(),
        }
    return out
