"""Handover analysis use case (paper §6.3.2).

GenDT is retrained with the serving-cell id as an additional generated KPI
channel; tracking serving-cell changes in the generated series yields the
inter-handover time distribution, compared to the real one with HWD and as
a CDF (paper Table 10 / Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..metrics.fidelity import hwd
from ..radio.association import inter_handover_times
from ..radio.simulator import DriveTestRecord


def snap_serving_series(
    serving_series: np.ndarray,
    candidate_ids: Optional[Sequence[int]] = None,
    min_dwell_samples: int = 3,
) -> np.ndarray:
    """Post-process a generated serving-cell channel into a clean id series.

    The generative model emits the serving-cell channel as a continuous
    value; decoding it requires (a) snapping each sample to the nearest
    *valid* cell id (when the candidate set is known) and (b) removing
    dwells shorter than ``min_dwell_samples`` — generation noise of a
    fraction of the channel's scale would otherwise read as a storm of
    spurious handovers.  Short runs are merged into the preceding dwell.
    """
    values = np.asarray(serving_series, dtype=float)
    if candidate_ids is not None and len(candidate_ids):
        candidates = np.sort(np.asarray(list(candidate_ids), dtype=float))
        pos = np.clip(np.searchsorted(candidates, values), 0, len(candidates) - 1)
        pos_lo = np.maximum(pos - 1, 0)
        take_lo = np.abs(candidates[pos_lo] - values) <= np.abs(candidates[pos] - values)
        ids = np.where(take_lo, candidates[pos_lo], candidates[pos])
    else:
        ids = np.round(values)
    ids = ids.astype(int).copy()
    # Merge short dwells into the preceding run.
    if min_dwell_samples > 1 and len(ids) > 1:
        run_start = 0
        for t in range(1, len(ids) + 1):
            if t == len(ids) or ids[t] != ids[run_start]:
                run_len = t - run_start
                if run_start > 0 and run_len < min_dwell_samples:
                    ids[run_start:t] = ids[run_start - 1]
                else:
                    run_start = t
                if t < len(ids) and ids[t] != ids[run_start]:
                    run_start = t
    return ids


def handover_intervals_from_series(
    serving_series: np.ndarray,
    timestamps_s: np.ndarray,
    candidate_ids: Optional[Sequence[int]] = None,
    min_dwell_samples: int = 3,
) -> np.ndarray:
    """Inter-handover intervals from a (generated) serving-cell channel."""
    ids = snap_serving_series(
        serving_series, candidate_ids=candidate_ids, min_dwell_samples=min_dwell_samples
    )
    return inter_handover_times(ids, timestamps_s)


def real_handover_intervals(records: Sequence[DriveTestRecord]) -> np.ndarray:
    """Pooled real inter-handover intervals over records."""
    pooled = [
        inter_handover_times(r.serving_cell_id, r.trajectory.t) for r in records
    ]
    pooled = [p for p in pooled if len(p)]
    if not pooled:
        return np.zeros(0)
    return np.concatenate(pooled)


@dataclass
class HandoverComparison:
    """Real-vs-generated inter-handover time distributions."""

    real_intervals: np.ndarray
    generated_intervals: np.ndarray

    @property
    def hwd(self) -> float:
        """HWD between the two interval distributions (paper Table 10)."""
        if len(self.real_intervals) == 0 or len(self.generated_intervals) == 0:
            return float("inf")
        return hwd(self.real_intervals, self.generated_intervals)

    def cdf(self, which: str = "real", grid: np.ndarray = None) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF points (paper Figure 13)."""
        data = self.real_intervals if which == "real" else self.generated_intervals
        if grid is None:
            sorted_data = np.sort(data)
            return sorted_data, np.arange(1, len(sorted_data) + 1) / len(sorted_data)
        sorted_data = np.sort(data)
        return grid, np.searchsorted(sorted_data, grid, side="right") / max(len(sorted_data), 1)


def compare_handover_distributions(
    records: Sequence[DriveTestRecord],
    generated_serving: Sequence[np.ndarray],
    min_dwell_samples: int = 3,
) -> HandoverComparison:
    """Build the §6.3.2 comparison from real records + generated channels.

    Each generated channel is snapped to its record's candidate cell ids
    before counting handovers.
    """
    if len(records) != len(generated_serving):
        raise ValueError("records and generated series must align")
    gen_pooled: List[np.ndarray] = []
    for record, series in zip(records, generated_serving):
        intervals = handover_intervals_from_series(
            series,
            record.trajectory.t,
            candidate_ids=record.candidate_cell_ids,
            min_dwell_samples=min_dwell_samples,
        )
        if len(intervals):
            gen_pooled.append(intervals)
    generated = np.concatenate(gen_pooled) if gen_pooled else np.zeros(0)
    return HandoverComparison(
        real_intervals=real_handover_intervals(records),
        generated_intervals=generated,
    )
