"""Cell-load estimation from drive-test KPIs (paper §C.2, after [9, 46]).

RSRQ couples the serving cell's reference-signal power to the total received
wideband power, which includes load-weighted interference from neighbour
cells — so (RSRQ, SINR) carry information about how loaded the surrounding
network is.  The paper lists this as a use case GenDT can serve without a
drive test: generate RSRQ/SINR for a route, feed the estimator.

We implement the estimator as a small MLP regressor trained against the
simulator's ground-truth serving-cell load (the paper could not validate
this use case for lack of ground truth; our substrate has it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..radio.simulator import DriveTestRecord

#: KPI features the estimator consumes, in order.
LOAD_FEATURES = ("rsrq", "sinr")


@dataclass
class CellLoadEstimator:
    """MLP regressor: (RSRQ, SINR) -> serving-cell load in [0, 1]."""

    hidden: Tuple[int, ...] = (32, 32)
    epochs: int = 60
    lr: float = 1e-3
    minibatch: int = 256
    seed: int = 0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        # An injected generator wins over the seed (single-entropy-source rule).
        if self.rng is None:
            self.rng = np.random.default_rng(self.seed)
        self.net: Optional[nn.MLP] = None
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None

    @staticmethod
    def _features(kpis: Dict[str, np.ndarray]) -> np.ndarray:
        return np.column_stack([kpis[name] for name in LOAD_FEATURES])

    def fit(self, records: Sequence[DriveTestRecord], loads: Sequence[np.ndarray]) -> None:
        """Train on records paired with ground-truth serving-load series."""
        if len(records) != len(loads):
            raise ValueError("records and loads must align")
        x = np.concatenate([self._features(r.kpi) for r in records])
        y = np.concatenate([np.asarray(l, dtype=float) for l in loads])[:, None]
        if len(x) != len(y):
            raise ValueError("KPI and load sample counts differ")
        self._x_mean = x.mean(axis=0)
        self._x_std = np.maximum(x.std(axis=0), 1e-6)
        xn = (x - self._x_mean) / self._x_std
        self.net = nn.MLP(x.shape[1], list(self.hidden), 1, self.rng)
        optimizer = nn.Adam(self.net.parameters(), lr=self.lr)
        n = len(xn)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.minibatch):
                idx = order[start : start + self.minibatch]
                pred = self.net(nn.Tensor(xn[idx])).sigmoid()
                loss = nn.mse_loss(pred, nn.Tensor(y[idx]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def predict(self, kpis: Dict[str, np.ndarray]) -> np.ndarray:
        """Estimated load series in [0, 1] from KPI series."""
        if self.net is None:
            raise RuntimeError("fit before predict")
        x = (self._features(kpis) - self._x_mean) / self._x_std
        with nn.no_grad():
            out = self.net(nn.Tensor(x)).sigmoid().numpy()
        return out[:, 0]

    def predict_from_matrix(self, kpi_matrix: np.ndarray, kpi_names: Sequence[str]) -> np.ndarray:
        """Same, from a [T, n] generated-KPI matrix with named columns."""
        kpis = {name: kpi_matrix[:, i] for i, name in enumerate(kpi_names)}
        missing = [f for f in LOAD_FEATURES if f not in kpis]
        if missing:
            raise ValueError(f"matrix lacks required KPIs: {missing}")
        return self.predict(kpis)


def serving_load_ground_truth(
    record: DriveTestRecord, loads_matrix: np.ndarray, candidate_ids: Sequence[int]
) -> np.ndarray:
    """Extract the serving cell's load series from a [T, N] load matrix."""
    id_to_col = {cid: j for j, cid in enumerate(candidate_ids)}
    cols = np.array([id_to_col[int(c)] for c in record.serving_cell_id])
    return loads_matrix[np.arange(len(record)), cols]
