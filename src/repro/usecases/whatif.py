"""What-if analysis on the network context (paper §C.2).

GenDT conditions on the operator's cell database, so deployment changes can
be evaluated *before* building them: edit the deployment, regenerate the KPI
series for the routes of interest, and compare.  This module provides the
deployment-editing operations the paper's examples mention (new cells,
power changes, decommissioning) and a small study runner that swaps the
edited deployment into a trained model's context pipeline, regenerates, and
restores the original.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..geo.trajectory import Trajectory
from ..radio.cells import Cell, CellDeployment
from ..core.model import GenDT


# ----------------------------------------------------------------------
# Deployment edits
# ----------------------------------------------------------------------
def with_power_offset(
    deployment: CellDeployment, offset_db: float, cell_ids: Optional[Sequence[int]] = None
) -> CellDeployment:
    """Return a deployment with ``p_max`` shifted for the given cells (all by default)."""
    targets = set(cell_ids) if cell_ids is not None else None
    cells = [
        replace(c, p_max_dbm=c.p_max_dbm + offset_db)
        if targets is None or c.cell_id in targets
        else c
        for c in deployment.cells
    ]
    return CellDeployment(cells, deployment.frame)


def with_new_site(
    deployment: CellDeployment,
    lat: float,
    lon: float,
    p_max_dbm: float = 43.0,
    sectors: int = 3,
    base_direction_deg: float = 0.0,
) -> CellDeployment:
    """Return a deployment with a new ``sectors``-sector site added."""
    next_cell = max(c.cell_id for c in deployment.cells) + 1
    next_site = max(c.site_id for c in deployment.cells) + 1
    new_cells = [
        Cell(
            cell_id=next_cell + s,
            lat=lat,
            lon=lon,
            p_max_dbm=p_max_dbm,
            direction_deg=(base_direction_deg + s * 360.0 / sectors) % 360.0,
            site_id=next_site,
        )
        for s in range(sectors)
    ]
    return CellDeployment(list(deployment.cells) + new_cells, deployment.frame)


def without_cells(deployment: CellDeployment, cell_ids: Sequence[int]) -> CellDeployment:
    """Return a deployment with the given cells decommissioned."""
    removed = set(cell_ids)
    remaining = [c for c in deployment.cells if c.cell_id not in removed]
    if not remaining:
        raise ValueError("cannot remove every cell")
    return CellDeployment(remaining, deployment.frame)


# ----------------------------------------------------------------------
# Study runner
# ----------------------------------------------------------------------
@contextlib.contextmanager
def deployment_override(model: GenDT, deployment: CellDeployment) -> Iterator[None]:
    """Temporarily swap the deployment the model's context pipeline reads."""
    region = model.region
    original = region.deployment
    region.deployment = deployment
    model.context.network.deployment = deployment
    try:
        yield
    finally:
        region.deployment = original
        model.context.network.deployment = original


@dataclass
class WhatIfOutcome:
    """Generated KPI series under baseline and edited deployments."""

    kpi_names: List[str]
    baseline: np.ndarray    #: [T, n_kpis]
    edited: np.ndarray      #: [T, n_kpis]

    def mean_delta(self, kpi: str) -> float:
        """Mean change of one KPI (edited - baseline)."""
        idx = self.kpi_names.index(kpi)
        return float(self.edited[:, idx].mean() - self.baseline[:, idx].mean())

    def summary(self) -> Dict[str, float]:
        return {kpi: self.mean_delta(kpi) for kpi in self.kpi_names}


def run_what_if(
    model: GenDT,
    trajectory: Trajectory,
    edited_deployment: CellDeployment,
    n_samples: int = 3,
) -> WhatIfOutcome:
    """Generate under baseline and edited deployments (averaged samples)."""
    baseline = np.mean(
        [model.generate(trajectory) for _ in range(n_samples)], axis=0
    )
    with deployment_override(model, edited_deployment):
        edited = np.mean(
            [model.generate(trajectory) for _ in range(n_samples)], axis=0
        )
    return WhatIfOutcome(
        kpi_names=list(model.kpi_names), baseline=baseline, edited=edited
    )
