"""Link-bandwidth prediction from radio KPIs (paper §C.2, after LinkForecast).

LinkForecast (Yue et al.) identified five KPIs with significant correlation
to achievable link bandwidth — RSRP, RSRQ, CQI, a handover indicator, and
the block error rate — and predicted bandwidth from them.  The paper lists
this as a GenDT use case: several of the KPIs are exactly what GenDT
generates, so bandwidth can be forecast for routes never driven.

We implement the predictor (random-forest-like ensemble of small MLPs to
keep everything on the in-repo NN substrate) and evaluate it against the
simulator's throughput ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..radio.simulator import DriveTestRecord

#: KPI features used by the predictor.
BANDWIDTH_FEATURES = ("rsrp", "rsrq", "cqi", "handover", "per")


def handover_indicator(serving_cell_id: np.ndarray, window: int = 3) -> np.ndarray:
    """1.0 for samples within ``window`` steps of a serving-cell change."""
    ids = np.asarray(serving_cell_id)
    changes = np.zeros(len(ids))
    change_points = np.nonzero(np.diff(ids) != 0)[0] + 1  # repro: noqa[FLT001] (integral cell IDs)
    for point in change_points:
        lo = max(0, point - window)
        hi = min(len(ids), point + window + 1)
        changes[lo:hi] = 1.0
    return changes


def bandwidth_features(record: DriveTestRecord) -> np.ndarray:
    """Assemble the 5-KPI feature matrix [T, 5] from a record."""
    if "per" not in record.qoe:
        raise ValueError("record lacks PER (simulate with with_qoe=True)")
    return np.column_stack(
        [
            record.kpi["rsrp"],
            record.kpi["rsrq"],
            record.kpi["cqi"],
            handover_indicator(record.serving_cell_id),
            record.qoe["per"],
        ]
    )


@dataclass
class LinkBandwidthPredictor:
    """Bagged MLP ensemble: 5 KPI features -> downlink bandwidth (Mbps)."""

    n_members: int = 4
    hidden: Tuple[int, ...] = (32,)
    epochs: int = 40
    lr: float = 3e-3
    minibatch: int = 256
    seed: int = 0
    rng: Optional[np.random.Generator] = None

    def __post_init__(self) -> None:
        # An injected generator wins over the seed (single-entropy-source rule).
        if self.rng is None:
            self.rng = np.random.default_rng(self.seed)
        self.members: List[nn.MLP] = []
        self._x_mean: Optional[np.ndarray] = None
        self._x_std: Optional[np.ndarray] = None
        self._y_mean: float = 0.0
        self._y_std: float = 1.0

    def fit(self, records: Sequence[DriveTestRecord]) -> None:
        x = np.concatenate([bandwidth_features(r) for r in records])
        y = np.concatenate([r.qoe["throughput_mbps"] for r in records])[:, None]
        self._x_mean = x.mean(axis=0)
        self._x_std = np.maximum(x.std(axis=0), 1e-6)
        self._y_mean = float(y.mean())
        self._y_std = max(float(y.std()), 1e-6)
        xn = (x - self._x_mean) / self._x_std
        yn = (y - self._y_mean) / self._y_std
        n = len(xn)
        self.members = []
        for _ in range(self.n_members):
            # Bagging: each member sees a bootstrap resample.
            sample = self.rng.integers(0, n, size=n)
            member = nn.MLP(x.shape[1], list(self.hidden), 1, self.rng)
            optimizer = nn.Adam(member.parameters(), lr=self.lr)
            for _ in range(self.epochs):
                order = self.rng.permutation(n)
                for start in range(0, n, self.minibatch):
                    idx = sample[order[start : start + self.minibatch]]
                    loss = nn.mse_loss(member(nn.Tensor(xn[idx])), nn.Tensor(yn[idx]))
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()
            self.members.append(member)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Bandwidth series (Mbps) from a [T, 5] feature matrix."""
        if not self.members:
            raise RuntimeError("fit before predict")
        xn = (features - self._x_mean) / self._x_std
        with nn.no_grad():
            preds = np.stack(
                [m(nn.Tensor(xn)).numpy()[:, 0] for m in self.members]
            )
        mean = preds.mean(axis=0) * self._y_std + self._y_mean
        return np.maximum(mean, 0.0)

    def predict_interval(self, features: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Ensemble spread as a rough (lower, upper) bandwidth interval."""
        if not self.members:
            raise RuntimeError("fit before predict")
        xn = (features - self._x_mean) / self._x_std
        with nn.no_grad():
            preds = np.stack(
                [m(nn.Tensor(xn)).numpy()[:, 0] for m in self.members]
            )
        preds = preds * self._y_std + self._y_mean
        return np.maximum(preds.min(axis=0), 0.0), np.maximum(preds.max(axis=0), 0.0)
