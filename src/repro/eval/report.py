"""Consolidated experiment report.

Collects the per-table/figure text artifacts the benchmark suite writes to
``benchmarks/results/`` into one ordered report (the reproduction's
answer to the paper's evaluation section).  Used by
``python -m repro.eval.report [results_dir [out_file]]``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

#: Canonical presentation order: (file stem, paper reference).
REPORT_SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("table01_dataset_a_stats", "Table 1 — Dataset A statistics"),
    ("table02_dataset_b_stats", "Table 2 — Dataset B statistics"),
    ("fig01_02_stochasticity", "Figures 1-2 — repeated-drive stochasticity"),
    ("fig04_cell_density", "Figure 4 — cell density per scenario"),
    ("fig16_serving_distance_cdf", "Figure 16 — serving-cell distance CDFs"),
    ("table03_dataset_a_rsrp", "Table 3 — RSRP fidelity per scenario (A)"),
    ("table04_dataset_a_all_kpis", "Table 4 — all-KPI averages (A)"),
    ("table05_dataset_b_rsrp", "Table 5 — RSRP fidelity per scenario (B)"),
    ("table06_dataset_b_average", "Table 6 — RSRP/RSRQ averages (B)"),
    ("table07_long_trajectory", "Table 7 — long & complex trajectory"),
    ("table08_fig10_stitching", "Table 8 / Figure 10 — stitching comparison"),
    ("fig09_envelope", "Figure 9 — generation envelope"),
    ("fig11_active_learning", "Figure 11 — uncertainty-guided selection"),
    ("table09_fig12_qoe", "Table 9 / Figure 12 — QoE prediction"),
    ("table10_fig13_handover", "Table 10 / Figure 13 — handover analysis"),
    ("table12_ablation", "Table 12 — ablation"),
    ("fig18_sample_series", "Figure 18 — sample generated series"),
    ("appendix_a3_step_sweep", "Appendix A.3 — sliding-step sweep"),
    ("appendix_a3_noise_sweep", "Appendix A.3 — noise-intensity sweep"),
)


def collect_results(results_dir: Path) -> Dict[str, str]:
    """Read every known result artifact present in ``results_dir``."""
    found: Dict[str, str] = {}
    for stem, _ in REPORT_SECTIONS:
        path = results_dir / f"{stem}.txt"
        if path.exists():
            found[stem] = path.read_text().rstrip()
    return found


def build_report(results_dir: Path, title: str = "GenDT reproduction — experiment report") -> str:
    """Assemble the ordered report; missing sections are listed at the end."""
    found = collect_results(results_dir)
    rule = "=" * 74
    lines: List[str] = [rule, title, rule, ""]
    missing: List[str] = []
    for stem, heading in REPORT_SECTIONS:
        if stem in found:
            lines.append(f"--- {heading} " + "-" * max(0, 70 - len(heading)))
            lines.append(found[stem])
            lines.append("")
        else:
            missing.append(heading)
    if missing:
        lines.append("missing sections (benchmark not yet run):")
        lines.extend(f"  - {name}" for name in missing)
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    results_dir = Path(argv[0]) if argv else Path("benchmarks/results")
    report = build_report(results_dir)
    if len(argv) > 1:
        Path(argv[1]).write_text(report + "\n")
        print(f"report written to {argv[1]}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
