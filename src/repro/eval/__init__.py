"""Evaluation harness, analysis helpers, and text reporting."""

from .harness import (
    FidelityResult,
    METRIC_NAMES,
    compare_methods,
    evaluate_method,
    ranking,
)
from .reporting import (
    ascii_plot,
    average_rows,
    cdf_points,
    fidelity_rows,
    format_table,
    sparkline,
)
from .analysis import (
    GenerationEnvelope,
    StochasticityAnalysis,
    analyze_stochasticity,
    serving_cell_distances_fast,
    stitched_generation,
)
from .report import REPORT_SECTIONS, build_report, collect_results

__all__ = [
    "FidelityResult",
    "METRIC_NAMES",
    "evaluate_method",
    "compare_methods",
    "ranking",
    "format_table",
    "sparkline",
    "ascii_plot",
    "cdf_points",
    "fidelity_rows",
    "average_rows",
    "StochasticityAnalysis",
    "analyze_stochasticity",
    "GenerationEnvelope",
    "serving_cell_distances_fast",
    "stitched_generation",
    "REPORT_SECTIONS",
    "build_report",
    "collect_results",
]
