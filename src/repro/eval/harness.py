"""Experiment harness: run methods over test sets, collect fidelity tables.

One loop serves every fidelity table in the paper (Tables 3-8): for each
method, generate the KPI series for every test record, compute MAE/DTW/HWD
per KPI channel, and aggregate per scenario and overall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..geo.trajectory import Trajectory
from ..metrics.fidelity import evaluate_series
from ..radio.simulator import DriveTestRecord

#: A generation method: anything with .generate(trajectory) -> [T, n_kpis].
GenerateFn = Callable[[Trajectory], np.ndarray]

METRIC_NAMES = ("mae", "dtw", "hwd")


@dataclass
class FidelityResult:
    """Nested metric store: scenario -> kpi -> metric -> value."""

    method: str
    per_scenario: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)

    def scenarios(self) -> List[str]:
        return list(self.per_scenario.keys())

    def get(self, scenario: str, kpi: str, metric: str) -> float:
        return self.per_scenario[scenario][kpi][metric]

    def average(self, kpi: str, metric: str) -> float:
        """Mean of a metric for one KPI across all scenarios."""
        values = [
            self.per_scenario[s][kpi][metric]
            for s in self.per_scenario
            if kpi in self.per_scenario[s]
        ]
        if not values:
            raise KeyError(f"no data for kpi={kpi}")
        return float(np.mean(values))


def evaluate_method(
    method_name: str,
    generate: GenerateFn,
    test_records: Sequence[DriveTestRecord],
    kpi_names: Sequence[str],
    n_generations: int = 1,
) -> FidelityResult:
    """Fidelity of one method over a test set.

    With ``n_generations > 1`` the metrics are averaged over several
    independent generations (reduces evaluation variance for stochastic
    generators).
    """
    result = FidelityResult(method=method_name)
    acc: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for record in test_records:
        real = record.kpi_matrix(list(kpi_names))
        for _ in range(n_generations):
            generated = generate(record.trajectory)
            if generated.shape != real.shape:
                raise ValueError(
                    f"{method_name} produced shape {generated.shape}, "
                    f"expected {real.shape}"
                )
            scenario = record.scenario or "all"
            for idx, kpi in enumerate(kpi_names):
                metrics = evaluate_series(real[:, idx], generated[:, idx])
                bucket = acc.setdefault(scenario, {}).setdefault(
                    kpi, {m: [] for m in METRIC_NAMES}
                )
                for m in METRIC_NAMES:
                    bucket[m].append(metrics[m])
    for scenario, kpis in acc.items():
        result.per_scenario[scenario] = {
            kpi: {m: float(np.mean(vals)) for m, vals in metrics.items()}
            for kpi, metrics in kpis.items()
        }
    return result


def compare_methods(
    methods: Mapping[str, GenerateFn],
    test_records: Sequence[DriveTestRecord],
    kpi_names: Sequence[str],
    n_generations: int = 1,
) -> Dict[str, FidelityResult]:
    """Run every method over the same test set."""
    return {
        name: evaluate_method(name, gen, test_records, kpi_names, n_generations)
        for name, gen in methods.items()
    }


def ranking(
    results: Mapping[str, FidelityResult], kpi: str, metric: str
) -> List[str]:
    """Methods ordered best-first by the scenario-averaged metric (lower wins)."""
    return sorted(results, key=lambda name: results[name].average(kpi, metric))
