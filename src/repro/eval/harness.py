"""Experiment harness: run methods over test sets, collect fidelity tables.

One loop serves every fidelity table in the paper (Tables 3-8): for each
method, generate the KPI series for every test record, compute MAE/DTW/HWD
per KPI channel, and aggregate per scenario and overall.

Evaluation sweeps share the serving layer's survival requirement: one
record whose generation faults must not abort a multi-hour comparison.
``on_error="skip"`` quarantines the failing (record, method) pair into
``FidelityResult.failures`` and keeps sweeping.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..geo.trajectory import Trajectory
from ..metrics.fidelity import evaluate_series
from ..radio.simulator import DriveTestRecord

logger = logging.getLogger(__name__)

#: A generation method: anything with .generate(trajectory) -> [T, n_kpis].
GenerateFn = Callable[[Trajectory], np.ndarray]

METRIC_NAMES = ("mae", "dtw", "hwd")


@dataclass
class FidelityResult:
    """Nested metric store: scenario -> kpi -> metric -> value.

    ``failures`` lists generation attempts skipped under
    ``on_error="skip"``: one dict per failed attempt with the record index,
    scenario, and the error string.
    """

    method: str
    per_scenario: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    failures: List[Dict[str, Any]] = field(default_factory=list)

    def scenarios(self) -> List[str]:
        return list(self.per_scenario.keys())

    def get(self, scenario: str, kpi: str, metric: str) -> float:
        return self.per_scenario[scenario][kpi][metric]

    def average(self, kpi: str, metric: str) -> float:
        """Mean of a metric for one KPI across all scenarios."""
        values = [
            self.per_scenario[s][kpi][metric]
            for s in self.per_scenario
            if kpi in self.per_scenario[s]
        ]
        if not values:
            raise KeyError(f"no data for kpi={kpi}")
        return float(np.mean(values))


def evaluate_method(
    method_name: str,
    generate: GenerateFn,
    test_records: Sequence[DriveTestRecord],
    kpi_names: Sequence[str],
    n_generations: int = 1,
    on_error: str = "raise",
) -> FidelityResult:
    """Fidelity of one method over a test set.

    With ``n_generations > 1`` the metrics are averaged over several
    independent generations (reduces evaluation variance for stochastic
    generators).

    ``on_error`` controls survival of individual generation failures:
    ``"raise"`` (default, historical behavior) propagates them;
    ``"skip"`` records the failure in ``FidelityResult.failures`` and
    continues with the remaining records — a shape mismatch, a runtime-
    taxonomy error, or a raw generator crash each cost one sample, not the
    sweep.
    """
    if on_error not in ("raise", "skip"):
        raise ValueError(f"on_error must be 'raise' or 'skip', got {on_error!r}")
    result = FidelityResult(method=method_name)
    acc: Dict[str, Dict[str, Dict[str, List[float]]]] = {}
    for record_index, record in enumerate(test_records):
        real = record.kpi_matrix(list(kpi_names))
        for _ in range(n_generations):
            try:
                generated = generate(record.trajectory)
                if generated.shape != real.shape:
                    raise ValueError(
                        f"{method_name} produced shape {generated.shape}, "
                        f"expected {real.shape}"
                    )
            except Exception as exc:
                if on_error == "raise":
                    raise
                failure = {
                    "record": record_index,
                    "scenario": record.scenario or "all",
                    "error": f"{type(exc).__name__}: {exc}",
                }
                result.failures.append(failure)
                logger.warning(
                    "%s: skipping record %d (%s): %s",
                    method_name, record_index, failure["scenario"], exc,
                )
                continue
            scenario = record.scenario or "all"
            for idx, kpi in enumerate(kpi_names):
                metrics = evaluate_series(real[:, idx], generated[:, idx])
                bucket = acc.setdefault(scenario, {}).setdefault(
                    kpi, {m: [] for m in METRIC_NAMES}
                )
                for m in METRIC_NAMES:
                    bucket[m].append(metrics[m])
    for scenario, kpis in acc.items():
        result.per_scenario[scenario] = {
            kpi: {m: float(np.mean(vals)) for m, vals in metrics.items()}
            for kpi, metrics in kpis.items()
        }
    return result


def compare_methods(
    methods: Mapping[str, GenerateFn],
    test_records: Sequence[DriveTestRecord],
    kpi_names: Sequence[str],
    n_generations: int = 1,
    on_error: str = "raise",
) -> Dict[str, FidelityResult]:
    """Run every method over the same test set.

    ``on_error="skip"`` makes the sweep survive individual generation
    failures (see :func:`evaluate_method`).
    """
    return {
        name: evaluate_method(
            name, gen, test_records, kpi_names, n_generations, on_error=on_error
        )
        for name, gen in methods.items()
    }


def ranking(
    results: Mapping[str, FidelityResult], kpi: str, metric: str
) -> List[str]:
    """Methods ordered best-first by the scenario-averaged metric (lower wins)."""
    return sorted(results, key=lambda name: results[name].average(kpi, metric))
