"""Plain-text reporting: tables and terminal "figures".

The benchmark harness regenerates every paper table/figure as text: tables
as aligned ASCII grids, figures (time series, CDFs, bar charts) as compact
unicode line plots — enough to read off the *shape* of each result.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    float_fmt: str = "{:.2f}",
) -> str:
    """Render an aligned ASCII table."""
    def fmt(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(series: Sequence[float], width: int = 72) -> str:
    """One-line unicode sparkline of a series (downsampled to ``width``)."""
    values = np.asarray(series, dtype=float)
    if len(values) == 0:
        return ""
    if len(values) > width:
        edges = np.linspace(0, len(values), width + 1).astype(int)
        values = np.array([values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = values.min(), values.max()
    if hi <= lo:
        return _BLOCKS[4] * len(values)
    levels = ((values - lo) / (hi - lo) * (len(_BLOCKS) - 2)).astype(int) + 1
    return "".join(_BLOCKS[i] for i in levels)


def ascii_plot(
    series_map: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 12,
    title: Optional[str] = None,
) -> str:
    """Multi-series ASCII line plot on a shared y-axis."""
    all_values = np.concatenate([np.asarray(v, dtype=float) for v in series_map.values()])
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    for k, (name, series) in enumerate(series_map.items()):
        values = np.asarray(series, dtype=float)
        xs = np.linspace(0, width - 1, len(values)).astype(int)
        ys = ((values - lo) / (hi - lo) * (height - 1)).astype(int)
        for x, y in zip(xs, ys):
            grid[height - 1 - y][x] = markers[k % len(markers)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{lo:10.2f} ┤" + "".join(grid[-1]))
    legend = "   ".join(
        f"{markers[k % len(markers)]} {name}" for k, name in enumerate(series_map)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def cdf_points(values: np.ndarray, n_points: int = 50) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF evaluated on a uniform grid over the data range."""
    values = np.sort(np.asarray(values, dtype=float).ravel())
    if len(values) == 0:
        return np.zeros(0), np.zeros(0)
    grid = np.linspace(values[0], values[-1], n_points)
    cdf = np.searchsorted(values, grid, side="right") / len(values)
    return grid, cdf


def fidelity_rows(
    results: Mapping[str, "FidelityResult"],
    kpi: str,
    scenarios: Sequence[str],
    metrics: Sequence[str] = ("mae", "dtw", "hwd"),
) -> Tuple[List[str], List[List]]:
    """Headers+rows for a per-scenario fidelity table (paper Tables 3/5)."""
    headers = ["method"] + [f"{m}:{s}" for m in metrics for s in scenarios]
    rows: List[List] = []
    for name, result in results.items():
        row: List = [name]
        for metric in metrics:
            for scenario in scenarios:
                row.append(result.get(scenario, kpi, metric))
        rows.append(row)
    return headers, rows


def average_rows(
    results: Mapping[str, "FidelityResult"],
    kpis: Sequence[str],
    metrics: Sequence[str] = ("mae", "dtw", "hwd"),
) -> Tuple[List[str], List[List]]:
    """Headers+rows for a scenario-averaged table (paper Tables 4/6/7)."""
    headers = ["method"] + [f"{k}:{m}" for k in kpis for m in metrics]
    rows: List[List] = []
    for name, result in results.items():
        row: List = [name]
        for kpi in kpis:
            for metric in metrics:
                row.append(result.average(kpi, metric))
        rows.append(row)
    return headers, rows
