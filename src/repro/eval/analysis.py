"""Analysis helpers behind the paper's figures.

* serving-cell distance CDFs (Fig. 16) and cell density (Fig. 4),
* repeated-run stochasticity (Figs. 1-2),
* generation envelopes and histogram overlap (Fig. 9),
* the short-trajectory stitching comparison (Table 8 / Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.trajectory import Trajectory
from ..metrics.fidelity import evaluate_series
from ..radio.simulator import DriveTestRecord


def serving_cell_distances(record: DriveTestRecord, deployment) -> np.ndarray:
    """Distance from the device to its serving cell at every step (Fig. 16)."""
    traj = record.trajectory
    out = np.empty(len(traj))
    for t, cell_id in enumerate(record.serving_cell_id):
        out[t] = deployment.distances_m(traj.lat[t], traj.lon[t])[
            deployment.cell_ids().index(int(cell_id))
        ]
    return out


def serving_cell_distances_fast(record: DriveTestRecord, deployment) -> np.ndarray:
    """Vectorized variant of :func:`serving_cell_distances`."""
    traj = record.trajectory
    id_to_col = {cid: j for j, cid in enumerate(deployment.cell_ids())}
    cols = np.array([id_to_col[int(c)] for c in record.serving_cell_id])
    frame = deployment.frame
    ux, uy = frame.to_xy(traj.lat, traj.lon)
    xy = deployment.positions_xy()
    return np.hypot(ux - xy[cols, 0], uy - xy[cols, 1])


@dataclass
class StochasticityAnalysis:
    """Repeated drives over one trajectory (paper Figs. 1-2)."""

    rsrp_runs: np.ndarray        #: [runs, T]
    serving_runs: np.ndarray     #: [runs, T]

    @property
    def per_location_std(self) -> np.ndarray:
        """RSRP std across runs at each location."""
        return self.rsrp_runs.std(axis=0)

    @property
    def mean_cross_run_std(self) -> float:
        return float(self.per_location_std.mean())

    def serving_cell_diversity(self) -> np.ndarray:
        """Distinct serving cells observed across runs, per location."""
        return np.array(
            [len(np.unique(self.serving_runs[:, t])) for t in range(self.serving_runs.shape[1])]
        )

    def correlation_std_vs_diversity(self) -> float:
        """Paper's Fig. 1-2 observation: RSRP variation tracks cell churn."""
        diversity = self.serving_cell_diversity().astype(float)
        std = self.per_location_std
        if diversity.std() < 1e-9 or std.std() < 1e-9:
            return 0.0
        return float(np.corrcoef(std, diversity)[0, 1])


def analyze_stochasticity(
    simulator, trajectory: Trajectory, rng: np.random.Generator, repeats: int = 5
) -> StochasticityAnalysis:
    """Simulate repeated drives and collect the Figs. 1-2 data."""
    records = simulator.simulate_repeats(trajectory, rng, repeats)
    return StochasticityAnalysis(
        rsrp_runs=np.stack([r.kpi["rsrp"] for r in records]),
        serving_runs=np.stack([r.serving_cell_id for r in records]),
    )


@dataclass
class GenerationEnvelope:
    """Min/max envelope of repeated generations vs. ground truth (Fig. 9)."""

    real: np.ndarray
    samples: np.ndarray  #: [n_samples, T]

    @property
    def lower(self) -> np.ndarray:
        return self.samples.min(axis=0)

    @property
    def upper(self) -> np.ndarray:
        return self.samples.max(axis=0)

    def coverage(self) -> float:
        """Fraction of ground-truth points inside the envelope."""
        inside = (self.real >= self.lower) & (self.real <= self.upper)
        return float(inside.mean())

    def histogram_hwd(self) -> float:
        """HWD between pooled generated values and the real distribution."""
        from ..metrics.fidelity import hwd

        return hwd(self.real, self.samples.ravel())


def stitched_generation(
    generate: Callable[[Trajectory], np.ndarray],
    trajectory: Trajectory,
    segment_s: float,
) -> np.ndarray:
    """Generate a long trajectory by stitching short independent generations.

    The paper's Table 8 / Fig. 10 comparison: the trajectory is cut into
    independent ``segment_s``-long pieces, each generated with no carried
    state, then concatenated — exhibiting artifacts at the seams.
    """
    interval = trajectory.sample_interval_s or 1.0
    seg_len = max(2, int(round(segment_s / interval)))
    outputs: List[np.ndarray] = []
    for start in range(0, len(trajectory), seg_len):
        stop = min(start + seg_len, len(trajectory))
        if stop - start < 2:
            # Too short to form a trajectory piece: reuse the last value.
            outputs.append(outputs[-1][-1:].repeat(stop - start, axis=0))
            continue
        piece = trajectory.slice(start, stop)
        outputs.append(generate(piece))
    return np.concatenate(outputs, axis=0)
