"""Batch windows: the unit of GenDT training and generation.

Paper §4.3.3: the whole series is processed as batches of length ``L``.
Training uses overlapping windows (sliding step ``Δt``, default 5) for
weight-sharing efficiency; generation uses non-overlapping windows
(``Δt = L``) to avoid smoothing artifacts.  Each window carries the raw
network context of its visible-cell set, the environment context, and (when
built from a measurement record) the target KPI values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.trajectory import Trajectory
from ..radio.simulator import DriveTestRecord
from ..world.region import Region
from .extract import ContextConfig, EnvironmentContextExtractor, NetworkContextExtractor


@dataclass
class ContextWindow:
    """One batch of context (and optionally targets).

    Attributes:
        cell_features: raw per-cell context, [L, N_b, 5].
        cell_ids: global ids of the N_b cells, aligned with axis 1.
        env_features: raw environment context, [L, 26].
        target: KPI targets [L, N_ch] or None during pure generation.
        start: index of the window's first sample in the source trajectory.
        scenario: scenario tag of the source trajectory.
    """

    cell_features: np.ndarray
    cell_ids: List[int]
    env_features: np.ndarray
    start: int
    ue_lat: np.ndarray = field(default_factory=lambda: np.zeros(0))
    ue_lon: np.ndarray = field(default_factory=lambda: np.zeros(0))
    ue_speed: np.ndarray = field(default_factory=lambda: np.zeros(0))
    interval_s: float = 1.0
    scenario: str = ""
    target: Optional[np.ndarray] = None

    @property
    def length(self) -> int:
        return self.cell_features.shape[0]

    @property
    def n_cells(self) -> int:
        return self.cell_features.shape[1]


def window_starts(total: int, length: int, step: int) -> List[int]:
    """Start indices of windows of ``length`` with sliding ``step``.

    The final window is anchored at ``total - length`` so the tail of the
    series is always covered (mirroring the paper's ⌊T/L⌋ batching plus a
    tail batch).
    """
    if length <= 0 or step <= 0:
        raise ValueError("length and step must be positive")
    if total < length:
        return [0] if total > 0 else []
    starts = list(range(0, total - length + 1, step))
    if starts[-1] != total - length:
        starts.append(total - length)
    return starts


class ContextBuilder:
    """Builds :class:`ContextWindow` sequences from trajectories/records."""

    def __init__(self, region: Region, config: Optional[ContextConfig] = None) -> None:
        self.region = region
        self.config = config or ContextConfig()
        self.network = NetworkContextExtractor(region.deployment, self.config.d_s_m)
        self.environment = EnvironmentContextExtractor(region, self.config.env_radius_m)

    # ------------------------------------------------------------------
    def windows_for_trajectory(
        self,
        trajectory: Trajectory,
        length: int,
        step: int,
        target_matrix: Optional[np.ndarray] = None,
    ) -> List[ContextWindow]:
        """Extract windows over a trajectory (targets optional)."""
        if target_matrix is not None and len(target_matrix) != len(trajectory):
            raise ValueError("target matrix must align with trajectory")
        if len(trajectory) == 0:
            return []
        distances = self.network.distances(trajectory)
        env = self.environment.features(trajectory)
        speeds = trajectory.speeds_mps()
        speeds = (
            np.concatenate([speeds[:1], speeds]) if len(speeds) else np.zeros(len(trajectory))
        )
        eff_length = min(length, len(trajectory))
        windows: List[ContextWindow] = []
        for start in window_starts(len(trajectory), eff_length, step):
            stop = start + eff_length
            cell_idx = self.network.window_cells(
                distances, start, stop, max_cells=self.config.max_cells
            )
            features = self.network.window_features(
                trajectory, distances, cell_idx, start, stop
            )
            windows.append(
                ContextWindow(
                    cell_features=features,
                    cell_ids=[self.region.deployment.cells[i].cell_id for i in cell_idx],
                    env_features=env[start:stop],
                    start=start,
                    ue_lat=trajectory.lat[start:stop],
                    ue_lon=trajectory.lon[start:stop],
                    ue_speed=speeds[start:stop],
                    interval_s=trajectory.sample_interval_s or 1.0,
                    scenario=trajectory.scenario,
                    target=None if target_matrix is None else target_matrix[start:stop],
                )
            )
        return windows

    def training_windows(
        self,
        records: Sequence[DriveTestRecord],
        kpi_names: Sequence[str],
        length: int,
        step: int,
    ) -> List[ContextWindow]:
        """Overlapping windows with targets from measurement records."""
        windows: List[ContextWindow] = []
        for record in records:
            target = record.kpi_matrix(kpi_names)
            windows.extend(
                self.windows_for_trajectory(record.trajectory, length, step, target)
            )
        return windows

    def generation_windows(
        self, trajectory: Trajectory, length: int
    ) -> List[ContextWindow]:
        """Non-overlapping windows (Δt = L) for the generation phase."""
        return self.windows_for_trajectory(trajectory, length, step=length)
