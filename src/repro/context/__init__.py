"""Context pipeline: extraction, windowing, normalization (paper §2.3, §4.2)."""

from .extract import (
    ContextConfig,
    EnvironmentContextExtractor,
    N_CELL_ATTRIBUTES,
    NetworkContextExtractor,
)
from .windows import ContextBuilder, ContextWindow, window_starts
from .normalize import (
    CellFeatureTransform,
    EnvFeatureNormalizer,
    N_CELL_FEATURES,
    TargetNormalizer,
)

__all__ = [
    "ContextConfig",
    "NetworkContextExtractor",
    "EnvironmentContextExtractor",
    "N_CELL_ATTRIBUTES",
    "N_CELL_FEATURES",
    "ContextBuilder",
    "ContextWindow",
    "window_starts",
    "CellFeatureTransform",
    "EnvFeatureNormalizer",
    "TargetNormalizer",
]
