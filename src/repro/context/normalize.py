"""Feature and target normalization for model consumption.

The raw context schema follows the paper exactly (per-cell
``[lat, lon, p_max, direction, distance]`` and the 26 environment
attributes), but raw latitudes and compass directions are poor neural-net
inputs.  :class:`CellFeatureTransform` maps each cell's raw attributes to a
6-dim learnable encoding:

``[dx_km, dy_km, p_max_z, sin(dir_rel), cos(dir_rel), dist_km]``

where ``(dx, dy)`` is the cell's offset from the device in the region frame
and ``dir_rel`` is the angle between the sector boresight and the
cell-to-device bearing (how "on-beam" the device is).  This is an invertible
re-encoding of the same five attributes plus the device location the
trajectory provides anyway — no extra information is introduced.

Targets are z-normalized per KPI channel, with statistics fit on the
training split only and stored with the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..geo.coords import LocalFrame
from ..world.attributes import N_ENV_ATTRIBUTES, N_LAND_USE
from .windows import ContextWindow

#: Model-facing cell feature dimension after the transform.
N_CELL_FEATURES = 6


class CellFeatureTransform:
    """Raw per-cell attributes -> model features (see module docstring)."""

    def __init__(self, frame: LocalFrame, p_max_mean: float = 43.0, p_max_std: float = 3.0) -> None:
        self.frame = frame
        self.p_max_mean = p_max_mean
        self.p_max_std = p_max_std

    def __call__(
        self, window: ContextWindow, ue_lat: np.ndarray, ue_lon: np.ndarray
    ) -> np.ndarray:
        """Transform one window's raw cell features.

        Args:
            window: the context window ([L, N_b, 5] raw features).
            ue_lat, ue_lon: device location per step of the window, [L].

        Returns:
            model features [L, N_b, 6].
        """
        raw = window.cell_features
        length, n_cells, _ = raw.shape
        ux, uy = self.frame.to_xy(ue_lat, ue_lon)
        out = np.empty((length, n_cells, N_CELL_FEATURES))
        for j in range(n_cells):
            cx, cy = self.frame.to_xy(raw[0, j, 0], raw[0, j, 1])
            dx = (float(cx) - ux) / 1000.0
            dy = (float(cy) - uy) / 1000.0
            out[:, j, 0] = dx
            out[:, j, 1] = dy
            out[:, j, 2] = (raw[:, j, 2] - self.p_max_mean) / self.p_max_std
            bearing_to_ue = np.degrees(np.arctan2(-dx, -dy)) % 360.0
            dir_rel = np.radians(bearing_to_ue - raw[:, j, 3])
            out[:, j, 3] = np.sin(dir_rel)
            out[:, j, 4] = np.cos(dir_rel)
            out[:, j, 5] = raw[:, j, 4] / 1000.0
        return out


@dataclass
class EnvFeatureNormalizer:
    """Normalizes the 26-dim environment vector.

    Land-use fractions are already in [0, 1]; PoI counts get ``log1p`` then
    z-normalization with statistics fit on training data.
    """

    poi_mean: Optional[np.ndarray] = None
    poi_std: Optional[np.ndarray] = None

    def fit(self, env_stack: np.ndarray) -> "EnvFeatureNormalizer":
        """Fit on stacked raw environment features [N, 26]."""
        if env_stack.shape[-1] != N_ENV_ATTRIBUTES:
            raise ValueError(f"expected {N_ENV_ATTRIBUTES} attributes")
        pois = np.log1p(env_stack[:, N_LAND_USE:])
        self.poi_mean = pois.mean(axis=0)
        self.poi_std = np.maximum(pois.std(axis=0), 1e-6)
        return self

    def __call__(self, env: np.ndarray) -> np.ndarray:
        if self.poi_mean is None:
            raise RuntimeError("normalizer must be fit before use")
        land = env[..., :N_LAND_USE]
        pois = (np.log1p(env[..., N_LAND_USE:]) - self.poi_mean) / self.poi_std
        return np.concatenate([land, pois], axis=-1)

    def state(self) -> Dict[str, np.ndarray]:
        return {"poi_mean": self.poi_mean, "poi_std": self.poi_std}

    @classmethod
    def from_state(cls, state: Dict[str, np.ndarray]) -> "EnvFeatureNormalizer":
        return cls(
            poi_mean=np.asarray(state["poi_mean"]), poi_std=np.asarray(state["poi_std"])
        )


@dataclass
class TargetNormalizer:
    """Per-channel z-normalization of KPI targets."""

    mean: Optional[np.ndarray] = None
    std: Optional[np.ndarray] = None

    def fit(self, targets: np.ndarray) -> "TargetNormalizer":
        """Fit on stacked targets [N, N_ch]."""
        self.mean = targets.mean(axis=0)
        self.std = np.maximum(targets.std(axis=0), 1e-6)
        return self

    def normalize(self, targets: np.ndarray) -> np.ndarray:
        self._check()
        return (targets - self.mean) / self.std

    def denormalize(self, normalized: np.ndarray) -> np.ndarray:
        self._check()
        return normalized * self.std + self.mean

    def _check(self) -> None:
        if self.mean is None:
            raise RuntimeError("normalizer must be fit before use")

    def state(self) -> Dict[str, np.ndarray]:
        return {"mean": self.mean, "std": self.std}

    @classmethod
    def from_state(cls, state: Dict[str, np.ndarray]) -> "TargetNormalizer":
        return cls(mean=np.asarray(state["mean"]), std=np.asarray(state["std"]))
