"""Context extraction: network (cells) and environment (land use + PoIs).

Implements paper §2.3.3/§2.3.4 and §4.2: for every timestamp of a trajectory
we extract

* the **network context** — every cell within ``d_s`` of the device is a
  potential serving cell; each contributes the 5 attributes
  ``[lat, lon, p_max, direction, distance_t]`` (distance is the only one
  that varies with time, implicitly encoding device movement);
* the **environment context** — the 26 attributes of Table 11 (12 land-use
  area fractions + 14 PoI counts) within ``env_radius_m`` (500 m) of the
  device.

Environment queries are cached on a coarse location grid: consecutive
trajectory samples are metres apart while the context radius is 500 m, so
nearby samples share their context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.trajectory import Trajectory
from ..radio.cells import Cell, CellDeployment
from ..world.region import Region

#: Number of raw per-cell context attributes (paper: N_c = 5).
N_CELL_ATTRIBUTES = 5


class NetworkContextExtractor:
    """Extracts per-timestep visible-cell context for a trajectory.

    Precomputes the [T, N] distance matrix once per trajectory, then serves
    window queries: which cells are relevant in a window, and their [L, 5]
    raw attribute series.
    """

    def __init__(self, deployment: CellDeployment, d_s_m: float = 2000.0) -> None:
        if d_s_m <= 0:
            raise ValueError("d_s must be positive")
        self.deployment = deployment
        self.d_s_m = d_s_m

    def distances(self, trajectory: Trajectory) -> np.ndarray:
        """Distance from each trajectory point to each cell, [T, N]."""
        frame = self.deployment.frame
        ux, uy = frame.to_xy(trajectory.lat, trajectory.lon)
        cells_xy = self.deployment.positions_xy()
        return np.hypot(
            ux[:, None] - cells_xy[None, :, 0], uy[:, None] - cells_xy[None, :, 1]
        )

    def window_cells(
        self,
        distances: np.ndarray,
        start: int,
        stop: int,
        max_cells: Optional[int] = None,
    ) -> List[int]:
        """Cells visible anywhere in [start, stop), nearest-first.

        Returns deployment column indices.  ``max_cells`` caps the set at the
        nearest ones by mean over the window (keeps the GNN fan-in bounded).
        """
        block = distances[start:stop]
        visible = np.nonzero((block <= self.d_s_m).any(axis=0))[0]
        if len(visible) == 0:
            # Degenerate coverage hole: fall back to the single nearest cell.
            visible = np.array([int(np.argmin(block.mean(axis=0)))])
        mean_d = block[:, visible].mean(axis=0)
        order = np.argsort(mean_d)
        chosen = visible[order]
        if max_cells is not None:
            chosen = chosen[:max_cells]
        return [int(i) for i in chosen]

    def window_features(
        self,
        trajectory: Trajectory,
        distances: np.ndarray,
        cell_indices: Sequence[int],
        start: int,
        stop: int,
    ) -> np.ndarray:
        """Raw per-cell attribute series for a window: [L, n_cells, 5].

        Attribute order matches the paper: lat, lon, p_max, direction,
        distance(t).
        """
        length = stop - start
        out = np.empty((length, len(cell_indices), N_CELL_ATTRIBUTES))
        for j, idx in enumerate(cell_indices):
            cell = self.deployment.cells[idx]
            out[:, j, 0] = cell.lat
            out[:, j, 1] = cell.lon
            out[:, j, 2] = cell.p_max_dbm
            out[:, j, 3] = cell.direction_deg
            out[:, j, 4] = distances[start:stop, idx]
        return out


class EnvironmentContextExtractor:
    """Extracts the 26-attribute environment context along a trajectory."""

    def __init__(
        self,
        region: Region,
        radius_m: float = 500.0,
        cache_grid_m: float = 50.0,
    ) -> None:
        self.region = region
        self.radius_m = radius_m
        self.cache_grid_m = cache_grid_m
        self._cache: Dict[Tuple[int, int], np.ndarray] = {}

    def features_at(self, lat: float, lon: float) -> np.ndarray:
        """26-vector at a single location (land-use fractions then PoI counts)."""
        x, y = self.region.frame.to_xy(lat, lon)
        key = (int(float(x) // self.cache_grid_m), int(float(y) // self.cache_grid_m))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        land = self.region.land_use.fractions_within(lat, lon, self.radius_m)
        pois = self.region.pois.counts_within(lat, lon, self.radius_m)
        features = np.concatenate([land, pois])
        self._cache[key] = features
        return features

    def features(self, trajectory: Trajectory) -> np.ndarray:
        """Environment context for every timestep, [T, 26]."""
        return np.stack(
            [self.features_at(lat, lon) for lat, lon in zip(trajectory.lat, trajectory.lon)]
        )


@dataclass(frozen=True)
class ContextConfig:
    """Scope parameters for context extraction.

    ``d_s_m`` follows the paper's empirical guidance (§4.2): ~2 km within
    cities, ~4 km on highways; a conservative single value works at the cost
    of compute.  ``max_cells`` bounds the GNN fan-in per batch.
    """

    d_s_m: float = 2500.0
    env_radius_m: float = 500.0
    max_cells: int = 8
