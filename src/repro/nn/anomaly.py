"""Runtime anomaly detection for the autodiff tape.

The numpy autodiff engine in :mod:`repro.nn.tensor` is fast but silent: a
NaN born in one op propagates through the whole graph and only surfaces —
if at all — as a non-finite loss many steps later, by which point the
originating op is long gone.  This module is the reproduction's analog of
``torch.autograd.set_detect_anomaly``: an **opt-in** mode that

* records, on every tensor an op creates, the op's name and the
  ``file:line`` of the code that invoked it;
* checks every forward output for NaN/Inf as it is created;
* checks every gradient a backward function writes, right after it runs;

and raises :class:`~repro.runtime.errors.NumericalAnomalyError` naming the
offending op and call site the moment the first non-finite value appears.

The mode is designed to be zero-cost when off: the tensor engine guards
every hook behind a single attribute read (``STATE.enabled``), records no
creation context, and performs no finiteness scans, so training output with
the mode disabled is bit-identical to an engine without the hooks.

Usage::

    with repro.nn.detect_anomaly():
        loss = model(batch)
        loss.backward()          # raises NumericalAnomalyError at the source

or from the CLI: ``python -m repro train --detect-anomaly ...``.
"""

from __future__ import annotations

import sys
from typing import Tuple

import numpy as np

from ..runtime.errors import NumericalAnomalyError

__all__ = ["detect_anomaly", "is_anomaly_enabled", "NumericalAnomalyError"]


class _AnomalyState:
    """Process-wide switch; a plain attribute read keeps the off-path cheap."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


STATE = _AnomalyState()


def is_anomaly_enabled() -> bool:
    """Return whether anomaly detection is currently active."""
    return STATE.enabled


class detect_anomaly:
    """Context manager enabling NaN/Inf anomaly detection on the tape.

    Re-entrant and restores the previous state on exit, so nesting (or
    enabling inside an already-enabled region) behaves sensibly.
    """

    def __enter__(self) -> "detect_anomaly":
        self._prev = STATE.enabled
        STATE.enabled = True
        return self

    def __exit__(self, *exc) -> None:
        STATE.enabled = self._prev


def _creation_context() -> Tuple[str, str]:
    """(op name, caller file:line) for a tensor being created by an op.

    Stack when this runs: [0] here, [1] ``note_forward``, [2] ``Tensor._make``,
    [3] the op method (``__add__``, ``tanh``, ``concat``, ...), [4] its caller.
    """
    op_frame = sys._getframe(3)
    op = op_frame.f_code.co_name
    caller = op_frame.f_back
    if caller is not None:
        site = f"{caller.f_code.co_filename}:{caller.f_lineno}"
    else:  # pragma: no cover - an op invoked with no caller frame
        site = "<unknown>"
    return op, site


def note_forward(tensor, data: np.ndarray) -> None:
    """Record creation context on ``tensor`` and check the forward output.

    Called by ``Tensor._make`` only while the mode is enabled.
    """
    op, site = _creation_context()
    tensor._anomaly_ctx = (op, site)
    if not np.isfinite(data).all():
        raise NumericalAnomalyError(
            f"forward op {op!r} produced non-finite values (called at {site})",
            op=op,
            site=site,
            phase="forward",
        )


def check_backward(node) -> None:
    """Check the gradients ``node``'s backward function just wrote.

    Called by ``Tensor.backward`` right after ``node._backward`` ran, while
    ``node._parents`` is still intact; a non-finite gradient on any parent
    is attributed to ``node``'s creating op.
    """
    for parent in node._parents:
        grad = parent.grad
        if grad is not None and not np.isfinite(grad).all():
            op, site = getattr(node, "_anomaly_ctx", None) or (
                node.name or "<unrecorded>",
                "<tensor created outside detect_anomaly>",
            )
            raise NumericalAnomalyError(
                f"backward of op {op!r} (called at {site}) produced a "
                "non-finite gradient",
                op=op,
                site=site,
                phase="backward",
            )


def annotate_module(exc: NumericalAnomalyError, module_name: str) -> None:
    """Append ``module_name`` to the error's module chain (innermost first)."""
    exc.module_chain.append(module_name)
