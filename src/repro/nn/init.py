"""Parameter initialization schemes.

All initializers take an explicit ``rng`` (a ``numpy.random.Generator``) so
model construction is fully deterministic under a supplied seed — nothing in
the library touches global random state.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialization for weight matrices."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: np.random.Generator, negative_slope: float = 0.2) -> np.ndarray:
    """He initialization tuned for leaky-ReLU activations."""
    fan_in, _ = _fans(shape)
    gain = math.sqrt(2.0 / (1.0 + negative_slope**2))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def orthogonal(shape: Tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal initialization (used for recurrent weight matrices)."""
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out
