"""Gradient-descent optimizers for the numpy NN engine."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization (used by the runtime checkpoint/guard layer).
    # Slot arrays are keyed by the parameter's *index* in ``self.params``
    # (id() keys don't survive a process boundary); the order of
    # ``Module.parameters()`` is deterministic, so index keying is stable.
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {"lr": np.array([self.lr])}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        if "lr" in state:
            self.lr = float(np.asarray(state["lr"]).ravel()[0])

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place; returns the pre-clip norm."""
        total = 0.0
        for param in self.params:
            if param.grad is not None:
                total += float(np.sum(param.grad**2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for param in self.params:
                if param.grad is not None:
                    param.grad *= scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                vel = self._velocity.get(id(param))
                if vel is None:
                    vel = np.zeros_like(param.data)
                vel = self.momentum * vel + grad
                self._velocity[id(param)] = vel
                grad = vel
            param.data -= self.lr * grad

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        for i, param in enumerate(self.params):
            vel = self._velocity.get(id(param))
            if vel is not None:
                state[f"velocity.{i}"] = vel.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._velocity.clear()
        for i, param in enumerate(self.params):
            key = f"velocity.{i}"
            if key in state:
                self._velocity[id(param)] = np.array(state[key], dtype=np.float64)


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the default for all GenDT training."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m = self._m.get(id(param))
            v = self._v.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad**2
            self._m[id(param)] = m
            self._v[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> Dict[str, np.ndarray]:
        state = super().state_dict()
        state["t"] = np.array([self._t], dtype=np.int64)
        for i, param in enumerate(self.params):
            m = self._m.get(id(param))
            if m is not None:
                state[f"m.{i}"] = m.copy()
                state[f"v.{i}"] = self._v[id(param)].copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        super().load_state_dict(state)
        self._t = int(np.asarray(state["t"]).ravel()[0]) if "t" in state else 0
        self._m.clear()
        self._v.clear()
        for i, param in enumerate(self.params):
            if f"m.{i}" in state:
                self._m[id(param)] = np.array(state[f"m.{i}"], dtype=np.float64)
                self._v[id(param)] = np.array(state[f"v.{i}"], dtype=np.float64)
