"""Loss functions used across GenDT training and the baselines."""

from __future__ import annotations

import numpy as np

from .tensor import Tensor


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error, the paper's L_M term (equivalent to L2 for fixed L)."""
    diff = pred - target
    return (diff * diff).mean()


def mae_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean absolute error."""
    return (pred - target).abs().mean()


def bce_with_logits(logits: Tensor, target: float) -> Tensor:
    """Numerically stable binary cross-entropy against a constant label.

    Using ``max(x,0) - x*y + log(1 + exp(-|x|))``.  ``target`` is the scalar
    label (1.0 for real, 0.0 for fake) applied to every element.
    """
    relu_part = logits.relu()
    abs_part = logits.abs()
    log_part = ((-abs_part).exp() + 1.0).log()
    return (relu_part - logits * target + log_part).mean()


def discriminator_loss(real_logits: Tensor, fake_logits: Tensor) -> Tensor:
    """Standard GAN (Jensen-Shannon) discriminator loss."""
    return bce_with_logits(real_logits, 1.0) + bce_with_logits(fake_logits, 0.0)


def generator_adversarial_loss(fake_logits: Tensor) -> Tensor:
    """Non-saturating generator loss: maximize log D(G(z))."""
    return bce_with_logits(fake_logits, 1.0)


def gaussian_nll(mu: Tensor, log_sigma: Tensor, target: Tensor) -> Tensor:
    """Negative log-likelihood of ``target`` under N(mu, exp(log_sigma)^2).

    Used to fit ResGen's parametric Gaussian observation head.
    """
    log_sigma = log_sigma.clip(-7.0, 7.0)
    inv_var = (log_sigma * -2.0).exp()
    diff = target - mu
    return (log_sigma + 0.5 * diff * diff * inv_var).mean() + 0.5 * float(np.log(2 * np.pi))
