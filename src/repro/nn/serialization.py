"""Save and load model state dicts as .npz archives."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from .module import Module

PathLike = Union[str, Path]

_META_KEY = "__meta__"


def _normalize_npz_path(path: PathLike) -> Path:
    """Mirror ``np.savez``'s suffix behavior so save and load agree.

    ``np.savez("ckpt")`` writes ``ckpt.npz``, so a symmetric ``load("ckpt")``
    used to fail with FileNotFoundError.  Both directions now normalize the
    path the same way ``savez`` does: append ``.npz`` unless already present.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_module(module: Module, path: PathLike, meta: Optional[Dict[str, Any]] = None) -> None:
    """Serialize a module's parameters (plus optional JSON metadata) to .npz."""
    path = _normalize_npz_path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: Dict[str, np.ndarray] = dict(module.state_dict())
    if meta is not None:
        payload[_META_KEY] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
    np.savez(path, **payload)


def load_module(module: Module, path: PathLike) -> Optional[Dict[str, Any]]:
    """Load parameters saved by :func:`save_module`; returns stored metadata."""
    path = _normalize_npz_path(path)
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files if k != _META_KEY}
        meta = None
        if _META_KEY in archive.files:
            meta = json.loads(bytes(archive[_META_KEY].tobytes()).decode("utf-8"))
    module.load_state_dict(state)
    return meta
