"""Reverse-mode automatic differentiation on numpy arrays.

This module provides the :class:`Tensor` class, a small tape-based autodiff
engine sufficient to train the LSTM/GNN/GAN models used by GenDT.  It exists
because the reproduction environment has no deep-learning framework
installed; the design deliberately mirrors the subset of the PyTorch tensor
API that the rest of the code base needs (``matmul``, ``sigmoid``, ``tanh``,
reductions, indexing, concatenation) so the model code reads conventionally.

Gradients flow through a dynamically-recorded DAG.  Calling
:meth:`Tensor.backward` topologically sorts the graph reachable from the
output and accumulates ``.grad`` arrays on every tensor created with
``requires_grad=True``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .anomaly import STATE as _anomaly
from .anomaly import check_backward as _anomaly_check_backward
from .anomaly import note_forward as _anomaly_note_forward

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_grad_enabled = True


class no_grad:
    """Context manager that disables graph recording (like torch.no_grad)."""

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._prev = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc) -> None:
        global _grad_enabled
        _grad_enabled = self._prev


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autodiff graph."""
    return _grad_enabled


# Symbolic-trace hook (see repro.analysis.graph.trace).  While installed,
# ``Tensor(...)`` construction lifts data into SymbolicTensors, every real
# op reports its output for parameter-lineage tracking, and the
# concat/stack/where free functions dispatch to their symbolic versions
# when any operand is symbolic.  ``None`` outside a verification trace.
_symbolic_hook = None


def _set_symbolic_hook(hook):
    """Install (or clear, with None) the trace hook; returns the previous one."""
    global _symbolic_hook
    previous = _symbolic_hook
    _symbolic_hook = hook
    return previous


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size 1.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor with reverse-mode autodiff support."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_anomaly_ctx")

    __array_priority__ = 100  # ensure ndarray + Tensor dispatches to Tensor

    def __new__(cls, data=None, requires_grad=False, _parents=(), name=None):
        # During a symbolic trace, plain Tensor construction lifts into a
        # SymbolicTensor so shapes stay named through the whole forward.
        # Parameter (and other subclasses) stay real: tracing works on the
        # module's actual weights via their shadow arrays.
        if _symbolic_hook is not None and cls is Tensor:
            return _symbolic_hook.lift_new(data, requires_grad)
        return object.__new__(cls)

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: Optional[str] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = tuple(_parents)
        self.name = name

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_tag})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a detached view)."""
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        # Raw construction: bypasses the symbolic lifting in __new__ so real
        # op outputs stay real even while a trace hook is installed (mixed
        # real/symbolic expressions report their lineage via note_real).
        out = object.__new__(Tensor)
        Tensor.__init__(out, data, requires_grad=False)
        if _symbolic_hook is not None:
            _symbolic_hook.note_real(out, parents)
        if _anomaly.enabled:
            _anomaly_note_forward(out, out.data)
        if requires:
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    def matmul(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    g = np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data
                    self._accumulate(_unbroadcast(np.asarray(g), self.shape))
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    g = np.outer(self.data, grad) if grad.ndim == 1 else self.data[..., None] @ grad[..., None, :]
                    other._accumulate(_unbroadcast(np.asarray(g), other.shape))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self**0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(self.data * mask, (self,), backward)

    def leaky_relu(self, negative_slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * scale)

        return self._make(self.data * scale, (self,), backward)

    def softplus(self) -> "Tensor":
        clipped = np.clip(self.data, -60.0, 60.0)
        out_data = np.log1p(np.exp(-np.abs(clipped))) + np.maximum(clipped, 0.0)
        sig = 1.0 / (1.0 + np.exp(-clipped))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sig)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return self._make(np.abs(self.data), (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._make(np.clip(self.data, lo, hi), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is None:
                self._accumulate(np.broadcast_to(g, self.shape).copy())
                return
            if not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, int):
            count = self.shape[axis]
        else:
            count = int(np.prod([self.shape[a] for a in axis]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(old_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes_tuple: Optional[Tuple[int, ...]] = None
            out_data = self.data.T
        else:
            axes_tuple = tuple(axes)
            out_data = self.data.transpose(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if axes_tuple is None:
                self._accumulate(grad.T)
            else:
                self._accumulate(grad.transpose(np.argsort(axes_tuple)))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, index, grad)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        order: List[Tensor] = []
        seen = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in seen:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                if _anomaly.enabled:
                    _anomaly_check_backward(node)
                # Free intermediate grads/graph to bound memory; keep leaf grads.
                if node._parents:
                    node.grad = None
        # Release the graph so repeated forward passes don't leak memory.
        for node in order:
            node._backward = None
            node._parents = ()


# ----------------------------------------------------------------------
# Free functions operating on tensors
# ----------------------------------------------------------------------
def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    if _symbolic_hook is not None:
        symbolic = _symbolic_hook.concat(tensors, axis)
        if symbolic is not None:
            return symbolic
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    proto = tensors[0]
    return proto._make(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    if _symbolic_hook is not None:
        symbolic = _symbolic_hook.stack(tensors, axis)
        if symbolic is not None:
            return symbolic
    tensors = [Tensor._coerce(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slabs = np.moveaxis(grad, axis, 0)
        for tensor, slab in zip(tensors, slabs):
            if tensor.requires_grad:
                tensor._accumulate(slab)

    proto = tensors[0]
    return proto._make(out_data, tensors, backward)


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Elementwise select with gradient flowing to both branches."""
    if _symbolic_hook is not None:
        symbolic = _symbolic_hook.where(condition, a, b)
        if symbolic is not None:
            return symbolic
    a = Tensor._coerce(a)
    b = Tensor._coerce(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~cond, b.shape))

    return a._make(out_data, (a, b), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a (non-differentiable) Tensor."""
    return Tensor._coerce(value)


def zeros(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape), requires_grad=requires_grad)


def ones(shape: Union[int, Tuple[int, ...]], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape), requires_grad=requires_grad)
