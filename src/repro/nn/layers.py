"""Basic neural-network layers built on the autodiff Tensor."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..analysis.graph.spec import Spec, contract
from . import init
from .module import Module, Parameter
from .tensor import Tensor


@contract(
    inputs={"x": Spec("...", "Fin")},
    outputs=Spec("...", "Fout"),
    dims={"Fin": "in_features", "Fout": "out_features"},
)
class Linear(Module):
    """Affine layer ``y = x @ W.T + b``.

    Weights use Kaiming-uniform initialization (the GenDT networks use
    leaky-ReLU activations throughout, per paper Figure 7).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        bias: bool = True,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias: Optional[Parameter] = Parameter(rng.uniform(-bound, bound, size=out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out


class LeakyReLU(Module):
    """Leaky rectified linear unit."""

    def __init__(self, negative_slope: float = 0.2) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Dropout(Module):
    """Inverted dropout.

    GenDT uses dropout both as a regularizer inside ResGen and, crucially, as
    an MC-dropout uncertainty probe at generation time (paper §6.2.1), so the
    layer supports being forced on via ``force_active`` independently of the
    module's train/eval mode.
    """

    def __init__(self, p: float, rng: np.random.Generator) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng
        self.force_active = False

    def forward(self, x: Tensor) -> Tensor:
        active = self.training or self.force_active
        if not active or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        return x * Tensor(mask)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
            self._layers.append(module)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self):
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)


@contract(
    inputs={"x": Spec("...", "Fin")},
    outputs=Spec("...", "Fout"),
    dims={"Fin": "in_features", "Fout": "out_features"},
)
class MLP(Module):
    """Fully-connected stack with leaky-ReLU activations.

    ``hidden`` gives the sizes of the hidden layers; an optional dropout layer
    is inserted before the final linear layer, matching the ResGen topology
    (FC → LeakyReLU ×3 → Dropout → FC) when ``len(hidden) == 3``.
    """

    def __init__(
        self,
        in_features: int,
        hidden: Sequence[int],
        out_features: int,
        rng: np.random.Generator,
        dropout: float = 0.0,
        negative_slope: float = 0.2,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        layers: List[Module] = []
        prev = in_features
        for width in hidden:
            layers.append(Linear(prev, width, rng))
            layers.append(LeakyReLU(negative_slope))
            prev = width
        if dropout > 0.0:
            layers.append(Dropout(dropout, rng))
        layers.append(Linear(prev, out_features, rng))
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)

    @property
    def dropout_layers(self) -> List[Dropout]:
        return [m for m in self.net if isinstance(m, Dropout)]
