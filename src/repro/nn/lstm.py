"""LSTM cells and sequence modules.

Provides the plain :class:`LSTMCell`/:class:`LSTM` used by the discriminator
and the LSTM-GNN baseline; GenDT's stochastic variant (SRNN layers, paper
§4.3.4 and §A.2) lives in :mod:`repro.core.stochastic_lstm` and builds on
:class:`LSTMCell`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..analysis.graph.spec import ANY, Spec, contract
from . import init
from .module import Module, Parameter
from .tensor import Tensor, concat, stack


@contract(
    inputs={
        "x": Spec("B", "I"),
        "state": (Spec("B", "H"), Spec("B", "H")),
    },
    outputs=(Spec("B", "H"), Spec("B", "H")),
    dims={"I": "input_size", "H": "hidden_size"},
)
class LSTMCell(Module):
    """Single LSTM cell with fused gate weights.

    Gate layout along the output dimension is ``[input, forget, cell, output]``.
    The forget-gate bias is initialized to 1, the standard trick to ease
    gradient flow early in training.
    """

    def __init__(self, input_size: int, hidden_size: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.weight_ih = Parameter(init.xavier_uniform((4 * hidden_size, input_size), rng))
        self.weight_hh = Parameter(
            np.concatenate(
                [init.orthogonal((hidden_size, hidden_size), rng) for _ in range(4)], axis=0
            )
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: Tuple[Tensor, Tensor]
    ) -> Tuple[Tensor, Tensor]:
        """Advance one step: ``x`` is ``[B, input_size]``; returns ``(h, c)``."""
        h_prev, c_prev = state
        gates = x.matmul(self.weight_ih.T) + h_prev.matmul(self.weight_hh.T) + self.bias
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c = f * c_prev + i * g
        h = o * c.tanh()
        return h, c

    def zero_state(self, batch_size: int) -> Tuple[Tensor, Tensor]:
        zeros = np.zeros((batch_size, self.hidden_size))
        return Tensor(zeros), Tensor(zeros.copy())


@contract(
    inputs={"x": Spec("B", "T", "I")},
    outputs=(Spec("B", "T", "H"), ANY),
    dims={"I": "input_size", "H": "hidden_size"},
)
class LSTM(Module):
    """Unidirectional (optionally stacked) LSTM over a full sequence.

    Input is ``[B, T, input_size]``; output is ``[B, T, hidden_size]`` (the
    hidden states of the top layer at every step) plus the final state of
    each layer.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ) -> None:
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        self._cells: List[LSTMCell] = []
        for layer in range(num_layers):
            cell = LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng)
            setattr(self, f"cell{layer}", cell)
            self._cells.append(cell)

    def forward(
        self,
        x: Tensor,
        state: Optional[List[Tuple[Tensor, Tensor]]] = None,
    ) -> Tuple[Tensor, List[Tuple[Tensor, Tensor]]]:
        batch, steps, _ = x.shape
        if state is None:
            state = [cell.zero_state(batch) for cell in self._cells]
        outputs: List[Tensor] = []
        for t in range(steps):
            inp = x[:, t, :]
            new_state: List[Tuple[Tensor, Tensor]] = []
            for layer, cell in enumerate(self._cells):
                h, c = cell(inp, state[layer])
                new_state.append((h, c))
                inp = h
            state = new_state
            outputs.append(inp)
        return stack(outputs, axis=1), state


@contract(
    inputs={"x": Spec("B", "T", "I")},
    outputs=Spec("B", "T", "O"),
    dims={"I": "lstm.input_size", "O": "head.out_features"},
)
class LSTMRegressor(Module):
    """LSTM followed by a per-step linear head: ``[B,T,in] -> [B,T,out]``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        output_size: int,
        rng: np.random.Generator,
        num_layers: int = 1,
    ) -> None:
        super().__init__()
        from .layers import Linear  # local import to avoid a cycle

        self.lstm = LSTM(input_size, hidden_size, rng, num_layers=num_layers)
        self.head = Linear(hidden_size, output_size, rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden, _ = self.lstm(x)
        return self.head(hidden)
