"""Numpy-based neural network substrate for the GenDT reproduction.

The deployment environment for this reproduction has no deep-learning
framework available, so :mod:`repro.nn` implements the minimal stack GenDT
needs: a reverse-mode autodiff tensor, module containers, linear/LSTM layers,
dropout (with MC-dropout support), Adam/SGD, and the GAN/MSE/Gaussian losses.
"""

from .tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, ones, stack, where, zeros
from .anomaly import NumericalAnomalyError, detect_anomaly, is_anomaly_enabled
from .module import Module, Parameter
from .layers import MLP, Dropout, LeakyReLU, Linear, Sequential, Sigmoid, Tanh
from .lstm import LSTM, LSTMCell, LSTMRegressor
from .optim import SGD, Adam, Optimizer
from .losses import (
    bce_with_logits,
    discriminator_loss,
    gaussian_nll,
    generator_adversarial_loss,
    mae_loss,
    mse_loss,
)
from .serialization import load_module, save_module
from . import init

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "zeros",
    "ones",
    "no_grad",
    "is_grad_enabled",
    "detect_anomaly",
    "is_anomaly_enabled",
    "NumericalAnomalyError",
    "Module",
    "Parameter",
    "Linear",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "Dropout",
    "Sequential",
    "MLP",
    "LSTM",
    "LSTMCell",
    "LSTMRegressor",
    "Optimizer",
    "SGD",
    "Adam",
    "mse_loss",
    "mae_loss",
    "bce_with_logits",
    "discriminator_loss",
    "generator_adversarial_loss",
    "gaussian_nll",
    "save_module",
    "load_module",
    "init",
]
