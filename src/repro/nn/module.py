"""Module/Parameter abstractions for the numpy NN engine.

Mirrors the familiar container pattern: a :class:`Module` owns
:class:`Parameter` tensors and sub-modules, exposes recursive parameter
iteration, train/eval mode flags (used by dropout and the stochastic LSTM
layers), and flat state-dict serialization.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .anomaly import STATE as _anomaly
from .anomaly import NumericalAnomalyError, annotate_module
from .tensor import Tensor


# Module-call hook for symbolic tracing (see repro.analysis.graph.trace).
# While installed, every Module.__call__ routes through the hook, which
# pushes the dotted module path, checks the module's @contract, and invokes
# forward() itself.  ``None`` outside a verification trace.
_call_hook = None


def _set_call_hook(hook):
    """Install (or clear, with None) the call hook; returns the previous one."""
    global _call_hook
    previous = _call_hook
    _call_hook = hook
    return previous


class Parameter(Tensor):
    """A trainable tensor; always created with ``requires_grad=True``."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(np.asarray(data, dtype=np.float64), requires_grad=True, name=name)


class Module:
    """Base class for neural network components."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------
    # Attribute routing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", {})[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """Return all parameters of this module and its children."""
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Modes
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat mapping from dotted parameter name to a copied array."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load a state dict produced by :meth:`state_dict` (strict)."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        if _call_hook is not None:
            return _call_hook.call_module(self, args, kwargs)
        if not _anomaly.enabled:
            return self.forward(*args, **kwargs)
        try:
            return self.forward(*args, **kwargs)
        except NumericalAnomalyError as exc:
            # Build the innermost-first module path as the stack unwinds, so
            # the error reports *where in the model* the anomaly surfaced.
            annotate_module(exc, type(self).__name__)
            raise
