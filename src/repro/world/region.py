"""Region: one self-consistent synthetic world.

A :class:`Region` bundles everything a drive-test campaign happens in — the
local coordinate frame, cities and road network, land-use raster, PoI layer,
and cell deployment — so datasets, simulators, and context extraction all
query the same world.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.coords import LocalFrame
from ..geo.routes import CitySpec, RoadNetwork
from ..radio.cells import Cell, CellDeployment, deploy_city, deploy_highway
from .landuse import LandUseRaster, generate_land_use
from .poi import PoiIndex, generate_pois


@dataclass
class Region:
    """A synthetic world: geography + environment + cell deployment."""

    frame: LocalFrame
    cities: List[CitySpec]
    roads: RoadNetwork
    land_use: LandUseRaster
    pois: PoiIndex
    deployment: CellDeployment
    highway_polylines: List[List[Tuple[float, float]]] = field(default_factory=list)

    def clutter_along(self, lat: np.ndarray, lon: np.ndarray) -> np.ndarray:
        """Clutter factor at each trajectory point (propagation input)."""
        return np.asarray(self.land_use.clutter_at(lat, lon))


def _chain_highway_polylines(roads: RoadNetwork) -> List[List[Tuple[float, float]]]:
    """Join highway edges into maximal continuous polylines."""
    import networkx as nx

    highway_edges = [
        (u, v)
        for u, v, data in roads.graph.edges(data=True)
        if data["kind"] == "highway"
    ]
    if not highway_edges:
        return []
    subgraph = nx.Graph(highway_edges)
    polylines: List[List[Tuple[float, float]]] = []
    for component in nx.connected_components(subgraph):
        piece = subgraph.subgraph(component)
        endpoints = [node for node in piece.nodes if piece.degree(node) == 1]
        start = endpoints[0] if endpoints else next(iter(piece.nodes))
        # Walk the path/cycle from one endpoint.
        polyline = [start]
        prev = None
        node = start
        while True:
            neighbors = [n for n in piece.neighbors(node) if n != prev]
            if not neighbors:
                break
            prev, node = node, neighbors[0]
            polyline.append(node)
            if node == start:  # cycle closed
                break
        if len(polyline) >= 2:
            polylines.append(polyline)
    return polylines


def build_region(
    cities: Sequence[CitySpec],
    rng: np.random.Generator,
    city_site_density_per_km2: float = 6.0,
    highway_site_spacing_m: float = 1500.0,
    land_use_pixel_m: float = 100.0,
    poi_intensity_scale: float = 1.0,
) -> Region:
    """Construct a full synthetic region around the given cities.

    The local frame is anchored at the centroid of the city centres; the
    land-use raster covers the bounding square of all cities plus margin.
    """
    cities = list(cities)
    lat0 = float(np.mean([c.center_lat for c in cities]))
    lon0 = float(np.mean([c.center_lon for c in cities]))
    frame = LocalFrame(lat0, lon0)

    roads = RoadNetwork(cities, connect_highways=len(cities) > 1)

    # Extract highway polylines from the road graph for land-use/PoI shaping
    # and highway cell placement.  Highway edges are short segments; chain
    # them into continuous polylines (otherwise each 500 m piece would be
    # too short to host any site at the 1.5 km spacing).
    highway_polylines = _chain_highway_polylines(roads)

    # Region extent: distance from origin to the farthest city edge + margin.
    max_r = 0.0
    for city in cities:
        cx, cy = frame.to_xy(city.center_lat, city.center_lon)
        max_r = max(max_r, float(np.hypot(cx, cy)) + city.half_extent_m)
    extent_m = max_r + 1500.0

    land_use = generate_land_use(
        frame, cities, extent_m, rng, pixel_m=land_use_pixel_m,
        highway_waypoints=highway_polylines,
    )
    pois = generate_pois(
        land_use, extent_m, rng, highway_waypoints=highway_polylines,
        intensity_scale=poi_intensity_scale,
    )

    cells: List[Cell] = []
    next_cell, next_site = 0, 0
    for city in cities:
        new = deploy_city(
            city, frame, rng,
            site_density_per_km2=city_site_density_per_km2,
            start_cell_id=next_cell, start_site_id=next_site,
        )
        cells.extend(new)
        next_cell = cells[-1].cell_id + 1
        next_site = cells[-1].site_id + 1
    for polyline in highway_polylines:
        new = deploy_highway(
            polyline, frame, rng,
            site_spacing_m=highway_site_spacing_m,
            start_cell_id=next_cell, start_site_id=next_site,
        )
        if new:
            cells.extend(new)
            next_cell = cells[-1].cell_id + 1
            next_site = cells[-1].site_id + 1

    deployment = CellDeployment(cells, frame)
    return Region(
        frame=frame,
        cities=cities,
        roads=roads,
        land_use=land_use,
        pois=pois,
        deployment=deployment,
        highway_polylines=highway_polylines,
    )
