"""Procedural land-use raster over a region.

Substitutes the Copernicus Urban Atlas: a coarse grid over the region where
each pixel holds a distribution over the 12 land-use classes.  City cores are
continuous/high-dense urban, density decays with distance from each city
centre, highway corridors are low-density/barren, and smooth spatial noise
breaks up the radial symmetry so the raster has realistic texture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.coords import LocalFrame
from ..geo.routes import CitySpec
from .attributes import LAND_USE_CLASSES, LAND_USE_CLUTTER, N_LAND_USE


def _smooth_noise(shape: Tuple[int, int], rng: np.random.Generator, passes: int = 4) -> np.ndarray:
    """Cheap smooth random field in [0,1] via repeated box blurs of white noise."""
    field = rng.random(shape)
    for _ in range(passes):
        padded = np.pad(field, 1, mode="edge")
        field = (
            padded[:-2, :-2] + padded[:-2, 1:-1] + padded[:-2, 2:]
            + padded[1:-1, :-2] + padded[1:-1, 1:-1] + padded[1:-1, 2:]
            + padded[2:, :-2] + padded[2:, 1:-1] + padded[2:, 2:]
        ) / 9.0
    lo, hi = field.min(), field.max()
    return (field - lo) / max(hi - lo, 1e-12)


@dataclass
class LandUseRaster:
    """Grid of land-use class fractions covering a rectangular region.

    ``fractions`` has shape [rows, cols, N_LAND_USE] with each pixel summing
    to 1.  The raster answers two queries used by the rest of the system:
    class fractions within a radius of a point (environment context), and
    the scalar clutter factor at a point (propagation).
    """

    frame: LocalFrame
    x_min: float
    y_min: float
    pixel_m: float
    fractions: np.ndarray

    @property
    def shape(self) -> Tuple[int, int]:
        return self.fractions.shape[:2]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _pixel_of_xy(self, x: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        rows, cols = self.shape
        col = np.clip(((x - self.x_min) / self.pixel_m).astype(int), 0, cols - 1)
        row = np.clip(((y - self.y_min) / self.pixel_m).astype(int), 0, rows - 1)
        return row, col

    def fractions_at(self, lat, lon) -> np.ndarray:
        """Land-use fractions at point(s); shape [..., N_LAND_USE]."""
        x, y = self.frame.to_xy(lat, lon)
        row, col = self._pixel_of_xy(np.atleast_1d(x), np.atleast_1d(y))
        out = self.fractions[row, col]
        if np.asarray(lat).ndim == 0:
            return out[0]
        return out

    def fractions_within(self, lat: float, lon: float, radius_m: float) -> np.ndarray:
        """Mean class fractions over pixels within ``radius_m`` of the point.

        This is the paper's land-use environment context: percentage area of
        each class around the device location.
        """
        x, y = self.frame.to_xy(lat, lon)
        x, y = float(x), float(y)
        rows, cols = self.shape
        r_pix = max(1, int(np.ceil(radius_m / self.pixel_m)))
        row0, col0 = self._pixel_of_xy(np.array([x]), np.array([y]))
        row0, col0 = int(row0[0]), int(col0[0])
        r_lo, r_hi = max(0, row0 - r_pix), min(rows, row0 + r_pix + 1)
        c_lo, c_hi = max(0, col0 - r_pix), min(cols, col0 + r_pix + 1)
        block = self.fractions[r_lo:r_hi, c_lo:c_hi]
        # Circular mask over the block.
        rr = (np.arange(r_lo, r_hi) + 0.5) * self.pixel_m + self.y_min
        cc = (np.arange(c_lo, c_hi) + 0.5) * self.pixel_m + self.x_min
        dist2 = (rr[:, None] - y) ** 2 + (cc[None, :] - x) ** 2
        mask = dist2 <= radius_m**2
        if not mask.any():
            return block.reshape(-1, N_LAND_USE).mean(axis=0)
        return block[mask].mean(axis=0)

    def clutter_at(self, lat, lon) -> np.ndarray:
        """Scalar clutter factor in [0, 1] (propagation input) at point(s)."""
        fractions = self.fractions_at(lat, lon)
        weights = np.array([LAND_USE_CLUTTER[c] for c in LAND_USE_CLASSES])
        return fractions @ weights


def generate_land_use(
    frame: LocalFrame,
    cities: Sequence[CitySpec],
    extent_m: float,
    rng: np.random.Generator,
    pixel_m: float = 100.0,
    highway_waypoints: Optional[Sequence[Sequence[Tuple[float, float]]]] = None,
) -> LandUseRaster:
    """Build a procedural raster covering ``[-extent, extent]²`` in the frame."""
    n = int(np.ceil(2 * extent_m / pixel_m))
    x_min = y_min = -extent_m
    centers_xy = [frame.to_xy(c.center_lat, c.center_lon) for c in cities]
    xs = (np.arange(n) + 0.5) * pixel_m + x_min
    ys = (np.arange(n) + 0.5) * pixel_m + y_min
    gx, gy = np.meshgrid(xs, ys)  # [row=y, col=x]

    # Urban-ness: max over cities of a radial decay, perturbed by smooth noise.
    urban = np.zeros((n, n))
    for (cx, cy), city in zip(centers_xy, cities):
        dist = np.hypot(gx - float(cx), gy - float(cy))
        urban = np.maximum(urban, np.exp(-(dist / (0.8 * city.half_extent_m)) ** 2))
    urban = np.clip(urban + 0.25 * (_smooth_noise((n, n), rng) - 0.5), 0.0, 1.0)

    texture = _smooth_noise((n, n), rng)
    industry = _smooth_noise((n, n), rng)

    fractions = np.zeros((n, n, N_LAND_USE))
    idx = {name: i for i, name in enumerate(LAND_USE_CLASSES)}
    # Allocate density classes by urban-ness bands, softened by texture.
    fractions[..., idx["continuous_urban"]] = np.clip(urban - 0.75, 0, 1) * 4.0
    fractions[..., idx["high_dense_urban"]] = np.clip(0.9 - np.abs(urban - 0.7) * 3.0, 0, 1)
    fractions[..., idx["medium_dense_urban"]] = np.clip(0.9 - np.abs(urban - 0.5) * 3.0, 0, 1)
    fractions[..., idx["low_dense_urban"]] = np.clip(0.9 - np.abs(urban - 0.3) * 3.0, 0, 1)
    fractions[..., idx["very_low_dense_urban"]] = np.clip(0.8 - np.abs(urban - 0.15) * 3.5, 0, 1)
    fractions[..., idx["isolated_structures"]] = np.clip(0.4 - urban, 0, 1) * texture
    fractions[..., idx["green_urban"]] = 0.35 * texture * np.clip(urban, 0.05, 1.0)
    fractions[..., idx["industrial_commercial"]] = 0.5 * industry * np.clip(urban - 0.2, 0, 1)
    fractions[..., idx["leisure_facilities"]] = 0.12 * (1.0 - np.abs(texture - 0.5) * 2.0)
    fractions[..., idx["barren_lands"]] = np.clip(0.5 - urban, 0, 1) * (1.0 - texture)
    fractions[..., idx["air_sea_ports"]] = 0.04 * np.clip(industry - 0.7, 0, 1)
    fractions[..., idx["sea"]] = 0.0

    # Highways carve a low-density corridor.
    if highway_waypoints:
        for polyline in highway_waypoints:
            lats = np.array([p[0] for p in polyline])
            lons = np.array([p[1] for p in polyline])
            hx, hy = frame.to_xy(lats, lons)
            for k in range(len(hx) - 1):
                seg_len = np.hypot(hx[k + 1] - hx[k], hy[k + 1] - hy[k])
                for frac in np.linspace(0, 1, max(2, int(seg_len // pixel_m))):
                    px = hx[k] + frac * (hx[k + 1] - hx[k])
                    py = hy[k] + frac * (hy[k + 1] - hy[k])
                    dist = np.hypot(gx - px, gy - py)
                    corridor = dist < 2 * pixel_m
                    fractions[corridor, idx["barren_lands"]] += 0.6
                    fractions[corridor, idx["very_low_dense_urban"]] += 0.2

    totals = fractions.sum(axis=-1, keepdims=True)
    empty = totals[..., 0] < 1e-9
    fractions[empty, idx["barren_lands"]] = 1.0
    totals = fractions.sum(axis=-1, keepdims=True)
    fractions /= totals
    return LandUseRaster(frame=frame, x_min=x_min, y_min=y_min, pixel_m=pixel_m, fractions=fractions)
