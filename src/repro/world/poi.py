"""Procedural points-of-interest layer.

Substitutes the OpenStreetMap Overpass queries: PoIs of each class are drawn
from inhomogeneous Poisson processes whose intensity tracks urban-ness (cafes
and shops cluster in city cores, motorway nodes follow highway corridors).
The query the context pipeline needs is "count of each PoI class within a
radius of a point", served by a per-class uniform grid index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.coords import LocalFrame
from .attributes import POI_CLASSES
from .landuse import LandUseRaster

#: Baseline PoI intensity per km² at full urban-ness, per class.
_POI_URBAN_INTENSITY: Dict[str, float] = {
    "tourism": 4.0,
    "cafe": 14.0,
    "parking": 10.0,
    "restaurant": 16.0,
    "post_police": 2.5,
    "traffic_signal": 20.0,
    "office": 12.0,
    "public_transport": 10.0,
    "shop": 22.0,
    "primary_roads": 8.0,
    "secondary_roads": 12.0,
    "motorways": 0.5,
    "railway_stations": 1.0,
    "tram_stops": 5.0,
}

#: Classes whose intensity follows highway corridors rather than urban cores.
_HIGHWAY_CLASSES = ("motorways", "parking")


class PoiIndex:
    """Spatially-indexed PoI points for radius-count queries."""

    def __init__(self, frame: LocalFrame, points_xy: Dict[str, np.ndarray], cell_m: float = 500.0) -> None:
        self.frame = frame
        self.cell_m = cell_m
        self._points: Dict[str, np.ndarray] = {}
        self._buckets: Dict[str, Dict[Tuple[int, int], np.ndarray]] = {}
        for cls in POI_CLASSES:
            pts = np.asarray(points_xy.get(cls, np.zeros((0, 2))), dtype=float).reshape(-1, 2)
            self._points[cls] = pts
            buckets: Dict[Tuple[int, int], List[int]] = {}
            for i, (x, y) in enumerate(pts):
                key = (int(np.floor(x / cell_m)), int(np.floor(y / cell_m)))
                buckets.setdefault(key, []).append(i)
            self._buckets[cls] = {k: np.asarray(v) for k, v in buckets.items()}

    def total_points(self, cls: Optional[str] = None) -> int:
        if cls is not None:
            return len(self._points[cls])
        return sum(len(p) for p in self._points.values())

    def count_within(self, lat: float, lon: float, radius_m: float, cls: str) -> int:
        """Number of PoIs of class ``cls`` within ``radius_m`` of the point."""
        x, y = self.frame.to_xy(lat, lon)
        x, y = float(x), float(y)
        pts = self._points[cls]
        if len(pts) == 0:
            return 0
        k_r = int(np.ceil(radius_m / self.cell_m))
        kx0 = int(np.floor(x / self.cell_m))
        ky0 = int(np.floor(y / self.cell_m))
        count = 0
        buckets = self._buckets[cls]
        r2 = radius_m**2
        for kx in range(kx0 - k_r, kx0 + k_r + 1):
            for ky in range(ky0 - k_r, ky0 + k_r + 1):
                idx = buckets.get((kx, ky))
                if idx is None:
                    continue
                sel = pts[idx]
                count += int(np.sum((sel[:, 0] - x) ** 2 + (sel[:, 1] - y) ** 2 <= r2))
        return count

    def counts_within(self, lat: float, lon: float, radius_m: float) -> np.ndarray:
        """Counts for all classes in canonical order, shape [N_POI]."""
        return np.array(
            [self.count_within(lat, lon, radius_m, cls) for cls in POI_CLASSES], dtype=float
        )


def generate_pois(
    land_use: LandUseRaster,
    extent_m: float,
    rng: np.random.Generator,
    highway_waypoints: Optional[Sequence[Sequence[Tuple[float, float]]]] = None,
    intensity_scale: float = 1.0,
) -> PoiIndex:
    """Sample PoI point sets over the region via thinned Poisson processes."""
    frame = land_use.frame
    area_km2 = (2 * extent_m / 1000.0) ** 2
    points: Dict[str, np.ndarray] = {}
    for cls in POI_CLASSES:
        intensity = _POI_URBAN_INTENSITY[cls] * intensity_scale
        n_candidates = rng.poisson(intensity * area_km2)
        if n_candidates == 0:
            points[cls] = np.zeros((0, 2))
            continue
        xy = rng.uniform(-extent_m, extent_m, size=(n_candidates, 2))
        lat, lon = frame.to_latlon(xy[:, 0], xy[:, 1])
        if cls in _HIGHWAY_CLASSES and highway_waypoints:
            keep_p = _highway_proximity(xy, frame, highway_waypoints)
        else:
            # Thin by urban-ness: accept with probability ~ 1 - clutter gap.
            clutter = np.asarray(land_use.clutter_at(lat, lon))
            keep_p = np.clip(clutter * 1.6, 0.03, 1.0)
        keep = rng.random(n_candidates) < keep_p
        points[cls] = xy[keep]
    return PoiIndex(frame, points)


def _highway_proximity(
    xy: np.ndarray,
    frame: LocalFrame,
    highway_waypoints: Sequence[Sequence[Tuple[float, float]]],
    scale_m: float = 800.0,
) -> np.ndarray:
    """Acceptance probability decaying with distance to the nearest highway."""
    min_d = np.full(len(xy), np.inf)
    for polyline in highway_waypoints:
        lats = np.array([p[0] for p in polyline])
        lons = np.array([p[1] for p in polyline])
        hx, hy = frame.to_xy(lats, lons)
        for px, py in zip(hx, hy):
            min_d = np.minimum(min_d, np.hypot(xy[:, 0] - px, xy[:, 1] - py))
    return np.exp(-min_d / scale_m)
