"""Environment substrate: land use, points of interest, synthetic regions."""

from .attributes import (
    ENV_ATTRIBUTES,
    LAND_USE_CLASSES,
    LAND_USE_CLUTTER,
    N_ENV_ATTRIBUTES,
    N_LAND_USE,
    N_POI,
    POI_CLASSES,
)
from .landuse import LandUseRaster, generate_land_use
from .poi import PoiIndex, generate_pois
from .region import Region, build_region

__all__ = [
    "ENV_ATTRIBUTES",
    "LAND_USE_CLASSES",
    "LAND_USE_CLUTTER",
    "POI_CLASSES",
    "N_ENV_ATTRIBUTES",
    "N_LAND_USE",
    "N_POI",
    "LandUseRaster",
    "generate_land_use",
    "PoiIndex",
    "generate_pois",
    "Region",
    "build_region",
]
