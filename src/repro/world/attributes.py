"""The 26 environment-context attributes of paper Table 11.

Two families:

* 12 **land-use** classes (Copernicus Urban Atlas in the paper) — expressed
  as the percentage of area each class covers within a radius of the device;
* 14 **points of interest** classes (OpenStreetMap in the paper) — expressed
  as the count of each PoI type within the radius.

The constants here fix the canonical ordering of the 26-dimensional
environment feature vector used throughout the context pipeline, the
procedural world generator, and GenDT's ResGen input.
"""

from __future__ import annotations

from typing import List

#: Land-use classes (fraction-of-area features).  Order is canonical.
LAND_USE_CLASSES: List[str] = [
    "continuous_urban",
    "high_dense_urban",
    "medium_dense_urban",
    "low_dense_urban",
    "very_low_dense_urban",
    "isolated_structures",
    "green_urban",
    "industrial_commercial",
    "air_sea_ports",
    "leisure_facilities",
    "barren_lands",
    "sea",
]

#: PoI classes (count features).  Order is canonical.
POI_CLASSES: List[str] = [
    "tourism",
    "cafe",
    "parking",
    "restaurant",
    "post_police",
    "traffic_signal",
    "office",
    "public_transport",
    "shop",
    "primary_roads",
    "secondary_roads",
    "motorways",
    "railway_stations",
    "tram_stops",
]

ENV_ATTRIBUTES: List[str] = LAND_USE_CLASSES + POI_CLASSES

N_LAND_USE = len(LAND_USE_CLASSES)
N_POI = len(POI_CLASSES)
N_ENV_ATTRIBUTES = len(ENV_ATTRIBUTES)

assert N_ENV_ATTRIBUTES == 26, "paper Table 11 lists 26 attributes"

#: How strongly each land-use class obstructs propagation; drives the
#: clutter factor used by the pathloss/shadowing models (0 = open, 1 = dense).
LAND_USE_CLUTTER: dict = {
    "continuous_urban": 1.00,
    "high_dense_urban": 0.85,
    "medium_dense_urban": 0.65,
    "low_dense_urban": 0.45,
    "very_low_dense_urban": 0.30,
    "isolated_structures": 0.20,
    "green_urban": 0.15,
    "industrial_commercial": 0.55,
    "air_sea_ports": 0.25,
    "leisure_facilities": 0.20,
    "barren_lands": 0.05,
    "sea": 0.00,
}
