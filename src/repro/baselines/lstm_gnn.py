"""LSTM-GNN prediction baseline (paper §5.2, after Tong et al.).

A state-of-the-art GNN time-series *prediction* architecture: the same
node-LSTM + mean-aggregation + LSTM stack as GenDT's first two components,
but purely deterministic and trained as a regressor on whole trajectories —
no stochastic layers, no residual generator, no adversarial training, and no
batch-generation mechanism (the paper attributes its weak MAE/DTW to the
last point: prediction models struggle to *generate* long series).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import nn
from ..analysis.graph.spec import Spec, contract
from ..nn.tensor import Tensor
from ..context.normalize import N_CELL_FEATURES
from ..geo.trajectory import Trajectory
from ..radio.simulator import DriveTestRecord
from ..world.region import Region
from .base import BaselineModel, ContextEncodingMixin


@contract(
    inputs={
        "cell_x": Spec("B", "N", "L", "F", array=True),
        "cell_mask": Spec("B", "N", array=True),
    },
    outputs=Spec("B", "L", "C"),
    dims={"F": "node_lstm.input_size", "C": "head.out_features"},
)
class _LstmGnnNet(nn.Module):
    """Node LSTM (shared across cells) -> mean pool -> LSTM -> linear head."""

    def __init__(self, n_features: int, hidden: int, n_channels: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.node_lstm = nn.LSTM(n_features, hidden, rng)
        self.agg_lstm = nn.LSTM(hidden, hidden, rng)
        self.head = nn.Linear(hidden, n_channels, rng)

    def forward(self, cell_x: np.ndarray, cell_mask: np.ndarray) -> Tensor:
        """cell_x [B, N, L, F], mask [B, N] -> predictions [B, L, C]."""
        b, n_cells, length, n_feat = cell_x.shape
        flat = Tensor(cell_x.reshape(b * n_cells, length, n_feat))
        hidden, _ = self.node_lstm(flat)
        h = hidden.reshape(b, n_cells, length, hidden.shape[-1])
        mask = cell_mask[:, :, None, None]
        counts = np.maximum(cell_mask.sum(axis=1), 1.0)[:, None, None]
        h_avg = (h * Tensor(mask)).sum(axis=1) * Tensor(1.0 / counts)
        out, _ = self.agg_lstm(h_avg)
        return self.head(out)


class LSTMGNNBaseline(ContextEncodingMixin, BaselineModel):
    """Deterministic GNN-LSTM regressor over whole trajectories."""

    name = "lstm_gnn"

    def __init__(
        self,
        region: Region,
        kpis: Sequence = ("rsrp", "rsrq"),
        hidden: int = 32,
        max_cells: int = 8,
        seed: int = 0,
        lr: float = 1e-3,
        epochs: int = 15,
        max_train_len: int = 400,
    ) -> None:
        self._init_context(region, kpis, max_cells, seed)
        self.hidden = hidden
        self.lr = lr
        self.epochs = epochs
        self.max_train_len = max_train_len
        self.net: Optional[_LstmGnnNet] = None

    # ------------------------------------------------------------------
    def _window_arrays(self, trajectory: Trajectory, length: int):
        """Whole-series (or capped-length) context arrays for one trajectory."""
        windows = self.context.windows_for_trajectory(
            trajectory, length=length, step=length
        )
        arrays = []
        for window in windows:
            cells = self.cell_transform(window, window.ue_lat, window.ue_lon)
            n_real = min(window.n_cells, self.max_cells)
            padded = np.zeros((self.max_cells, window.length, N_CELL_FEATURES))
            padded[:n_real] = cells[:, : self.max_cells].transpose(1, 0, 2)
            mask = np.zeros(self.max_cells)
            mask[:n_real] = 1.0
            arrays.append((padded, mask, window.start, window.length))
        return arrays

    def fit(self, records: Sequence[DriveTestRecord], epochs: Optional[int] = None, **kwargs) -> None:
        self._fit_normalizers(records)
        self.net = _LstmGnnNet(
            N_CELL_FEATURES, self.hidden, self.kpi_spec.n_channels, self.rng
        )
        optimizer = nn.Adam(self.net.parameters(), lr=self.lr)
        # Training items: whole trajectories, capped to keep BPTT tractable.
        items = []
        for record in records:
            length = min(len(record.trajectory), self.max_train_len)
            target = self.target_normalizer.normalize(
                record.kpi_matrix(self.kpi_names)
            )
            for padded, mask, start, win_len in self._window_arrays(
                record.trajectory, length
            ):
                items.append((padded, mask, target[start : start + win_len]))
        for _ in range(epochs or self.epochs):
            order = self.rng.permutation(len(items))
            for idx in order:
                padded, mask, target = items[idx]
                pred = self.net(padded[None], mask[None])
                loss = nn.mse_loss(pred, Tensor(target[None]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def generate(self, trajectory: Trajectory) -> np.ndarray:
        if self.net is None:
            raise RuntimeError("fit before generate")
        out = np.empty((len(trajectory), self.kpi_spec.n_channels))
        with nn.no_grad():
            for padded, mask, start, win_len in self._window_arrays(
                trajectory, len(trajectory)
            ):
                pred = self.net(padded[None], mask[None]).numpy()[0]
                out[start : start + win_len] = pred
        return self.clip(self.target_normalizer.denormalize(out))
