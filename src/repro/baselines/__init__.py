"""Baseline generation methods compared against GenDT (paper §5.2)."""

from .base import BaselineModel, ContextEncodingMixin
from .fdas import FDaS, FittedDistribution, fit_best_distribution
from .mlp import MLPBaseline
from .lstm_gnn import LSTMGNNBaseline
from .doppelganger import DoppelGANger, GaussianMetadataModel

__all__ = [
    "BaselineModel",
    "ContextEncodingMixin",
    "FDaS",
    "FittedDistribution",
    "fit_best_distribution",
    "MLPBaseline",
    "LSTMGNNBaseline",
    "DoppelGANger",
    "GaussianMetadataModel",
]
