"""Common interface and shared context encoding for baseline generators.

Every baseline implements ``fit(records)`` / ``generate(trajectory)`` with
the same signature as :class:`repro.core.GenDT`, so the evaluation harness
runs all methods through one loop.

The baselines that consume context (MLP, LSTM-GNN, Real-Context DG) share a
flat per-timestep encoding produced here: the transformed features of the
``max_cells`` nearest cells (zero-padded) concatenated with the normalized
environment vector.  This deliberately reflects their architectural
limitation the paper highlights — a fixed-width flat context instead of
GenDT's set-valued graph input.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

import numpy as np

from ..context.extract import ContextConfig
from ..context.normalize import (
    CellFeatureTransform,
    EnvFeatureNormalizer,
    N_CELL_FEATURES,
    TargetNormalizer,
)
from ..context.windows import ContextBuilder, ContextWindow
from ..geo.trajectory import Trajectory
from ..radio.kpis import KPI, KpiSpec
from ..radio.simulator import DriveTestRecord
from ..world.region import Region


class BaselineModel(abc.ABC):
    """Interface every generation method (and GenDT) satisfies."""

    name: str = "baseline"

    @abc.abstractmethod
    def fit(self, records: Sequence[DriveTestRecord], **kwargs) -> None:
        """Train on measurement records."""

    @abc.abstractmethod
    def generate(self, trajectory: Trajectory) -> np.ndarray:
        """Generate [T, n_kpis] KPI series in physical units."""


class ContextEncodingMixin:
    """Shared flat context encoding for context-aware baselines."""

    def _init_context(
        self,
        region: Region,
        kpis: Sequence,
        max_cells: int,
        seed: int,
    ) -> None:
        self.region = region
        self.kpi_spec = KpiSpec([KPI(k) for k in kpis])
        self.max_cells = max_cells
        self.rng = np.random.default_rng(seed)
        self.context = ContextBuilder(region, ContextConfig(max_cells=max_cells))
        self.cell_transform = CellFeatureTransform(region.frame)
        self.env_normalizer = EnvFeatureNormalizer()
        self.target_normalizer = TargetNormalizer()

    @property
    def kpi_names(self) -> List[str]:
        return self.kpi_spec.names()

    def _fit_normalizers(self, records: Sequence[DriveTestRecord]) -> None:
        targets = np.concatenate([r.kpi_matrix(self.kpi_names) for r in records])
        self.target_normalizer.fit(targets)
        env = np.concatenate(
            [self.context.environment.features(r.trajectory) for r in records]
        )
        self.env_normalizer.fit(env)

    def flat_features(self, window: ContextWindow) -> np.ndarray:
        """Per-timestep flat context [L, max_cells*6 + 26]."""
        cells = self.cell_transform(window, window.ue_lat, window.ue_lon)
        length, n_cells, n_feat = cells.shape
        padded = np.zeros((length, self.max_cells, n_feat))
        padded[:, : min(n_cells, self.max_cells)] = cells[:, : self.max_cells]
        env = self.env_normalizer(window.env_features)
        return np.concatenate([padded.reshape(length, -1), env], axis=1)

    @property
    def n_flat_features(self) -> int:
        from ..world.attributes import N_ENV_ATTRIBUTES

        return self.max_cells * N_CELL_FEATURES + N_ENV_ATTRIBUTES

    def trajectory_features(self, trajectory: Trajectory) -> np.ndarray:
        """Flat features for a whole trajectory, [T, n_flat_features]."""
        windows = self.context.windows_for_trajectory(
            trajectory, length=len(trajectory), step=len(trajectory)
        )
        return self.flat_features(windows[0])

    def clip(self, series: np.ndarray) -> np.ndarray:
        return self.kpi_spec.clip(series)
