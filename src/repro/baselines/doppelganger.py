"""DoppelGANger baselines: original and Real-Context variant (paper §5.2, §B).

DoppelGANger (Lin et al., IMC '20) generates multivariate time series in two
stages: stage 1 generates static per-sample *metadata* (context) from noise;
stage 2 generates the series with an LSTM conditioned on that metadata, in
batches of steps.  Two properties matter for the drive-testing comparison:

* the conditioning context is **static per sample** — DG cannot represent
  the dynamic, set-valued network context GenDT's GNN consumes; we encode a
  window's context as its time-average (flat cell features + environment);
* in the **original** DG the metadata is *generated*, so the output series
  cannot track a particular real trajectory (poor MAE/DTW, as the paper
  reports); the **Real-Context** variant feeds the real window context
  straight into stage 2 (paper Figure 17b).

Stage 1 here is a Gaussian (mean + covariance) maximum-likelihood fit over
real metadata vectors — a simplification of DG's metadata GAN that preserves
the property the comparison tests: generated context is distribution-level,
decoupled from the test trajectory.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import nn
from ..analysis.graph.spec import Spec, contract
from ..nn.tensor import Tensor, concat
from ..geo.trajectory import Trajectory
from ..radio.simulator import DriveTestRecord
from ..world.region import Region
from .base import BaselineModel, ContextEncodingMixin


def _dg_probe(module: "_DGGenerator", env) -> Tuple[tuple, dict]:
    """Probe (metadata, length) pair; length is a plain int argument."""
    b = int(env.fresh("B"))
    length = int(env.fresh("T"))
    n_meta = module.lstm.input_size - module.n_noise
    return ((np.zeros((b, n_meta)), length), {})


@contract(
    inputs={"metadata": Spec("B", "M", array=True)},
    outputs=Spec("B", "T", "C"),
    dims={
        "M": lambda m: m.lstm.input_size - m.n_noise,
        "C": "head.out_features",
    },
    build_inputs=_dg_probe,
)
class _DGGenerator(nn.Module):
    """Stage-2 LSTM generator: (static metadata, per-step noise) -> series."""

    def __init__(
        self, n_meta: int, n_noise: int, hidden: int, n_channels: int, rng: np.random.Generator
    ) -> None:
        super().__init__()
        self.n_noise = n_noise
        self.lstm = nn.LSTM(n_meta + n_noise, hidden, rng)
        self.head = nn.Linear(hidden, n_channels, rng)
        self.rng = rng

    def forward(self, metadata: np.ndarray, length: int) -> Tensor:
        """metadata [B, n_meta] -> series [B, length, n_channels]."""
        b, n_meta = metadata.shape
        meta_seq = np.broadcast_to(metadata[:, None, :], (b, length, n_meta))
        noise = self.rng.normal(0.0, 1.0, size=(b, length, self.n_noise))
        inputs = Tensor(np.concatenate([meta_seq, noise], axis=2))
        hidden, _ = self.lstm(inputs)
        return self.head(hidden)


@contract(
    inputs={
        "series": Spec("B", "L", "C"),
        "metadata": Spec("B", "M", array=True),
    },
    outputs=Spec("B", 1),
    dims={"M": "n_meta", "C": lambda m: m.lstm.input_size - m.n_meta},
)
class _DGDiscriminator(nn.Module):
    """LSTM discriminator over (series, repeated metadata)."""

    def __init__(self, n_meta: int, n_channels: int, hidden: int, rng: np.random.Generator) -> None:
        super().__init__()
        self.n_meta = n_meta
        self.lstm = nn.LSTM(n_meta + n_channels, hidden, rng)
        self.head = nn.Linear(hidden, 1, rng)

    def forward(self, series: Tensor, metadata: np.ndarray) -> Tensor:
        b, length, _ = series.shape
        meta_seq = np.broadcast_to(metadata[:, None, :], (b, length, metadata.shape[1]))
        joined = concat([series, Tensor(meta_seq)], axis=2)
        hidden, _ = self.lstm(joined)
        return self.head(hidden[:, -1, :])


class GaussianMetadataModel:
    """Stage-1 substitute: multivariate Gaussian MLE over metadata vectors."""

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.chol: Optional[np.ndarray] = None

    def fit(self, metadata: np.ndarray) -> None:
        self.mean = metadata.mean(axis=0)
        cov = np.cov(metadata.T) + 1e-4 * np.eye(metadata.shape[1])
        self.chol = np.linalg.cholesky(cov)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("fit before sample")
        z = rng.normal(0.0, 1.0, size=(n, len(self.mean)))
        return self.mean + z @ self.chol.T


class DoppelGANger(ContextEncodingMixin, BaselineModel):
    """DG baseline; ``real_context=True`` selects the optimized variant."""

    def __init__(
        self,
        region: Region,
        kpis: Sequence = ("rsrp", "rsrq"),
        real_context: bool = False,
        window_len: int = 50,
        hidden: int = 32,
        n_noise: int = 4,
        max_cells: int = 8,
        seed: int = 0,
        lr: float = 1e-3,
        epochs: int = 15,
        minibatch: int = 8,
        lambda_adv: float = 0.1,
    ) -> None:
        self._init_context(region, kpis, max_cells, seed)
        self.real_context = real_context
        self.name = "real_context_dg" if real_context else "orig_dg"
        self.window_len = window_len
        self.hidden = hidden
        self.n_noise = n_noise
        self.lr = lr
        self.epochs = epochs
        self.minibatch = minibatch
        self.lambda_adv = lambda_adv
        self.generator: Optional[_DGGenerator] = None
        self.discriminator: Optional[_DGDiscriminator] = None
        self.metadata_model = GaussianMetadataModel()

    # ------------------------------------------------------------------
    def _window_metadata(self, window) -> np.ndarray:
        """Static per-window context: time-average of the flat encoding."""
        return self.flat_features(window).mean(axis=0)

    def _training_items(
        self, records: Sequence[DriveTestRecord]
    ) -> Tuple[np.ndarray, np.ndarray]:
        metas: List[np.ndarray] = []
        targets: List[np.ndarray] = []
        for record in records:
            length = min(self.window_len, len(record.trajectory))
            windows = self.context.windows_for_trajectory(
                record.trajectory, length=length, step=length
            )
            target = self.target_normalizer.normalize(
                record.kpi_matrix(self.kpi_names)
            )
            for window in windows:
                if window.length != length:
                    continue
                metas.append(self._window_metadata(window))
                targets.append(target[window.start : window.start + length])
        return np.stack(metas), np.stack(targets)

    def fit(self, records: Sequence[DriveTestRecord], epochs: Optional[int] = None, **kwargs) -> None:
        self._fit_normalizers(records)
        metas, targets = self._training_items(records)
        self.metadata_model.fit(metas)
        n_meta = metas.shape[1]
        n_ch = self.kpi_spec.n_channels
        self.generator = _DGGenerator(n_meta, self.n_noise, self.hidden, n_ch, self.rng)
        self.discriminator = _DGDiscriminator(n_meta, n_ch, self.hidden, self.rng)
        g_opt = nn.Adam(self.generator.parameters(), lr=self.lr)
        d_opt = nn.Adam(self.discriminator.parameters(), lr=self.lr)
        n = len(metas)
        length = targets.shape[1]
        for _ in range(epochs or self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.minibatch):
                idx = order[start : start + self.minibatch]
                meta_b, target_b = metas[idx], targets[idx]
                # --- discriminator step
                with nn.no_grad():
                    fake = self.generator(meta_b, length).numpy()
                d_loss = nn.discriminator_loss(
                    self.discriminator(Tensor(target_b), meta_b),
                    self.discriminator(Tensor(fake), meta_b),
                )
                d_opt.zero_grad()
                d_loss.backward()
                d_opt.step()
                # --- generator step
                fake_t = self.generator(meta_b, length)
                adv = nn.generator_adversarial_loss(
                    self.discriminator(fake_t, meta_b)
                )
                if self.real_context:
                    # The optimized variant is trained against the paired
                    # real series (context-conditional regression + GAN).
                    loss = nn.mse_loss(fake_t, Tensor(target_b)) + self.lambda_adv * adv
                else:
                    # Original DG has no pairing: adversarial signal only.
                    loss = adv
                g_opt.zero_grad()
                loss.backward()
                g_opt.step()

    # ------------------------------------------------------------------
    def generate(self, trajectory: Trajectory) -> np.ndarray:
        if self.generator is None:
            raise RuntimeError("fit before generate")
        length = min(self.window_len, len(trajectory))
        windows = self.context.windows_for_trajectory(
            trajectory, length=length, step=length
        )
        out = np.empty((len(trajectory), self.kpi_spec.n_channels))
        with nn.no_grad():
            for window in windows:
                if self.real_context:
                    meta = self._window_metadata(window)[None]
                else:
                    meta = self.metadata_model.sample(1, self.rng)
                series = self.generator(meta, window.length).numpy()[0]
                out[window.start : window.start + window.length] = series
        return self.clip(self.target_normalizer.denormalize(out))
