"""MLP regression baseline (paper §5.2).

Per-timestep regression from the flat context encoding to the KPI vector.
No temporal modeling, no stochasticity — the paper's simple-minded
context-only baseline.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..geo.trajectory import Trajectory
from ..radio.simulator import DriveTestRecord
from ..world.region import Region
from .base import BaselineModel, ContextEncodingMixin


class MLPBaseline(ContextEncodingMixin, BaselineModel):
    """Pointwise context -> KPI regression with a 3-layer MLP."""

    name = "mlp"

    def __init__(
        self,
        region: Region,
        kpis: Sequence = ("rsrp", "rsrq"),
        hidden: Sequence[int] = (64, 64),
        max_cells: int = 8,
        seed: int = 0,
        lr: float = 1e-3,
        epochs: int = 40,
        minibatch: int = 256,
    ) -> None:
        self._init_context(region, kpis, max_cells, seed)
        self.hidden = tuple(hidden)
        self.lr = lr
        self.epochs = epochs
        self.minibatch = minibatch
        self.net: Optional[nn.MLP] = None

    def fit(self, records: Sequence[DriveTestRecord], epochs: Optional[int] = None, **kwargs) -> None:
        self._fit_normalizers(records)
        features = []
        targets = []
        for record in records:
            features.append(self.trajectory_features(record.trajectory))
            targets.append(
                self.target_normalizer.normalize(record.kpi_matrix(self.kpi_names))
            )
        x = np.concatenate(features)
        y = np.concatenate(targets)
        self.net = nn.MLP(
            x.shape[1], list(self.hidden), y.shape[1], self.rng
        )
        optimizer = nn.Adam(self.net.parameters(), lr=self.lr)
        n = len(x)
        for _ in range(epochs or self.epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, self.minibatch):
                idx = order[start : start + self.minibatch]
                pred = self.net(nn.Tensor(x[idx]))
                loss = nn.mse_loss(pred, nn.Tensor(y[idx]))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def generate(self, trajectory: Trajectory) -> np.ndarray:
        if self.net is None:
            raise RuntimeError("fit before generate")
        x = self.trajectory_features(trajectory)
        with nn.no_grad():
            pred = self.net(nn.Tensor(x)).numpy()
        return self.clip(self.target_normalizer.denormalize(pred))
