"""Fit-Distribution-and-Sample baseline (paper §5.2).

Per KPI, fits a parametric distribution to the training data by maximum
likelihood (trying a small family and keeping the best log-likelihood), then
generates by i.i.d. sampling — ignoring both context and temporal structure.
As the paper notes, it can do well on HWD but is poor on MAE/DTW, and fails
even on HWD when the test distribution differs from training (§6.1.3).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from ..geo.trajectory import Trajectory
from ..radio.kpis import KPI, KpiSpec
from ..radio.simulator import DriveTestRecord
from .base import BaselineModel

logger = logging.getLogger(__name__)

#: Candidate scipy distributions tried during the MLE fit.
_CANDIDATES = ("norm", "logistic", "gumbel_l", "gumbel_r")


@dataclass
class FittedDistribution:
    """Best-by-likelihood distribution for one KPI."""

    dist_name: str
    params: Tuple[float, ...]
    log_likelihood: float

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        dist = getattr(stats, self.dist_name)
        return dist.rvs(*self.params, size=n, random_state=rng)


def fit_best_distribution(values: np.ndarray) -> FittedDistribution:
    """MLE over the candidate family; returns the highest-likelihood fit."""
    values = np.asarray(values, dtype=float).ravel()
    if len(values) < 10:
        raise ValueError("too few samples to fit a distribution")
    best: Optional[FittedDistribution] = None
    for name in _CANDIDATES:
        dist = getattr(stats, name)
        try:
            params = dist.fit(values)
            ll = float(np.sum(dist.logpdf(values, *params)))
        except (ValueError, RuntimeError, FloatingPointError, OverflowError) as exc:
            # A candidate may legitimately fail to converge (scipy raises
            # FitError, a RuntimeError, or ValueError on bad MLE starts);
            # record why and move to the next family.
            logger.debug("candidate %s failed to fit: %s", name, exc)
            continue
        if np.isfinite(ll) and (best is None or ll > best.log_likelihood):
            best = FittedDistribution(name, tuple(params), ll)
    if best is None:
        raise RuntimeError("no candidate distribution could be fit")
    return best


class FDaS(BaselineModel):
    """Fit-distribution-and-sample for each KPI channel independently."""

    name = "fdas"

    def __init__(self, kpis: Sequence = ("rsrp", "rsrq"), seed: int = 0) -> None:
        self.kpi_spec = KpiSpec([KPI(k) for k in kpis])
        self.rng = np.random.default_rng(seed)
        self.fits: Dict[str, FittedDistribution] = {}

    @property
    def kpi_names(self) -> List[str]:
        return self.kpi_spec.names()

    def fit(self, records: Sequence[DriveTestRecord], **kwargs) -> None:
        stacked = np.concatenate([r.kpi_matrix(self.kpi_names) for r in records])
        for idx, name in enumerate(self.kpi_names):
            self.fits[name] = fit_best_distribution(stacked[:, idx])

    def reseed(self, seed: int) -> None:
        """Reset the sampling RNG.

        The serving runner (:class:`repro.serving.CampaignRunner`) calls
        this before a seeded campaign so FDaS-rung fallbacks are
        byte-identical across re-runs; the fitted distributions are
        untouched.
        """
        self.rng = np.random.default_rng(seed)

    def generate(self, trajectory: Trajectory) -> np.ndarray:
        if not self.fits:
            raise RuntimeError("fit before generate")
        n = len(trajectory)
        series = np.column_stack(
            [self.fits[name].sample(n, self.rng) for name in self.kpi_names]
        )
        return self.kpi_spec.clip(series)
