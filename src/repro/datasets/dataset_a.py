"""Synthetic equivalent of the paper's Dataset A.

The original: first-hand Nemo Handy measurements at 1 s granularity in and
around one city centre, under three mobility scenarios — walking (1.4 m/s),
bus (5.6 m/s), tram (11.5 m/s) — roughly 14-15 k samples each (paper
Table 1), with iPerf3 throughput/PER collected alongside (used by the QoE
use case).

Ours: one dense synthetic city, routes random-walked over its street grid at
the same speeds and sampling interval, KPIs from the calibrated drive-test
simulator, QoE ground truth attached to every record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..geo.routes import CitySpec
from ..radio.simulator import DriveTestSimulator
from ..world.region import build_region
from .base import DriveTestDataset


@dataclass(frozen=True)
class ScenarioASpec:
    """One Dataset-A mobility scenario."""

    name: str
    speed_mps: float
    interval_s: float
    samples_target: int


#: Paper Table 1 scenario parameters (sample counts are the paper's).
DATASET_A_SCENARIOS = (
    ScenarioASpec("walk", 1.4, 1.0, 15245),
    ScenarioASpec("bus", 5.6, 1.0, 13890),
    ScenarioASpec("tram", 11.5, 1.0, 14198),
)


def make_dataset_a(
    seed: int = 7,
    samples_per_scenario: Optional[int] = None,
    trajectories_per_scenario: int = 4,
    with_qoe: bool = True,
) -> DriveTestDataset:
    """Build the synthetic Dataset A.

    Args:
        seed: master seed; the whole dataset is deterministic given it.
        samples_per_scenario: total measurement samples per scenario.
            Defaults to the paper's counts (Table 1); pass a smaller number
            for fast tests.
        trajectories_per_scenario: how many independent routes the samples
            are spread over (the split needs >= 2 to hold out a route).
        with_qoe: attach throughput/PER ground truth (Dataset A has it).
    """
    rng = np.random.default_rng(seed)
    city = CitySpec("cityA", 51.50, -0.12, half_extent_m=2000.0, street_spacing_m=250.0)
    region = build_region([city], rng, city_site_density_per_km2=7.0)
    simulator = DriveTestSimulator(region, candidate_range_m=2500.0)

    dataset = DriveTestDataset(name="dataset_a", region=region, simulator=simulator)
    for spec in DATASET_A_SCENARIOS:
        total = samples_per_scenario or spec.samples_target
        per_traj = max(30, total // trajectories_per_scenario)
        for _ in range(trajectories_per_scenario):
            # Route long enough to yield per_traj samples at this speed.
            length_m = per_traj * spec.interval_s * spec.speed_mps * 1.05
            route = region.roads.random_walk_route(rng, length_m, city="cityA")
            trajectory = region.roads.route_to_trajectory(
                route, spec.speed_mps, spec.interval_s, scenario=spec.name, rng=rng
            )
            if len(trajectory) > per_traj:
                trajectory = trajectory.slice(0, per_traj)
            record = simulator.simulate(trajectory, rng, with_qoe=with_qoe)
            dataset.records.append(record)
    return dataset
