"""MDT / crowdsourcing measurement substitutes (paper §1, §7.2).

The paper motivates GenDT against two user-device-based alternatives it
could not compare with for lack of data:

* **MDT** (minimization of drive tests): measurements from consenting user
  devices — spatially *skewed* toward where participating users happen to
  be, and sparse where they are not;
* **crowdsourcing** (OpenSignal-style apps): limited by OS APIs to coarse
  signal-strength sampling at low and irregular rates.

This module synthesizes both from the same radio substrate, so the
coverage-map use case can quantify the sparsity/skew problems the paper
cites (Shodamola et al.) and compare them with GenDT-generated data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geo.trajectory import Trajectory
from ..radio.simulator import DriveTestRecord, DriveTestSimulator
from ..world.region import Region


@dataclass
class SparseMeasurements:
    """Point samples of a KPI with locations: the MDT/crowdsourcing output."""

    lat: np.ndarray
    lon: np.ndarray
    value: np.ndarray
    kpi: str = "rsrp"

    def __len__(self) -> int:
        return len(self.value)

    def concat(self, other: "SparseMeasurements") -> "SparseMeasurements":
        if other.kpi != self.kpi:
            raise ValueError("cannot concatenate different KPIs")
        return SparseMeasurements(
            np.concatenate([self.lat, other.lat]),
            np.concatenate([self.lon, other.lon]),
            np.concatenate([self.value, other.value]),
            self.kpi,
        )


def mdt_campaign(
    region: Region,
    rng: np.random.Generator,
    n_users: int = 20,
    report_period_s: float = 10.0,
    participation: float = 0.3,
    hotspot_bias: float = 0.7,
    kpi: str = "rsrp",
) -> SparseMeasurements:
    """Synthesize an MDT collection round.

    Each simulated user walks/drives a short route; only a ``participation``
    fraction consents to reporting, and consenting users are biased toward
    the urban core with probability ``hotspot_bias`` (the spatial-skew
    problem): MDT density follows people, not measurement need.
    """
    simulator = DriveTestSimulator(region, candidate_range_m=3000.0)
    city_names = [c.name for c in region.cities]
    lats: List[np.ndarray] = []
    lons: List[np.ndarray] = []
    values: List[np.ndarray] = []
    for _ in range(n_users):
        if rng.random() > participation:
            continue
        # Spatially skewed start: hotspot users cluster in the first city.
        city = city_names[0] if rng.random() < hotspot_bias else city_names[
            int(rng.integers(len(city_names)))
        ]
        speed = float(rng.uniform(1.0, 15.0))
        length_m = float(rng.uniform(300.0, 1500.0))
        route = region.roads.random_walk_route(rng, length_m, city=city)
        trajectory = region.roads.route_to_trajectory(
            route, speed, 1.0, scenario="mdt", rng=rng
        )
        if len(trajectory) < 3:
            continue
        record = simulator.simulate(trajectory, rng)
        # Devices report at the MDT periodicity, not every second.
        stride = max(1, int(round(report_period_s / trajectory.sample_interval_s)))
        idx = np.arange(0, len(trajectory), stride)
        lats.append(trajectory.lat[idx])
        lons.append(trajectory.lon[idx])
        values.append(record.kpi[kpi][idx])
    if not values:
        return SparseMeasurements(np.zeros(0), np.zeros(0), np.zeros(0), kpi)
    return SparseMeasurements(
        np.concatenate(lats), np.concatenate(lons), np.concatenate(values), kpi
    )


def crowdsourced_campaign(
    region: Region,
    rng: np.random.Generator,
    n_users: int = 40,
    report_period_s: float = 30.0,
    quantization_db: float = 2.0,
    kpi: str = "rsrp",
) -> SparseMeasurements:
    """Synthesize a crowdsourced (OpenSignal-style) collection round.

    Coarser: long reporting periods (app wake-ups) and quantized readings
    (OS API granularity), but broader user spread than MDT.
    """
    raw = mdt_campaign(
        region, rng,
        n_users=n_users, report_period_s=report_period_s,
        participation=0.8, hotspot_bias=0.3, kpi=kpi,
    )
    quantized = np.round(raw.value / quantization_db) * quantization_db
    return SparseMeasurements(raw.lat, raw.lon, quantized, kpi)


@dataclass
class CoverageMap:
    """Gridded KPI map over a region (the coverage-mapping use case)."""

    frame_origin: Tuple[float, float]
    x_edges: np.ndarray
    y_edges: np.ndarray
    mean: np.ndarray       #: [rows, cols], NaN where no data
    counts: np.ndarray

    @property
    def fill_fraction(self) -> float:
        """Fraction of grid pixels with at least one sample."""
        return float((self.counts > 0).mean())

    def error_vs(self, other: "CoverageMap") -> float:
        """Mean |difference| over pixels both maps cover."""
        both = (self.counts > 0) & (other.counts > 0)
        if not both.any():
            return float("inf")
        return float(np.abs(self.mean[both] - other.mean[both]).mean())


def build_coverage_map(
    region: Region,
    measurements: SparseMeasurements,
    pixel_m: float = 200.0,
    extent_m: float = 2500.0,
) -> CoverageMap:
    """Bin sparse measurements into a mean-KPI grid around the region origin."""
    frame = region.frame
    x, y = frame.to_xy(measurements.lat, measurements.lon)
    edges = np.arange(-extent_m, extent_m + pixel_m, pixel_m)
    n = len(edges) - 1
    sums = np.zeros((n, n))
    counts = np.zeros((n, n))
    xi = np.clip(np.digitize(x, edges) - 1, 0, n - 1)
    yi = np.clip(np.digitize(y, edges) - 1, 0, n - 1)
    inside = (x >= -extent_m) & (x < extent_m) & (y >= -extent_m) & (y < extent_m)
    np.add.at(sums, (yi[inside], xi[inside]), measurements.value[inside])
    np.add.at(counts, (yi[inside], xi[inside]), 1.0)
    with np.errstate(invalid="ignore"):
        mean = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return CoverageMap(
        frame_origin=(frame.lat0, frame.lon0),
        x_edges=edges, y_edges=edges, mean=mean, counts=counts,
    )


def gendt_coverage_measurements(
    model,
    region: Region,
    rng: np.random.Generator,
    n_routes: int = 12,
    route_length_m: float = 1500.0,
    kpi: str = "rsrp",
) -> SparseMeasurements:
    """Generate GenDT pseudo-measurements over systematic routes.

    Unlike MDT, the operator *chooses* the routes, so coverage is uniform —
    the generative model removes the dependence on where users happen to be.
    """
    kpi_idx = model.kpi_names.index(kpi)
    city_names = [c.name for c in region.cities]
    lats: List[np.ndarray] = []
    lons: List[np.ndarray] = []
    values: List[np.ndarray] = []
    for k in range(n_routes):
        city = city_names[k % len(city_names)]
        route = region.roads.random_walk_route(rng, route_length_m, city=city)
        trajectory = region.roads.route_to_trajectory(
            route, 8.0, 2.0, scenario="gendt_map", rng=rng
        )
        if len(trajectory) < 3:
            continue
        series = model.generate(trajectory)
        lats.append(trajectory.lat)
        lons.append(trajectory.lon)
        values.append(series[:, kpi_idx])
    return SparseMeasurements(
        np.concatenate(lats), np.concatenate(lons), np.concatenate(values), kpi
    )
