"""Dataset summary statistics (paper Tables 1 & 2).

Computes, per scenario: time granularity, average velocity, average dwell
time at each serving cell, mean/std of RSRP and RSRQ, rate of change (ROC —
mean absolute first derivative, reported for Dataset B), and sample counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..radio.association import cell_dwell_times
from ..radio.simulator import DriveTestRecord


@dataclass
class ScenarioStats:
    """Table 1/2 row for one scenario."""

    scenario: str
    time_granularity_s: float
    avg_velocity_mps: float
    avg_cell_dwell_s: float
    avg_rsrp_dbm: float
    std_rsrp_dbm: float
    roc_rsrp: float
    avg_rsrq_db: float
    std_rsrq_db: float
    roc_rsrq: float
    n_samples: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "scenario": self.scenario,
            "granularity_s": round(self.time_granularity_s, 2),
            "velocity_mps": round(self.avg_velocity_mps, 2),
            "cell_dwell_s": round(self.avg_cell_dwell_s, 2),
            "rsrp_mean": round(self.avg_rsrp_dbm, 1),
            "rsrp_std": round(self.std_rsrp_dbm, 1),
            "rsrp_roc": round(self.roc_rsrp, 2),
            "rsrq_mean": round(self.avg_rsrq_db, 1),
            "rsrq_std": round(self.std_rsrq_db, 1),
            "rsrq_roc": round(self.roc_rsrq, 2),
            "samples": self.n_samples,
        }


def scenario_stats(scenario: str, records: Sequence[DriveTestRecord]) -> ScenarioStats:
    """Aggregate the Table 1/2 statistics over a scenario's records."""
    if not records:
        raise ValueError("no records for scenario")
    rsrp = np.concatenate([r.kpi["rsrp"] for r in records])
    rsrq = np.concatenate([r.kpi["rsrq"] for r in records])
    granularity = float(np.mean([r.trajectory.sample_interval_s for r in records]))
    velocity = float(np.mean([r.trajectory.average_speed_mps() for r in records]))
    dwell = np.concatenate(
        [cell_dwell_times(r.serving_cell_id, r.trajectory.t) for r in records]
    )
    roc_rsrp = float(np.mean([np.mean(np.abs(np.diff(r.kpi["rsrp"]))) for r in records]))
    roc_rsrq = float(np.mean([np.mean(np.abs(np.diff(r.kpi["rsrq"]))) for r in records]))
    return ScenarioStats(
        scenario=scenario,
        time_granularity_s=granularity,
        avg_velocity_mps=velocity,
        avg_cell_dwell_s=float(dwell.mean()),
        avg_rsrp_dbm=float(rsrp.mean()),
        std_rsrp_dbm=float(rsrp.std()),
        roc_rsrp=roc_rsrp,
        avg_rsrq_db=float(rsrq.mean()),
        std_rsrq_db=float(rsrq.std()),
        roc_rsrq=roc_rsrq,
        n_samples=int(sum(len(r) for r in records)),
    )


def dataset_stats(records_by_scenario: Dict[str, Sequence[DriveTestRecord]]) -> List[ScenarioStats]:
    """Stats rows for every scenario (Tables 1 & 2)."""
    return [scenario_stats(name, recs) for name, recs in records_by_scenario.items()]
