"""Synthetic drive-test datasets replacing the paper's measurement data."""

from .base import DatasetSplit, DriveTestDataset, split_by_geography, split_per_scenario
from .dataset_a import DATASET_A_SCENARIOS, ScenarioASpec, make_dataset_a
from .dataset_b import (
    DATASET_B_CITIES,
    DATASET_B_SCENARIOS,
    ScenarioBSpec,
    build_region_b,
    make_active_learning_subsets,
    make_dataset_b,
    make_long_trajectory,
)
from .stats import ScenarioStats, dataset_stats, scenario_stats
from .mdt import (
    CoverageMap,
    SparseMeasurements,
    build_coverage_map,
    crowdsourced_campaign,
    gendt_coverage_measurements,
    mdt_campaign,
)

__all__ = [
    "DriveTestDataset",
    "DatasetSplit",
    "split_by_geography",
    "split_per_scenario",
    "make_dataset_a",
    "ScenarioASpec",
    "DATASET_A_SCENARIOS",
    "make_dataset_b",
    "ScenarioBSpec",
    "DATASET_B_SCENARIOS",
    "DATASET_B_CITIES",
    "build_region_b",
    "make_long_trajectory",
    "make_active_learning_subsets",
    "ScenarioStats",
    "scenario_stats",
    "dataset_stats",
    "SparseMeasurements",
    "mdt_campaign",
    "crowdsourced_campaign",
    "CoverageMap",
    "build_coverage_map",
    "gendt_coverage_measurements",
]
