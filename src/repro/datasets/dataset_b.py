"""Synthetic equivalent of the paper's Dataset B.

The original: the public CNI Dortmund-area dataset (Sliwa et al.), collected
with an Android app on OnePlus 8 phones at coarser, chipset-dependent
granularity (~2-4 s), spanning several cities connected by highways.  Four
scenarios: two city-driving and two highway (paper Table 2).  Only RSRP and
RSRQ are usable in the original (which is why the paper's Dataset-B tables
report only those KPIs).

Ours: a four-city synthetic region joined by highways; city-driving routes
random-walk each city's grid, highway routes follow the inter-city links.
The ``long trajectory`` of paper §6.1.3 — ~2230 s across three cities,
mixing inner-city and highway driving — is built by
:func:`make_long_trajectory`.  :func:`make_active_learning_subsets` yields
the 23 geographically disjoint subsets used by the §6.2 measurement
efficiency study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..geo.routes import CitySpec
from ..geo.trajectory import Trajectory
from ..radio.simulator import DriveTestRecord, DriveTestSimulator
from ..world.region import Region, build_region
from .base import DriveTestDataset


@dataclass(frozen=True)
class ScenarioBSpec:
    """One Dataset-B driving scenario."""

    name: str
    city: Optional[str]  # None => highway between cities
    speed_mps: float
    interval_s: float
    samples_target: int


#: Paper Table 2 scenario parameters.
DATASET_B_SCENARIOS = (
    ScenarioBSpec("city_driving_1", "nordstadt", 9.1, 3.8, 21000),
    ScenarioBSpec("city_driving_2", "suedstadt", 9.8, 3.5, 23000),
    ScenarioBSpec("highway_1", None, 26.7, 2.1, 39000),
    ScenarioBSpec("highway_2", None, 31.1, 2.3, 46000),
)

#: City layout: four cities in a rough line, highway-connected.
DATASET_B_CITIES = (
    CitySpec("nordstadt", 51.51, 7.46, half_extent_m=1800.0, street_spacing_m=260.0),
    CitySpec("suedstadt", 51.47, 7.55, half_extent_m=1800.0, street_spacing_m=260.0),
    CitySpec("weststadt", 51.43, 7.64, half_extent_m=1500.0, street_spacing_m=280.0),
    CitySpec("oststadt", 51.39, 7.73, half_extent_m=1500.0, street_spacing_m=280.0),
)


def build_region_b(seed: int = 11) -> Region:
    """The shared Dataset-B region (used by dataset, long trajectory, subsets)."""
    rng = np.random.default_rng(seed)
    return build_region(
        list(DATASET_B_CITIES),
        rng,
        city_site_density_per_km2=5.0,
        highway_site_spacing_m=1800.0,
        land_use_pixel_m=150.0,
    )


def make_dataset_b(
    seed: int = 11,
    samples_per_scenario: Optional[int] = None,
    trajectories_per_scenario: int = 4,
    region: Optional[Region] = None,
) -> DriveTestDataset:
    """Build the synthetic Dataset B (see module docstring)."""
    rng = np.random.default_rng(seed + 1)
    region = region or build_region_b(seed)
    simulator = DriveTestSimulator(region, candidate_range_m=4500.0)
    dataset = DriveTestDataset(name="dataset_b", region=region, simulator=simulator)

    highway_pairs = [("nordstadt", "suedstadt"), ("suedstadt", "weststadt"),
                     ("weststadt", "oststadt")]
    for spec in DATASET_B_SCENARIOS:
        total = samples_per_scenario or spec.samples_target
        per_traj = max(30, total // trajectories_per_scenario)
        for k in range(trajectories_per_scenario):
            if spec.city is not None:
                length_m = per_traj * spec.interval_s * spec.speed_mps * 1.05
                route = region.roads.random_walk_route(rng, length_m, city=spec.city)
            else:
                a, b = highway_pairs[k % len(highway_pairs)]
                route = region.roads.intercity_route(a, b, rng, city_detour_m=400.0)
            trajectory = region.roads.route_to_trajectory(
                route, spec.speed_mps, spec.interval_s, scenario=spec.name, rng=rng
            )
            if len(trajectory) > per_traj:
                trajectory = trajectory.slice(0, per_traj)
            record = simulator.simulate(trajectory, rng)
            dataset.records.append(record)
    return dataset


def make_long_trajectory(
    region: Region,
    seed: int = 23,
    interval_s: float = 2.5,
    target_duration_s: float = 2230.0,
) -> Trajectory:
    """The §6.1.3 long & complex trajectory: three cities + highway legs.

    City segments drive at city speed, highway legs at highway speed; the
    result is one continuous multi-scenario trajectory of roughly the
    paper's 2230 s duration.
    """
    rng = np.random.default_rng(seed)
    legs: List[Trajectory] = []
    cities = ["nordstadt", "suedstadt", "weststadt"]
    trajectory: Optional[Trajectory] = None
    for a, b in zip(cities[:-1], cities[1:]):
        route = region.roads.intercity_route(a, b, rng, city_detour_m=900.0)
        leg = region.roads.route_to_trajectory(
            route, speed_mps=18.0, interval_s=interval_s, scenario="long_complex", rng=rng
        )
        trajectory = leg if trajectory is None else trajectory.concat(leg)
    assert trajectory is not None
    max_samples = int(target_duration_s / interval_s)
    if len(trajectory) > max_samples:
        trajectory = trajectory.slice(0, max_samples)
    return trajectory


def make_active_learning_subsets(
    region: Region,
    seed: int = 31,
    n_subsets: int = 23,
    samples_per_subset: int = 400,
    interval_s: float = 3.0,
) -> List[DriveTestRecord]:
    """Geographically disjoint measurement subsets for the §6.2 study.

    Each subset is one record anchored at a distinct start node spread over
    the whole region (cities round-robin), so subsets differ in the scenario
    mix and environment they cover.
    """
    rng = np.random.default_rng(seed)
    simulator = DriveTestSimulator(region, candidate_range_m=4500.0)
    city_names = [c.name for c in region.cities]
    records: List[DriveTestRecord] = []
    for k in range(n_subsets):
        city = city_names[k % len(city_names)]
        speed = 9.0 if k % 3 else 22.0
        length_m = samples_per_subset * interval_s * speed * 1.1
        if k % 3 == 0 and len(city_names) > 1:
            other = city_names[(k // 3 + 1) % len(city_names)]
            if other != city:
                route = region.roads.intercity_route(city, other, rng, city_detour_m=300.0)
            else:
                route = region.roads.random_walk_route(rng, length_m, city=city)
        else:
            route = region.roads.random_walk_route(rng, length_m, city=city)
        trajectory = region.roads.route_to_trajectory(
            route, speed, interval_s, scenario=f"subset_{k}", rng=rng
        )
        if len(trajectory) > samples_per_subset:
            trajectory = trajectory.slice(0, samples_per_subset)
        records.append(simulator.simulate(trajectory, rng))
    return records
