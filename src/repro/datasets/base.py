"""Dataset containers and geographic splitting.

A :class:`DriveTestDataset` bundles a region, its simulator, and the
measurement records of a campaign, grouped by scenario.  Splitting follows
the paper's protocol (§6.1): train and test are non-overlapping **and**
geographically separated — a test trajectory must keep a minimum distance
from every training trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..radio.simulator import DriveTestRecord, DriveTestSimulator
from ..world.region import Region


@dataclass
class DriveTestDataset:
    """A measurement campaign over one region."""

    name: str
    region: Region
    simulator: DriveTestSimulator
    records: List[DriveTestRecord] = field(default_factory=list)

    def scenarios(self) -> List[str]:
        """Distinct scenario tags, in first-appearance order."""
        seen: List[str] = []
        for record in self.records:
            if record.scenario not in seen:
                seen.append(record.scenario)
        return seen

    def by_scenario(self, scenario: str) -> List[DriveTestRecord]:
        return [r for r in self.records if r.scenario == scenario]

    def total_samples(self) -> int:
        return sum(len(r) for r in self.records)

    def kpi_names(self) -> List[str]:
        return list(self.records[0].kpi.keys()) if self.records else []


@dataclass
class DatasetSplit:
    """Train/test partition of a dataset's records."""

    train: List[DriveTestRecord]
    test: List[DriveTestRecord]

    def summary(self) -> str:
        return (
            f"train: {len(self.train)} records / {sum(len(r) for r in self.train)} samples; "
            f"test: {len(self.test)} records / {sum(len(r) for r in self.test)} samples"
        )


def split_by_geography(
    records: Sequence[DriveTestRecord],
    test_fraction: float,
    min_distance_m: float,
    rng: np.random.Generator,
) -> DatasetSplit:
    """Greedy geographic split: test records keep their distance from train.

    Candidate test records are drawn at random; a candidate is accepted only
    if its trajectory stays at least ``min_distance_m`` from every remaining
    training trajectory.  Records that cannot satisfy the constraint stay in
    the training set, so the achieved test fraction may undershoot the
    request (never overshoot).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    records = list(records)
    n_test_target = max(1, int(round(test_fraction * len(records))))
    order = rng.permutation(len(records))
    test_idx: List[int] = []
    for idx in order:
        if len(test_idx) >= n_test_target:
            break
        candidate = records[idx]
        train_pool = [records[i] for i in range(len(records)) if i != idx and i not in test_idx]
        if all(
            candidate.trajectory.min_distance_to(other.trajectory) >= min_distance_m
            for other in train_pool
        ):
            test_idx.append(int(idx))
    if not test_idx:
        # Fall back: take the single most isolated record as test.
        isolation = []
        for i, rec in enumerate(records):
            dists = [
                rec.trajectory.min_distance_to(other.trajectory)
                for j, other in enumerate(records)
                if j != i
            ]
            isolation.append(min(dists) if dists else np.inf)
        test_idx = [int(np.argmax(isolation))]
    train = [r for i, r in enumerate(records) if i not in test_idx]
    test = [records[i] for i in test_idx]
    return DatasetSplit(train=train, test=test)


def split_per_scenario(
    dataset: DriveTestDataset,
    test_fraction: float,
    min_distance_m: float,
    rng: np.random.Generator,
) -> DatasetSplit:
    """Geographic split applied independently within each scenario.

    Guarantees every scenario appears in both halves (the paper evaluates
    per-scenario on the test set while training one model on all scenarios).
    """
    train: List[DriveTestRecord] = []
    test: List[DriveTestRecord] = []
    for scenario in dataset.scenarios():
        subset = dataset.by_scenario(scenario)
        if len(subset) == 1:
            train.extend(subset)
            continue
        split = split_by_geography(subset, test_fraction, min_distance_m, rng)
        train.extend(split.train)
        test.extend(split.test)
    return DatasetSplit(train=train, test=test)
