"""Paper Tables 5 & 6: fidelity on Dataset B.

Table 5: per-scenario RSRP fidelity (two city-driving, two highway cases);
Table 6: the scenario-averaged RSRP + RSRQ table.  Shape targets mirror
Dataset A: GenDT leads on temporal metrics; RSRQ gains are smaller than
RSRP gains (the paper attributes this to RSRQ's narrow, stable range).
"""

import numpy as np
import pytest

from repro.eval import average_rows, fidelity_rows, format_table, ranking

from conftest import KPIS_B, record_result


def test_table05_dataset_b_rsrp(benchmark, bench_results_b, bench_methods_b, bench_split_b):
    scenarios = ["city_driving_1", "city_driving_2", "highway_1", "highway_2"]
    headers, rows = fidelity_rows(bench_results_b, "rsrp", scenarios)
    table = format_table(
        headers, rows, title="Table 5: RSRP fidelity per scenario, Dataset B"
    )
    record_result("table05_dataset_b_rsrp", table)

    assert ranking(bench_results_b, "rsrp", "dtw")[0] == "GenDT"
    best_mae = min(
        bench_results_b[m].average("rsrp", "mae") for m in bench_results_b
    )
    assert bench_results_b["GenDT"].average("rsrp", "mae") <= best_mae * 1.3

    traj = bench_split_b.test[0].trajectory
    benchmark(lambda: bench_methods_b["GenDT"](traj))


def test_table06_dataset_b_average(benchmark, bench_results_b, bench_methods_b, bench_split_b):
    headers, rows = average_rows(bench_results_b, KPIS_B)
    table = format_table(
        headers, rows,
        title="Table 6: average fidelity across scenarios, Dataset B (RSRP, RSRQ)",
    )
    record_result("table06_dataset_b_average", table)

    # GenDT leads the temporal-shape metric; LSTM-GNN (pure prediction
    # model) is clearly behind it there, as in the paper.
    dtw_rank = ranking(bench_results_b, "rsrp", "dtw")
    assert dtw_rank[0] == "GenDT"
    assert dtw_rank.index("GenDT") < dtw_rank.index("LSTM-GNN")
    best_mae = min(
        bench_results_b[m].average("rsrp", "mae") for m in bench_results_b
    )
    assert bench_results_b["GenDT"].average("rsrp", "mae") <= best_mae * 1.3

    traj = bench_split_b.test[0].trajectory
    benchmark(lambda: bench_methods_b["Real Cont. DG"](traj))
