"""Paper Figure 18: sample generated RSRP series, GenDT vs Real-Context DG.

Renders one walk-scenario test trajectory's real RSRP series against the two
methods' generated series.  The paper's point: GenDT's GNN handles the
dynamic network context and tracks the real series; Real-Context DG, with
its static per-window context, does not.
"""

import numpy as np
import pytest

from repro.eval import ascii_plot
from repro.metrics import evaluate_series

from conftest import record_result


def test_fig18_sample_series(benchmark, bench_methods_a, bench_split_a):
    walk_records = [r for r in bench_split_a.test if r.scenario == "walk"]
    record = walk_records[0] if walk_records else bench_split_a.test[0]
    window = slice(0, min(180, len(record)))

    real = record.kpi["rsrp"][window]
    gendt = bench_methods_a["GenDT"](record.trajectory)[window, 0]
    real_dg = bench_methods_a["Real Cont. DG"](record.trajectory)[window, 0]

    figure = ascii_plot(
        {"real": real, "GenDT": gendt, "RealCtxDG": real_dg},
        width=72, height=14,
        title="Figure 18: generated RSRP sample (walk scenario)",
    )
    gendt_metrics = evaluate_series(real, gendt)
    dg_metrics = evaluate_series(real, real_dg)
    summary = (
        f"GenDT      mae={gendt_metrics['mae']:.2f} dtw={gendt_metrics['dtw']:.2f}\n"
        f"RealCtxDG  mae={dg_metrics['mae']:.2f} dtw={dg_metrics['dtw']:.2f}"
    )
    record_result("fig18_sample_series", figure + "\n\n" + summary)

    # GenDT tracks the real series at least as well as Real-Context DG.
    assert gendt_metrics["dtw"] <= dg_metrics["dtw"] * 1.1

    benchmark(lambda: bench_methods_a["GenDT"](record.trajectory))
