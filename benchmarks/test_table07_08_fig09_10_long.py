"""Paper Table 7, Table 8, Figures 9 & 10: the long & complex trajectory.

A held-out multi-city trajectory mixing inner-city and highway driving.

* Table 7: all methods' fidelity over the long trajectory.
* Fig. 9: GenDT's min/max generation envelope covers the ground truth and
  the pooled histogram matches.
* Table 8 / Fig. 10: generating the trajectory by stitching independent
  short (50 s / 100 s) generations degrades fidelity (distribution seams),
  demonstrating the need for long-series generation with carried state.
"""

import numpy as np
import pytest

from repro.eval import (
    GenerationEnvelope,
    ascii_plot,
    compare_methods,
    format_table,
    ranking,
    stitched_generation,
)
from repro.metrics import evaluate_series, hwd

from conftest import KPIS_B, record_result


@pytest.fixture(scope="module")
def long_results(bench_methods_b, bench_long_record):
    return compare_methods(
        bench_methods_b, [bench_long_record], KPIS_B, n_generations=2
    )


def test_table07_long_trajectory(benchmark, long_results, bench_methods_b, bench_long_record):
    headers = ["method", "rsrp:mae", "rsrp:dtw", "rsrp:hwd", "rsrq:mae", "rsrq:dtw", "rsrq:hwd"]
    rows = []
    for name, result in long_results.items():
        rows.append(
            [name]
            + [result.average("rsrp", m) for m in ("mae", "dtw", "hwd")]
            + [result.average("rsrq", m) for m in ("mae", "dtw", "hwd")]
        )
    table = format_table(
        headers, rows, title="Table 7: long & complex trajectory, Dataset B"
    )
    record_result("table07_long_trajectory", table)

    # Paper: GenDT best on the long trajectory with only Real-Context DG
    # close.  One divergence from the paper (documented in EXPERIMENTS.md):
    # our synthetic cities share land-use statistics, so the long route's
    # marginal matches the training marginal and FDaS does NOT collapse on
    # HWD here; GenDT must still beat the other generative baselines on it.
    assert ranking(long_results, "rsrp", "dtw")[0] == "GenDT"
    gendt_mae = long_results["GenDT"].average("rsrp", "mae")
    assert gendt_mae < long_results["FDaS"].average("rsrp", "mae")
    gendt_dtw = long_results["GenDT"].average("rsrp", "dtw")
    assert gendt_dtw < long_results["Orig. DG"].average("rsrp", "dtw")
    gendt_hwd = long_results["GenDT"].average("rsrp", "hwd")
    assert gendt_hwd < long_results["Orig. DG"].average("rsrp", "hwd")
    assert gendt_hwd < long_results["LSTM-GNN"].average("rsrp", "hwd")

    traj = bench_long_record.trajectory
    benchmark(lambda: bench_methods_b["GenDT"](traj))


def test_fig09_envelope(benchmark, bench_gendt_b, bench_long_record):
    traj = bench_long_record.trajectory
    real = bench_long_record.kpi["rsrp"]
    samples = bench_gendt_b.generate_samples(traj, 8)[:, :, 0]
    envelope = GenerationEnvelope(real=real, samples=samples)

    lines = [
        "Figure 9a: generated RSRP envelope vs ground truth (long trajectory)",
        ascii_plot(
            {"real": real, "lower": envelope.lower, "upper": envelope.upper},
            width=72, height=12,
        ),
        "",
        f"envelope coverage of ground truth: {envelope.coverage():.2%}",
        f"Figure 9b histogram match (HWD, pooled samples vs real): "
        f"{envelope.histogram_hwd():.2f} dB",
    ]
    record_result("fig09_envelope", "\n".join(lines))

    assert envelope.coverage() > 0.45
    assert envelope.histogram_hwd() < 6.0

    benchmark(lambda: bench_gendt_b.generate(traj))


def test_table08_fig10_stitching(benchmark, bench_gendt_b, bench_long_record):
    traj = bench_long_record.trajectory
    real = bench_long_record.kpi["rsrp"]

    def run_variant(segment_s):
        if segment_s is None:
            gen = bench_gendt_b.generate(traj)
        else:
            gen = stitched_generation(bench_gendt_b.generate, traj, segment_s)
        return gen[:, 0], evaluate_series(real, gen[:, 0])

    gendt_series, gendt_metrics = run_variant(None)
    s50_series, s50_metrics = run_variant(50.0)
    s100_series, s100_metrics = run_variant(100.0)

    rows = [
        ["GenDT (long)", gendt_metrics["mae"], gendt_metrics["dtw"], gendt_metrics["hwd"]],
        ["50s stitched", s50_metrics["mae"], s50_metrics["dtw"], s50_metrics["hwd"]],
        ["100s stitched", s100_metrics["mae"], s100_metrics["dtw"], s100_metrics["hwd"]],
    ]
    table = format_table(
        ["method", "mae", "dtw", "hwd"],
        rows,
        title="Table 8: long-trajectory generation vs short-segment stitching",
    )
    tail = slice(-160, None)
    figure = ascii_plot(
        {"real": real[tail], "GenDT": gendt_series[tail], "50s": s50_series[tail]},
        width=72, height=12,
        title="Figure 10: last part of the long trajectory (stitching artifacts)",
    )
    record_result("table08_fig10_stitching", table + "\n\n" + figure)

    # Paper shape: stitching is worse, most visibly on the distribution.
    assert gendt_metrics["hwd"] <= s50_metrics["hwd"] * 1.2
    assert gendt_metrics["mae"] <= s50_metrics["mae"] * 1.2

    benchmark(lambda: stitched_generation(bench_gendt_b.generate, traj, 100.0))
