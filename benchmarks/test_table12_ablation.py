"""Paper Table 12: ablation of GenDT's design choices on Dataset B.

Variants: full GenDT, no ResGen, no SRNN (stochastic layers), no GAN loss,
no batching (one-shot whole-series training/generation).  Shape targets
from the paper: removing ResGen chiefly hurts HWD (stochasticity is lost);
removing the stochastic layers or the GAN loss degrades the metrics
broadly; one-shot processing hurts the temporal metrics.
"""

import numpy as np
import pytest

from repro.core import GenDT, small_config
from repro.eval import compare_methods, format_table

from conftest import KPIS_B, record_result

VARIANTS = {
    "GenDT": {},
    "No ResGen": {"use_resgen": False},
    "No SRNN": {"use_stochastic_layers": False},
    "No GAN loss": {"lambda_adv": 0.0},
    "No batch": {"batch_len": None},
}


@pytest.fixture(scope="module")
def ablation_setup(bench_dataset_b, bench_split_b):
    region = bench_dataset_b.region
    methods = {}
    models = {}
    for name, overrides in VARIANTS.items():
        base = dict(
            epochs=10, hidden_size=24, batch_len=25, train_step=5,
            minibatch_windows=16, max_cells=6,
        )
        base.update(overrides)
        config = small_config(**base)
        model = GenDT(region, kpis=KPIS_B, config=config, seed=8)
        model.fit(bench_split_b.train)
        models[name] = model
        methods[name] = model.generate
    results = compare_methods(methods, bench_split_b.test, KPIS_B, n_generations=2)
    return models, results


def test_table12_ablation(benchmark, ablation_setup, bench_split_b):
    models, ablation_results = ablation_setup
    headers = ["variant", "rsrp:mae", "rsrp:dtw", "rsrp:hwd", "rsrq:mae", "rsrq:dtw", "rsrq:hwd"]
    rows = []
    for name, result in ablation_results.items():
        rows.append(
            [name]
            + [result.average("rsrp", m) for m in ("mae", "dtw", "hwd")]
            + [result.average("rsrq", m) for m in ("mae", "dtw", "hwd")]
        )
    table = format_table(headers, rows, title="Table 12: GenDT ablation, Dataset B")
    record_result("table12_ablation", table)

    full_hwd = ablation_results["GenDT"].average("rsrp", "hwd")
    no_resgen_hwd = ablation_results["No ResGen"].average("rsrp", "hwd")
    # ResGen is the stochasticity engine: dropping it degrades HWD (paper's
    # headline ablation observation).
    assert no_resgen_hwd > full_hwd * 0.9

    # Every ablated variant is no better than the full model on at least
    # one metric family (nothing is free).
    for name in ("No ResGen", "No SRNN", "No GAN loss", "No batch"):
        worse_somewhere = any(
            ablation_results[name].average("rsrp", m)
            >= ablation_results["GenDT"].average("rsrp", m) * 0.95
            for m in ("mae", "dtw", "hwd")
        )
        assert worse_somewhere, name

    traj = bench_split_b.test[0].trajectory
    benchmark(lambda: models["GenDT"].generate(traj))
