"""Symbolic graph verification overhead: cheap, and one-shot at fit time.

``GenDT.fit``/``GenDT.load`` verify the generator graph before touching any
data (see ``GenDT._verify_generator``).  That is only acceptable if the
check is (i) fast in absolute terms — it traces shadow arrays through the
whole generator, so "fast" needs pinning — and (ii) paid exactly once per
fit, never per epoch, so training cost is independent of epoch count.
"""

import time

import numpy as np

from repro.analysis.graph import verify
from repro.core import GenDT, small_config
from repro.core.generator import GenDTGenerator
from repro.datasets import make_dataset_a, split_per_scenario

from conftest import record_result

REPEATS = 5


def test_verify_gendt_generator_under_one_second(benchmark):
    module = GenDTGenerator(2, 28, small_config(), np.random.default_rng(0))
    times = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = verify(module)
        times.append(time.perf_counter() - start)
        assert report.ok, report.format()
    best = min(times)
    record_result(
        "verify_overhead",
        "Symbolic verification of GenDTGenerator (full contract + grad audit)\n"
        f"  best of {REPEATS}: {best * 1e3:.1f} ms",
    )
    # ISSUE acceptance bound: a full generator verification stays under 1 s.
    assert best < 1.0

    benchmark(lambda: verify(module))


def test_fit_time_verification_is_one_shot(monkeypatch):
    dataset = make_dataset_a(seed=7, samples_per_scenario=120)
    split = split_per_scenario(dataset, 0.3, 200.0, np.random.default_rng(7))

    calls = {"n": 0}
    original = GenDT._verify_generator

    def counting_verify(self):
        calls["n"] += 1
        return original(self)

    monkeypatch.setattr(GenDT, "_verify_generator", counting_verify)

    for epochs in (1, 3):
        calls["n"] = 0
        config = small_config(
            epochs=epochs, hidden_size=12, batch_len=20, train_step=10
        )
        model = GenDT(dataset.region, kpis=["rsrp", "rsrq"], config=config, seed=7)
        model.fit(split.train)
        # One verification per fit, regardless of epoch count.
        assert calls["n"] == 1, (
            f"expected one-shot verification, got {calls['n']} calls "
            f"for epochs={epochs}"
        )
