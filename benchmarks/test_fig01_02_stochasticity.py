"""Paper Figures 1 & 2: repeated drives over one trajectory.

Fig. 1: RSRP measured five times over the same tram trajectory varies
substantially at most locations.  Fig. 2: the serving-cell id varies too,
and locations with high RSRP variation coincide with serving-cell churn.
The reproduction checks both properties on the simulator and renders the
aligned series.
"""

import numpy as np

from repro.eval import analyze_stochasticity, ascii_plot, sparkline

from conftest import record_result


def test_fig01_02_rsrp_stochasticity(benchmark, bench_dataset_a):
    region = bench_dataset_a.region
    simulator = bench_dataset_a.simulator
    rng = np.random.default_rng(123)
    tram = bench_dataset_a.by_scenario("tram")[0].trajectory

    analysis = analyze_stochasticity(simulator, tram, rng, repeats=5)

    lines = [
        "Figure 1: RSRP over the same trajectory, 5 runs (aligned locations)",
        ascii_plot(
            {f"run{k}": analysis.rsrp_runs[k] for k in range(5)},
            width=72, height=10,
        ),
        "",
        "Figure 2: distinct serving cells across runs, per location",
        "diversity " + sparkline(analysis.serving_cell_diversity(), width=72),
        "",
        f"mean cross-run RSRP std: {analysis.mean_cross_run_std:.2f} dB",
        f"corr(RSRP std, serving-cell diversity): "
        f"{analysis.correlation_std_vs_diversity():.3f}",
    ]
    record_result("fig01_02_stochasticity", "\n".join(lines))

    # Paper's observations: (i) repeated runs differ materially at most
    # locations; (ii) variation correlates with serving-cell churn.
    assert analysis.mean_cross_run_std > 1.0
    assert analysis.serving_cell_diversity().max() >= 2
    assert analysis.correlation_std_vs_diversity() > 0.05

    benchmark(lambda: simulator.simulate(tram, np.random.default_rng(0)))
