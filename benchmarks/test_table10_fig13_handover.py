"""Paper Table 10 & Figure 13: the handover-analysis downstream use case.

GenDT is retrained with the serving-cell id as an extra generated channel
(§6.3.2, "GenDT model itself remains unchanged").  The inter-handover time
distribution of the generated serving-cell series is compared to the real
one via HWD and as a CDF.  Baselines generate the same channel; the paper's
shape target is that GenDT's distribution is the closest to real.
"""

import numpy as np
import pytest

from repro.baselines import FDaS, MLPBaseline
from repro.core import GenDT, small_config
from repro.eval import ascii_plot, cdf_points, format_table
from repro.usecases import compare_handover_distributions

from conftest import record_result

HO_KPIS = ["rsrp", "serving_cell"]


@pytest.fixture(scope="module")
def handover_models(bench_dataset_b, bench_split_b):
    region = bench_dataset_b.region
    config = small_config(
        epochs=12, hidden_size=28, batch_len=25, train_step=5,
        minibatch_windows=16, max_cells=6,
    )
    gendt = GenDT(region, kpis=HO_KPIS, config=config, seed=6)
    gendt.fit(bench_split_b.train)

    fdas = FDaS(kpis=HO_KPIS, seed=0)
    fdas.fit(bench_split_b.train)
    mlp = MLPBaseline(region, kpis=HO_KPIS, epochs=20, seed=0)
    mlp.fit(bench_split_b.train)
    return {"GenDT": gendt.generate, "FDaS": fdas.generate, "MLP": mlp.generate}


def test_table10_fig13_handover(benchmark, handover_models, bench_split_b):
    test = bench_split_b.test
    rows = []
    comparisons = {}
    for name, generate in handover_models.items():
        generated_serving = [generate(r.trajectory)[:, 1] for r in test]
        comparison = compare_handover_distributions(test, generated_serving)
        comparisons[name] = comparison
        rows.append([name, comparison.hwd])
    table = format_table(
        ["method", "inter-handover HWD"],
        rows,
        title="Table 10: inter-handover time distribution vs real (HWD)",
    )

    real_xs, real_cdf = comparisons["GenDT"].cdf("real")
    gen_xs, gen_cdf = comparisons["GenDT"].cdf("generated")
    grid = np.linspace(0, max(real_xs.max(), gen_xs.max() if len(gen_xs) else 1), 50)
    _, real_on_grid = comparisons["GenDT"].cdf("real", grid)
    _, gen_on_grid = comparisons["GenDT"].cdf("generated", grid)
    figure = ascii_plot(
        {"real": real_on_grid, "GenDT": gen_on_grid},
        width=64, height=10,
        title="Figure 13: CDF of inter-handover times (real vs GenDT)",
    )
    record_result("table10_fig13_handover", table + "\n\n" + figure)

    hwds = {name: c.hwd for name, c in comparisons.items()}
    # GenDT's distribution closest to real (paper Table 10).
    assert hwds["GenDT"] == min(hwds.values())
    assert np.isfinite(hwds["GenDT"])

    traj = test[0].trajectory
    benchmark(lambda: handover_models["GenDT"](traj))
