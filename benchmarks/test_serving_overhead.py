"""Serving-layer overhead: the resilience machinery must be near-free.

The campaign runner wraps every ``GenDT.generate`` call in admission
validation, a per-window hook (deadline checks + fault-plan lookups), breaker
accounting, and envelope assembly.  This bench pins the claim the README
makes for `repro serving`: on the fault-free path, serving a campaign
through :class:`repro.serving.CampaignRunner` costs within a small factor of
calling ``GenDT.generate`` in a bare loop — the isolation layers only pay
for themselves when faults actually occur.
"""

import time

import numpy as np

from repro.baselines import FDaS
from repro.core import GenDT, small_config
from repro.datasets import make_dataset_a, split_per_scenario
from repro.serving import CampaignConfig, CampaignRunner

from conftest import record_result

REPEATS = 3
N_TRAJECTORIES = 6


def _setup():
    dataset = make_dataset_a(seed=7, samples_per_scenario=240)
    split = split_per_scenario(dataset, 0.3, 200.0, np.random.default_rng(7))
    config = small_config(epochs=2, hidden_size=20, batch_len=25, train_step=10)
    model = GenDT(dataset.region, kpis=["rsrp", "rsrq"], config=config, seed=7)
    model.fit(split.train)
    fdas = FDaS(kpis=["rsrp", "rsrq"], seed=0)
    fdas.fit(split.train)
    trajectories = [r.trajectory for r in split.test[:N_TRAJECTORIES]]
    return model, fdas, trajectories


def _time_bare(model, trajectories):
    start = time.perf_counter()
    for trajectory in trajectories:
        model.generate(trajectory)
    return time.perf_counter() - start


def _time_served(model, fdas, trajectories):
    runner = CampaignRunner(model, fdas=fdas, config=CampaignConfig(seed=7))
    start = time.perf_counter()
    result = runner.run(trajectories)
    elapsed = time.perf_counter() - start
    assert all(e.ok for e in result.envelopes)
    assert all(e.level == "full" for e in result.envelopes)
    return elapsed


def test_serving_overhead_on_fault_free_path():
    model, fdas, trajectories = _setup()
    # Warm-up: first generation pays one-time context/assembler caches.
    model.generate(trajectories[0])

    bare = min(_time_bare(model, trajectories) for _ in range(REPEATS))
    served = min(_time_served(model, fdas, trajectories) for _ in range(REPEATS))
    overhead = served / bare if bare > 0 else float("inf")

    lines = [
        "serving-runtime overhead (fault-free path)",
        f"trajectories per campaign : {len(trajectories)}",
        f"bare generate loop        : {bare * 1e3:8.1f} ms",
        f"CampaignRunner.run        : {served * 1e3:8.1f} ms",
        f"overhead factor           : {overhead:8.2f}x",
    ]
    record_result("serving_overhead", "\n".join(lines))

    # Generous CI bound: the wrapper work (validation, hook dispatch,
    # breaker bookkeeping, envelopes) must stay a small multiple of the
    # model call itself, which dominates.
    assert overhead < 2.0
