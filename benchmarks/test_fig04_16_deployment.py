"""Paper Figure 4 (cell density per scenario) and Figure 16 (serving-cell
distance CDFs).

Shape targets: city-centre scenarios see denser deployments and closer
serving cells than highway scenarios; slow-mobility (walk) serving cells are
the closest.
"""

import numpy as np

from repro.eval import cdf_points, format_table, serving_cell_distances_fast, sparkline

from conftest import record_result


def _case_records(bench_dataset_a, bench_dataset_b):
    """The paper's 7 cases: A walk/bus/tram, B city x2 / highway x2."""
    cases = {}
    for scenario in ("walk", "bus", "tram"):
        cases[f"A:{scenario}"] = (bench_dataset_a, bench_dataset_a.by_scenario(scenario))
    for scenario in ("city_driving_1", "city_driving_2", "highway_1", "highway_2"):
        cases[f"B:{scenario}"] = (bench_dataset_b, bench_dataset_b.by_scenario(scenario))
    return cases


def _local_cell_density(dataset, records, radius_m=2000.0):
    """Cells within a radius of the visited locations, per km^2."""
    deployment = dataset.region.deployment
    counts = []
    for record in records:
        traj = record.trajectory
        for k in range(0, len(traj), max(1, len(traj) // 10)):
            n = len(deployment.visible_cells(traj.lat[k], traj.lon[k], radius_m))
            counts.append(n / (np.pi * (radius_m / 1000.0) ** 2))
    return float(np.mean(counts))


def test_fig04_cell_density(benchmark, bench_dataset_a, bench_dataset_b):
    cases = _case_records(bench_dataset_a, bench_dataset_b)
    rows = []
    densities = {}
    for name, (dataset, records) in cases.items():
        density = _local_cell_density(dataset, records)
        densities[name] = density
        rows.append([name, density])
    table = format_table(
        ["case", "cells_per_km2"], rows, title="Figure 4: cell density per case"
    )
    record_result("fig04_cell_density", table)

    # City-centre cases denser than highway cases (paper Fig. 4).
    city_mean = np.mean([densities["A:walk"], densities["B:city_driving_1"]])
    highway_mean = np.mean([densities["B:highway_1"], densities["B:highway_2"]])
    assert city_mean > highway_mean

    benchmark(
        lambda: _local_cell_density(
            bench_dataset_a, bench_dataset_a.by_scenario("walk")[:1]
        )
    )


def test_fig16_serving_distance_cdf(benchmark, bench_dataset_a, bench_dataset_b):
    cases = _case_records(bench_dataset_a, bench_dataset_b)
    lines = ["Figure 16: CDF of distance to serving cell per scenario"]
    medians = {}
    for name, (dataset, records) in cases.items():
        pooled = np.concatenate(
            [serving_cell_distances_fast(r, dataset.region.deployment) for r in records]
        )
        medians[name] = float(np.median(pooled))
        xs, cdf = cdf_points(pooled, n_points=60)
        lines.append(f"{name:20s} median={medians[name]:7.0f} m  " + sparkline(cdf, 50))
    record_result("fig16_serving_distance_cdf", "\n".join(lines))

    # Paper shape: walking/city serving cells closer than highway ones.
    assert medians["A:walk"] < medians["B:highway_1"]
    assert medians["B:city_driving_1"] < medians["B:highway_2"]

    records = bench_dataset_a.by_scenario("walk")[:1]
    benchmark(
        lambda: serving_cell_distances_fast(
            records[0], bench_dataset_a.region.deployment
        )
    )
