"""Shared benchmark fixtures: datasets, splits, trained models.

Every paper table/figure bench draws on these session-scoped fixtures so the
expensive work (dataset synthesis, model training) happens once per run.
Scale is "CI-size": large enough for the paper's qualitative shape (method
ranking, rough factors) to emerge, small enough that the full benchmark
suite completes in minutes on a laptop.  EXPERIMENTS.md records a run's
outputs next to the paper's numbers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict

import numpy as np
import pytest

from repro.baselines import DoppelGANger, FDaS, LSTMGNNBaseline, MLPBaseline
from repro.core import GenDT, small_config
from repro.datasets import (
    build_region_b,
    make_dataset_a,
    make_dataset_b,
    make_long_trajectory,
    split_per_scenario,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: KPI sets per dataset (paper: Dataset B lacks SINR/CQI).
KPIS_A = ["rsrp", "rsrq", "sinr", "cqi"]
KPIS_B = ["rsrp", "rsrq"]

#: Benchmark scale knobs.
SAMPLES_PER_SCENARIO = 900
TRAJECTORIES_PER_SCENARIO = 4
GENDT_EPOCHS = 18


def record_result(name: str, text: str) -> None:
    """Persist a rendered table/figure and echo it to the terminal."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def _bench_config(**overrides):
    base = dict(
        epochs=GENDT_EPOCHS,
        hidden_size=32,
        batch_len=25,
        train_step=5,
        minibatch_windows=16,
        max_cells=6,
    )
    base.update(overrides)
    return small_config(**base)


@pytest.fixture(scope="session")
def bench_dataset_a():
    return make_dataset_a(
        seed=7,
        samples_per_scenario=SAMPLES_PER_SCENARIO,
        trajectories_per_scenario=TRAJECTORIES_PER_SCENARIO,
    )


@pytest.fixture(scope="session")
def bench_split_a(bench_dataset_a):
    return split_per_scenario(bench_dataset_a, 0.3, 200.0, np.random.default_rng(77))


@pytest.fixture(scope="session")
def bench_region_b():
    return build_region_b(seed=11)


@pytest.fixture(scope="session")
def bench_dataset_b(bench_region_b):
    return make_dataset_b(
        seed=11,
        samples_per_scenario=SAMPLES_PER_SCENARIO,
        trajectories_per_scenario=TRAJECTORIES_PER_SCENARIO,
        region=bench_region_b,
    )


@pytest.fixture(scope="session")
def bench_split_b(bench_dataset_b):
    return split_per_scenario(bench_dataset_b, 0.3, 400.0, np.random.default_rng(78))


@pytest.fixture(scope="session")
def bench_long_trajectory(bench_region_b):
    return make_long_trajectory(bench_region_b, seed=23, target_duration_s=1400.0)


@pytest.fixture(scope="session")
def bench_long_record(bench_dataset_b, bench_long_trajectory):
    return bench_dataset_b.simulator.simulate(
        bench_long_trajectory, np.random.default_rng(99)
    )


@pytest.fixture(scope="session")
def bench_gendt_a(bench_dataset_a, bench_split_a) -> GenDT:
    model = GenDT(bench_dataset_a.region, kpis=KPIS_A, config=_bench_config(), seed=3)
    model.fit(bench_split_a.train)
    return model


@pytest.fixture(scope="session")
def bench_gendt_b(bench_dataset_b, bench_split_b) -> GenDT:
    model = GenDT(bench_dataset_b.region, kpis=KPIS_B, config=_bench_config(), seed=4)
    model.fit(bench_split_b.train)
    return model


def _make_baselines(region, kpis, train, seed=0) -> Dict[str, Callable]:
    """Fit all five baselines; returns name -> generate callable."""
    fdas = FDaS(kpis=kpis, seed=seed)
    fdas.fit(train)
    mlp = MLPBaseline(region, kpis=kpis, epochs=25, seed=seed)
    mlp.fit(train)
    lstm_gnn = LSTMGNNBaseline(
        region, kpis=kpis, hidden=24, epochs=4, max_train_len=200, seed=seed
    )
    lstm_gnn.fit(train)
    orig_dg = DoppelGANger(
        region, kpis=kpis, real_context=False, window_len=25, hidden=24,
        epochs=6, seed=seed,
    )
    orig_dg.fit(train)
    real_dg = DoppelGANger(
        region, kpis=kpis, real_context=True, window_len=25, hidden=24,
        epochs=6, seed=seed,
    )
    real_dg.fit(train)
    return {
        "FDaS": fdas.generate,
        "MLP": mlp.generate,
        "LSTM-GNN": lstm_gnn.generate,
        "Orig. DG": orig_dg.generate,
        "Real Cont. DG": real_dg.generate,
    }


@pytest.fixture(scope="session")
def bench_methods_a(bench_dataset_a, bench_split_a, bench_gendt_a) -> Dict[str, Callable]:
    methods = {"GenDT": bench_gendt_a.generate}
    methods.update(
        _make_baselines(bench_dataset_a.region, KPIS_A, bench_split_a.train)
    )
    return methods


@pytest.fixture(scope="session")
def bench_methods_b(bench_dataset_b, bench_split_b, bench_gendt_b) -> Dict[str, Callable]:
    methods = {"GenDT": bench_gendt_b.generate}
    methods.update(
        _make_baselines(bench_dataset_b.region, KPIS_B, bench_split_b.train)
    )
    return methods


@pytest.fixture(scope="session")
def bench_results_a(bench_methods_a, bench_split_a):
    """Fidelity of every method on the Dataset-A test set (Tables 3 & 4)."""
    from repro.eval import compare_methods

    return compare_methods(bench_methods_a, bench_split_a.test, KPIS_A, n_generations=2)


@pytest.fixture(scope="session")
def bench_results_b(bench_methods_b, bench_split_b):
    """Fidelity of every method on the Dataset-B test set (Tables 5 & 6)."""
    from repro.eval import compare_methods

    return compare_methods(bench_methods_b, bench_split_b.test, KPIS_B, n_generations=2)
