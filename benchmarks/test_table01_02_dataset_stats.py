"""Paper Tables 1 & 2: dataset statistics per scenario.

Regenerates the per-scenario statistics rows (granularity, velocity,
serving-cell dwell, RSRP/RSRQ mean & std, ROC, sample counts) for the
synthetic Datasets A and B.  The reproduction target is the *shape*:
velocity ordering (walk < bus < tram; city < highway), dwell-time ordering
(slower movement -> longer dwell), and RSRP/RSRQ in the measured bands
(RSRP around -85 dBm, RSRQ around -13 dB).
"""

import numpy as np
import pytest

from repro.datasets import dataset_stats
from repro.eval import format_table

from conftest import record_result


def _stats_table(dataset, title):
    rows_by_scenario = {s: dataset.by_scenario(s) for s in dataset.scenarios()}
    stats = dataset_stats(rows_by_scenario)
    headers = [
        "scenario", "granularity_s", "velocity_mps", "cell_dwell_s",
        "rsrp_mean", "rsrp_std", "rsrp_roc", "rsrq_mean", "rsrq_std",
        "rsrq_roc", "samples",
    ]
    rows = [[getattr(s, attr) for attr in (
        "scenario", "time_granularity_s", "avg_velocity_mps", "avg_cell_dwell_s",
        "avg_rsrp_dbm", "std_rsrp_dbm", "roc_rsrp", "avg_rsrq_db",
        "std_rsrq_db", "roc_rsrq", "n_samples",
    )] for s in stats]
    return stats, format_table(headers, rows, title=title)


def test_table01_dataset_a_stats(benchmark, bench_dataset_a):
    stats, table = _stats_table(bench_dataset_a, "Table 1: Dataset A statistics")
    record_result("table01_dataset_a_stats", table)

    by_name = {s.scenario: s for s in stats}
    # Paper Table 1 shape checks.
    assert by_name["walk"].avg_velocity_mps < by_name["bus"].avg_velocity_mps
    assert by_name["bus"].avg_velocity_mps < by_name["tram"].avg_velocity_mps
    assert by_name["walk"].avg_cell_dwell_s > by_name["tram"].avg_cell_dwell_s
    for s in stats:
        assert -100 < s.avg_rsrp_dbm < -70
        assert -17 < s.avg_rsrq_db < -10

    benchmark(lambda: dataset_stats({"walk": bench_dataset_a.by_scenario("walk")}))


def test_table02_dataset_b_stats(benchmark, bench_dataset_b):
    stats, table = _stats_table(bench_dataset_b, "Table 2: Dataset B statistics")
    record_result("table02_dataset_b_stats", table)

    by_name = {s.scenario: s for s in stats}
    assert by_name["highway_1"].avg_velocity_mps > 2 * by_name["city_driving_1"].avg_velocity_mps
    assert by_name["highway_2"].avg_velocity_mps > by_name["highway_1"].avg_velocity_mps
    # Coarser granularity than Dataset A (paper: Android Telephony API).
    for s in stats:
        assert s.time_granularity_s > 1.5
        assert s.roc_rsrp > 0

    benchmark(
        lambda: dataset_stats({"highway_1": bench_dataset_b.by_scenario("highway_1")})
    )
