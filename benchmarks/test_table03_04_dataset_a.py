"""Paper Tables 3 & 4: fidelity on Dataset A.

Table 3: generated-RSRP fidelity per scenario (walk/bus/tram) for GenDT and
the five baselines on MAE/DTW/HWD.  Table 4: the all-KPI (RSRP, RSRQ, SINR,
CQI) average across scenarios.

Shape targets from the paper: GenDT generally best on MAE and DTW; FDaS
competitive on HWD (it models the marginal distribution directly) but worst
on DTW; original DG poor across the board (generated context); Real-Context
DG the strongest baseline.
"""

import numpy as np
import pytest

from repro.eval import average_rows, fidelity_rows, format_table, ranking

from conftest import KPIS_A, record_result


def test_table03_dataset_a_rsrp(benchmark, bench_results_a, bench_methods_a, bench_split_a):
    scenarios = ["walk", "bus", "tram"]
    headers, rows = fidelity_rows(bench_results_a, "rsrp", scenarios)
    table = format_table(
        headers, rows, title="Table 3: RSRP fidelity per scenario, Dataset A"
    )
    record_result("table03_dataset_a_rsrp", table)

    # GenDT leads on the temporal-shape metric (averaged over scenarios) and
    # sits within a small margin of the best MAE.  (Deterministic
    # MSE-trained regressors can edge out a *generative* model on pointwise
    # MAE — they pay for it on DTW/HWD; see EXPERIMENTS.md.)
    assert ranking(bench_results_a, "rsrp", "dtw")[0] == "GenDT"
    best_mae = min(
        bench_results_a[m].average("rsrp", "mae") for m in bench_results_a
    )
    assert bench_results_a["GenDT"].average("rsrp", "mae") <= best_mae * 1.25
    assert bench_results_a["GenDT"].average("rsrp", "mae") < bench_results_a[
        "FDaS"
    ].average("rsrp", "mae")

    traj = bench_split_a.test[0].trajectory
    benchmark(lambda: bench_methods_a["GenDT"](traj))


def test_table04_dataset_a_all_kpis(benchmark, bench_results_a, bench_methods_a, bench_split_a):
    headers, rows = average_rows(bench_results_a, KPIS_A)
    table = format_table(
        headers, rows,
        title="Table 4: average fidelity across scenarios, Dataset A (all KPIs)",
    )
    record_result("table04_dataset_a_all_kpis", table)

    # GenDT within a small MAE margin of the best method for the continuous
    # KPIs; CQI gains are marginal in the paper too (discrete channel).
    for kpi in ("rsrp", "rsrq", "sinr"):
        best = min(bench_results_a[m].average(kpi, "mae") for m in bench_results_a)
        assert bench_results_a["GenDT"].average(kpi, "mae") <= best * 1.25, kpi
    assert ranking(bench_results_a, "rsrp", "dtw")[0] == "GenDT"
    # Original DG must not beat GenDT on the temporal metric (it generates
    # its own context, decoupled from the test trajectory).  On pointwise
    # MAE a mode-collapsed DG degenerates to a near-constant predictor and
    # can land close to GenDT — DTW exposes that it is not tracking.
    r = ranking(bench_results_a, "rsrp", "dtw")
    assert r.index("GenDT") < r.index("Orig. DG")

    traj = bench_split_a.test[0].trajectory
    benchmark(lambda: bench_methods_a["FDaS"](traj))
