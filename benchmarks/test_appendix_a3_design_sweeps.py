"""Appendix A.3 design-choice sweeps.

Two claims the paper makes about hyper-parameters:

* the sliding-step length of overlapping training batches can be anything
  in [1, 15] with similar results (Δt = 5 is the default);
* the stochastic-layer noise intensity [a_h, a_c] is chosen in [1, 3] for
  the best histogram fit, with a_h = a_c = 2 good for most cases.

These benches sweep both knobs at small scale and check the claimed
insensitivity/ordering.
"""

import numpy as np
import pytest

from repro.core import GenDT, small_config
from repro.eval import compare_methods, format_table

from conftest import record_result

KPIS = ["rsrp", "rsrq"]


def _fit_and_eval(region, split, **config_overrides):
    base = dict(
        epochs=8, hidden_size=24, batch_len=25, train_step=5,
        minibatch_windows=16, max_cells=6,
    )
    base.update(config_overrides)
    config = small_config(**base)
    model = GenDT(region, kpis=KPIS, config=config, seed=9)
    model.fit(split.train)
    results = compare_methods(
        {"m": model.generate}, split.test, KPIS, n_generations=2
    )["m"]
    return model, {
        "mae": results.average("rsrp", "mae"),
        "dtw": results.average("rsrp", "dtw"),
        "hwd": results.average("rsrp", "hwd"),
    }


def test_a3_step_length_sweep(benchmark, bench_dataset_a, bench_split_a):
    steps = (1, 5, 15)
    models = {}
    outcomes = {}
    for step in steps:
        models[step], outcomes[step] = _fit_and_eval(
            bench_dataset_a.region, bench_split_a, train_step=step
        )
    rows = [[f"Δt={s}", m["mae"], m["dtw"], m["hwd"]] for s, m in outcomes.items()]
    record_result(
        "appendix_a3_step_sweep",
        format_table(
            ["step", "rsrp:mae", "rsrp:dtw", "rsrp:hwd"], rows,
            title="Appendix A.3: training-batch sliding-step sweep",
        ),
    )
    # Paper claim: any step in [1, 15] gives similar results — the spread
    # across the sweep stays within a factor of the best.
    maes = [m["mae"] for m in outcomes.values()]
    assert max(maes) <= min(maes) * 1.6

    traj = bench_split_a.test[0].trajectory
    benchmark(lambda: models[5].generate(traj))


def test_a3_noise_intensity_sweep(benchmark, bench_dataset_a, bench_split_a):
    intensities = (0.0, 1.0, 2.0, 3.0)
    models = {}
    outcomes = {}
    for a in intensities:
        models[a], outcomes[a] = _fit_and_eval(
            bench_dataset_a.region, bench_split_a,
            noise_intensity_h=a, noise_intensity_c=a,
        )
    rows = [[f"a={a}", m["mae"], m["dtw"], m["hwd"]] for a, m in outcomes.items()]
    record_result(
        "appendix_a3_noise_sweep",
        format_table(
            ["intensity", "rsrp:mae", "rsrp:dtw", "rsrp:hwd"], rows,
            title="Appendix A.3: stochastic-layer noise-intensity sweep",
        ),
    )
    # All intensities in the paper's [1, 3] range must stay usable (no
    # blow-up relative to the noiseless variant).
    baseline = outcomes[0.0]["mae"]
    for a in (1.0, 2.0, 3.0):
        assert outcomes[a]["mae"] <= baseline * 2.0

    traj = bench_split_a.test[0].trajectory
    benchmark(lambda: models[2.0].generate(traj))
