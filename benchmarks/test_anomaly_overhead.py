"""Anomaly-detection overhead: the off-mode hooks must be free.

The `repro.nn.anomaly` hooks sit on the hottest paths of the engine
(`Tensor._make`, the backward loop, `Module.__call__`).  This bench pins
down two claims made in the README:

(i)  with the mode off, training is bit-identical to an engine without the
     hooks (the hooks reduce to one attribute read, taken on every op), and
(ii) the on-mode cost — full per-op finiteness checks — stays within a
     small factor of the plain run, so `--detect-anomaly` is usable on
     real campaigns, not just unit tests.
"""

import time

import numpy as np

from repro.core import GenDT, small_config
from repro.datasets import make_dataset_a, split_per_scenario

from conftest import record_result

REPEATS = 3


def _smoke_train(detect_anomaly: bool):
    dataset = make_dataset_a(seed=7, samples_per_scenario=120)
    split = split_per_scenario(dataset, 0.3, 200.0, np.random.default_rng(7))
    config = small_config(
        epochs=2, hidden_size=28, batch_len=25, train_step=5,
        minibatch_windows=16,
    )
    model = GenDT(dataset.region, kpis=["rsrp", "rsrq"], config=config, seed=7)
    start = time.perf_counter()
    model.fit(split.train, detect_anomaly=detect_anomaly)
    elapsed = time.perf_counter() - start
    weights = np.concatenate([p.data.ravel() for p in model.generator.parameters()])
    return elapsed, weights


def test_anomaly_overhead(benchmark):
    off_times, on_times = [], []
    for _ in range(REPEATS):
        t_off, w_off = _smoke_train(detect_anomaly=False)
        t_on, w_on = _smoke_train(detect_anomaly=True)
        off_times.append(t_off)
        on_times.append(t_on)
    # (i) detect_anomaly must never perturb numerics, only observe them.
    assert np.array_equal(w_off, w_on)

    best_off, best_on = min(off_times), min(on_times)
    ratio = best_on / best_off
    lines = [
        "Anomaly-detection overhead (2-epoch smoke train, dataset A, seed 7)",
        f"  off: {best_off:.3f} s  (best of {REPEATS})",
        f"  on:  {best_on:.3f} s  (best of {REPEATS})",
        f"  on/off ratio: {ratio:.2f}x",
        "  weights bit-identical across modes: yes",
    ]
    record_result("anomaly_overhead", "\n".join(lines))

    # (ii) generous CI bound: per-op np.isfinite checks roughly double the
    # numpy-op count, so anything past ~4x signals an accidental slow path
    # (e.g. a per-op stack walk escaping the enabled guard).
    assert ratio < 4.0

    benchmark(lambda: _smoke_train(detect_anomaly=False))
