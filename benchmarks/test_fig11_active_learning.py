"""Paper Figure 11: uncertainty-guided vs random training-data selection.

The measurement-efficiency experiment (§6.2.2): geographic subsets of
Dataset B are added to the training pool one at a time — either by highest
model uncertainty (MC-dropout probe on ResGen's Gaussian parameters) or at
random — while evaluating DTW and HWD on the held-out long trajectory.

Shape targets: fidelity improves (then saturates) as data is added, and the
uncertainty-guided curve dominates (is at least as good as) the random one
on average over the trace.
"""

import numpy as np
import pytest

from repro.core import GenDT, run_active_learning, small_config
from repro.datasets import make_active_learning_subsets
from repro.eval import format_table
from repro.metrics import dtw, hwd

from conftest import record_result

N_SUBSETS = 10
N_STEPS = 4


@pytest.fixture(scope="module")
def al_setup(bench_region_b, bench_long_record):
    subsets = [
        [r]
        for r in make_active_learning_subsets(
            bench_region_b, seed=31, n_subsets=N_SUBSETS, samples_per_subset=220,
        )
    ]
    eval_record = bench_long_record
    real = eval_record.kpi_matrix(["rsrp", "rsrq"])

    def factory():
        config = small_config(
            epochs=3, hidden_size=20, batch_len=25, train_step=10,
            minibatch_windows=12, max_cells=6,
        )
        return GenDT(bench_region_b, kpis=["rsrp", "rsrq"], config=config, seed=5)

    def evaluate(model):
        gen = model.generate(eval_record.trajectory)
        band = max(2, len(real) // 10)
        return {
            "dtw": dtw(real[:, 0], gen[:, 0], band=band),
            "hwd": hwd(real[:, 0], gen[:, 0]),
        }

    return factory, subsets, evaluate


def test_fig11_uncertainty_vs_random(benchmark, al_setup):
    factory, subsets, evaluate = al_setup
    uncertainty = run_active_learning(
        factory, subsets, evaluate, n_steps=N_STEPS,
        strategy="uncertainty", epochs_per_step=3, mc_passes=3,
    )
    random_runs = [
        run_active_learning(
            factory, subsets, evaluate, n_steps=N_STEPS,
            strategy="random", rng=np.random.default_rng(seed), epochs_per_step=3,
        )
        for seed in (1, 2)
    ]

    rows = []
    for i, step in enumerate(uncertainty.steps):
        rand_dtw = float(np.mean([r.steps[i].metrics["dtw"] for r in random_runs]))
        rand_hwd = float(np.mean([r.steps[i].metrics["hwd"] for r in random_runs]))
        rows.append(
            [
                f"{step.fraction_used:.0%}",
                step.metrics["dtw"],
                rand_dtw,
                step.metrics["hwd"],
                rand_hwd,
            ]
        )
    table = format_table(
        ["data_used", "dtw:uncertainty", "dtw:random", "hwd:uncertainty", "hwd:random"],
        rows,
        title="Figure 11: uncertainty-guided vs random training-data selection",
    )
    record_result("fig11_active_learning", table)

    unc_dtw = uncertainty.metric_series("dtw")
    rand_dtw_final = np.mean([r.steps[-1].metrics["dtw"] for r in random_runs])
    # Shape: adding data helps vs the first step...
    assert min(unc_dtw[1:]) <= unc_dtw[0] * 1.05
    # ...and on average the uncertainty-guided trace is no worse than random.
    unc_mean = float(np.mean(unc_dtw[1:]))
    rand_mean = float(
        np.mean([np.mean(r.metric_series("dtw")[1:]) for r in random_runs])
    )
    assert unc_mean <= rand_mean * 1.15

    factory_model = factory()
    factory_model.fit([r for s in subsets[:1] for r in s], epochs=1)
    from repro.core import mc_dropout_uncertainty

    benchmark(
        lambda: mc_dropout_uncertainty(
            factory_model, subsets[1][0].trajectory, n_passes=2
        )
    )
