#!/usr/bin/env python3
"""Handover analysis from generated serving-cell series (paper §6.3.2).

Retrains GenDT with the serving-cell id as an additional generated KPI
channel, then compares the inter-handover time distribution of generated
data against real drive-test measurements — the statistic operators tune
mobility-management thresholds with.

Run:  python examples/handover_analysis.py
"""

import numpy as np

from repro.core import GenDT, small_config
from repro.datasets import make_dataset_b, split_per_scenario
from repro.eval import ascii_plot, format_table
from repro.usecases import compare_handover_distributions


def main() -> None:
    print("Building Dataset B (multi-city driving campaign)...")
    dataset = make_dataset_b(seed=11, samples_per_scenario=800)
    split = split_per_scenario(dataset, 0.3, 400.0, np.random.default_rng(0))

    print("Training GenDT with the serving-cell channel (rsrp + serving_cell)...")
    config = small_config(epochs=12, hidden_size=28, batch_len=25, train_step=5,
                          minibatch_windows=16)
    model = GenDT(dataset.region, kpis=["rsrp", "serving_cell"], config=config, seed=2)
    model.fit(split.train)

    print("Generating serving-cell series for the held-out routes...")
    generated_serving = [
        model.generate(record.trajectory)[:, 1] for record in split.test
    ]
    comparison = compare_handover_distributions(split.test, generated_serving)

    print(format_table(
        ["quantity", "value"],
        [
            ["real handover intervals", len(comparison.real_intervals)],
            ["generated handover intervals", len(comparison.generated_intervals)],
            ["real median interval (s)", float(np.median(comparison.real_intervals))],
            [
                "generated median interval (s)",
                float(np.median(comparison.generated_intervals))
                if len(comparison.generated_intervals) else float("nan"),
            ],
            ["distribution HWD", comparison.hwd],
        ],
        title="Inter-handover time distributions",
    ))

    if len(comparison.generated_intervals):
        grid = np.linspace(
            0.0,
            max(comparison.real_intervals.max(), comparison.generated_intervals.max()),
            50,
        )
        _, real_cdf = comparison.cdf("real", grid)
        _, gen_cdf = comparison.cdf("generated", grid)
        print()
        print(ascii_plot(
            {"real": real_cdf, "generated": gen_cdf},
            width=64, height=10,
            title="CDF of inter-handover times (cf. paper Figure 13)",
        ))


if __name__ == "__main__":
    main()
