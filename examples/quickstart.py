#!/usr/bin/env python3
"""Quickstart: train GenDT on a small drive-test campaign and generate KPIs.

This walks the complete operator workflow from the paper's Figure 5:

1. build a measurement campaign (here: the synthetic Dataset A — walk, bus
   and tram drives through one city at 1 s granularity),
2. split it geographically into train/test,
3. fit a GenDT model (RSRP + RSRQ channels),
4. generate the KPI time series for a held-out, unseen trajectory,
5. compare against the real measurements with the paper's metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import GenDT, small_config
from repro.datasets import make_dataset_a, split_per_scenario
from repro.eval import ascii_plot, format_table
from repro.metrics import evaluate_series


def main() -> None:
    print("1) Synthesizing a drive-test measurement campaign (Dataset A)...")
    dataset = make_dataset_a(seed=7, samples_per_scenario=900)
    print(f"   {dataset.total_samples()} samples over scenarios {dataset.scenarios()}")

    print("2) Geographic train/test split (no spatial overlap)...")
    split = split_per_scenario(dataset, 0.3, 200.0, np.random.default_rng(0))
    print(f"   {split.summary()}")

    print("3) Fitting GenDT (this trains a numpy LSTM-GNN GAN; ~1 minute)...")
    config = small_config(epochs=15, hidden_size=32, batch_len=25, train_step=5,
                          minibatch_windows=16)
    model = GenDT(dataset.region, kpis=["rsrp", "rsrq"], config=config, seed=1)
    history = model.fit(split.train, verbose=True)
    print(f"   final losses: {history.last()}")

    print("4) Generating KPI series for an unseen test trajectory...")
    record = split.test[0]
    generated = model.generate(record.trajectory)
    real = record.kpi_matrix(model.kpi_names)

    print("5) Fidelity (paper §5.1 metrics):")
    rows = []
    for idx, kpi in enumerate(model.kpi_names):
        metrics = evaluate_series(real[:, idx], generated[:, idx])
        rows.append([kpi, metrics["mae"], metrics["dtw"], metrics["hwd"]])
    print(format_table(["kpi", "mae", "dtw", "hwd"], rows))

    window = slice(0, min(150, len(record)))
    print()
    print(ascii_plot(
        {"real": real[window, 0], "generated": generated[window, 0]},
        width=72, height=12,
        title=f"RSRP over the test trajectory ({record.scenario})",
    ))


if __name__ == "__main__":
    main()
