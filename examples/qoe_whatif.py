#!/usr/bin/env python3
"""Downstream use cases: QoE prediction and a what-if densification study.

Part 1 — QoE prediction (paper §6.3.1): train a throughput/PER predictor on
real drive-test data, then show that feeding it GenDT-*generated* RSRP/RSRQ
yields predictions close to those from real measurements — i.e. the operator
can assess QoE on routes that were never driven.

Part 2 — What-if analysis (paper §C.2): because GenDT conditions on the cell
database, the operator can ask "what if I densify this area?" by editing the
deployment and regenerating KPIs for the same trajectory — no drive test
needed.  Here we simulate the edit's ground truth too, so the example can
sanity-check the direction of the predicted change.

Run:  python examples/qoe_whatif.py
"""

import numpy as np

from repro.core import GenDT, small_config
from repro.datasets import make_dataset_a, split_per_scenario
from repro.eval import format_table
from repro.metrics import evaluate_series
from repro.usecases import QoEPredictor


def main() -> None:
    print("Building Dataset A with QoE ground truth (iPerf3 substitute)...")
    dataset = make_dataset_a(seed=7, samples_per_scenario=800)
    split = split_per_scenario(dataset, 0.3, 200.0, np.random.default_rng(0))

    print("Training the QoE predictor on real KPI measurements...")
    predictor = QoEPredictor(kpi_names=("rsrp", "rsrq"), epochs=40, seed=0)
    predictor.fit(split.train)

    print("Training GenDT to generate RSRP/RSRQ for unseen routes...")
    config = small_config(epochs=12, hidden_size=28, batch_len=25, train_step=5,
                          minibatch_windows=16)
    model = GenDT(dataset.region, kpis=["rsrp", "rsrq"], config=config, seed=1)
    model.fit(split.train)

    print("\nPart 1: QoE prediction on a held-out route")
    record = split.test[0]
    pred_from_real = predictor.predict(record)
    # A downstream regressor wants the conditional-mean KPI series, so use
    # generate_expected (averaging out sampling noise) rather than one draw.
    generated_kpis = model.generate_expected(record.trajectory, n_samples=4)
    pred_from_generated = predictor.predict(record, kpi_override=generated_kpis)

    rows = []
    for label, pred in (("real KPIs", pred_from_real), ("GenDT KPIs", pred_from_generated)):
        metrics = evaluate_series(record.qoe["throughput_mbps"], pred["throughput_mbps"])
        rows.append([label, metrics["mae"], metrics["dtw"], metrics["hwd"]])
    print(format_table(
        ["prediction input", "thr mae", "thr dtw", "thr hwd"], rows,
        title="Throughput prediction vs measured iPerf3-style ground truth",
    ))

    print("\nPart 2: what-if — densify: add a new 3-sector site on the route")
    # Edit the network context an operator controls: deploy a new site at
    # the route midpoint.  This edit is in-distribution for the model (a
    # new nearby cell with typical power), unlike e.g. shifting every
    # cell's power far outside the training range.
    from repro.usecases import deployment_override, with_new_site

    mid = len(record.trajectory) // 2
    densified = with_new_site(
        dataset.region.deployment,
        lat=float(record.trajectory.lat[mid]),
        lon=float(record.trajectory.lon[mid]),
        p_max_dbm=43.0,
    )
    with deployment_override(model, densified):
        densified_kpis = model.generate_expected(record.trajectory, n_samples=4)

    window = slice(max(0, mid - 30), min(len(record), mid + 30))
    delta = densified_kpis[window, 0].mean() - generated_kpis[window, 0].mean()
    print(f"predicted mean RSRP change near the new site: {delta:+.1f} dB")
    print(
        "(direction check: a new site next to the route should raise local "
        "RSRP — the operator learns this before building anything)"
    )


if __name__ == "__main__":
    main()
