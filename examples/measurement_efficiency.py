#!/usr/bin/env python3
"""Measurement efficiency: uncertainty-guided drive-test data collection.

Reproduces the paper's §6.2 workflow at example scale.  An operator has 8
candidate measurement subsets (distinct geographic areas of the Dataset-B
region) and wants to spend as few drive-test campaigns as possible:

1. train GenDT on one initial subset,
2. score the remaining subsets with the MC-dropout model-uncertainty probe
   U(G) = mean_t[std(sigma_t) + std(mu_t)],
3. measure (add) the most uncertain subset, retrain, repeat,
4. track fidelity on a held-out long multi-city trajectory,

and compare against adding subsets at random.

Run:  python examples/measurement_efficiency.py   (takes a few minutes)
"""

import numpy as np

from repro.core import GenDT, run_active_learning, small_config
from repro.datasets import build_region_b, make_active_learning_subsets, make_long_trajectory
from repro.eval import format_table
from repro.metrics import dtw, hwd
from repro.radio import DriveTestSimulator


def main() -> None:
    print("Building the Dataset-B region and candidate measurement subsets...")
    region = build_region_b(seed=11)
    subsets = [
        [r]
        for r in make_active_learning_subsets(
            region, seed=31, n_subsets=8, samples_per_subset=200
        )
    ]
    long_traj = make_long_trajectory(region, seed=23, target_duration_s=900.0)
    simulator = DriveTestSimulator(region, candidate_range_m=4500.0)
    eval_record = simulator.simulate(long_traj, np.random.default_rng(99))
    real = eval_record.kpi_matrix(["rsrp", "rsrq"])

    def factory() -> GenDT:
        config = small_config(epochs=3, hidden_size=20, batch_len=25, train_step=10)
        return GenDT(region, kpis=["rsrp", "rsrq"], config=config, seed=5)

    def evaluate(model: GenDT) -> dict:
        generated = model.generate(eval_record.trajectory)
        band = max(2, len(real) // 10)
        return {
            "dtw": dtw(real[:, 0], generated[:, 0], band=band),
            "hwd": hwd(real[:, 0], generated[:, 0]),
        }

    print("Running uncertainty-guided selection...")
    guided = run_active_learning(
        factory, subsets, evaluate, n_steps=4,
        strategy="uncertainty", epochs_per_step=3, mc_passes=3,
    )
    print("Running random selection (same starting subset)...")
    random_run = run_active_learning(
        factory, subsets, evaluate, n_steps=4,
        strategy="random", rng=np.random.default_rng(1), epochs_per_step=3,
    )

    rows = []
    for g_step, r_step in zip(guided.steps, random_run.steps):
        rows.append([
            f"{g_step.fraction_used:.0%}",
            g_step.metrics["dtw"], r_step.metrics["dtw"],
            g_step.metrics["hwd"], r_step.metrics["hwd"],
        ])
    print(format_table(
        ["data used", "dtw (guided)", "dtw (random)", "hwd (guided)", "hwd (random)"],
        rows,
        title="Held-out long-trajectory fidelity vs measurement data used",
    ))
    print(
        "\nReading the table: the guided column should reach its plateau with "
        "less data — the paper reports ~10% of data sufficing vs ~20% for "
        "random, i.e. up to 90% measurement efficiency."
    )


if __name__ == "__main__":
    main()
