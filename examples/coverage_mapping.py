#!/usr/bin/env python3
"""Coverage mapping: MDT/crowdsourcing sparsity vs GenDT-generated routes.

The paper motivates GenDT against user-device measurement collection: MDT
reports cluster where consenting users happen to be (spatial skew), and
crowdsourced apps sample coarsely.  With a generative model, the operator
chooses the routes — coverage follows measurement *need*.

This example builds RSRP coverage maps from (a) a skewed MDT campaign,
(b) a coarse crowdsourced campaign, and (c) GenDT pseudo-measurements over
systematic routes, and compares fill fraction and agreement with a dense
ground-truth map from the simulator.

Run:  python examples/coverage_mapping.py
"""

import numpy as np

from repro.core import GenDT, small_config
from repro.datasets import (
    build_coverage_map,
    crowdsourced_campaign,
    gendt_coverage_measurements,
    make_dataset_a,
    mdt_campaign,
    split_per_scenario,
    SparseMeasurements,
)
from repro.eval import format_table


def dense_ground_truth(dataset, rng, n_routes=14):
    """A dense reference map from many simulated drives (expensive in life)."""
    samples = None
    for k in range(n_routes):
        route = dataset.region.roads.random_walk_route(
            rng, 1500.0, city=dataset.region.cities[0].name
        )
        trajectory = dataset.region.roads.route_to_trajectory(
            route, 8.0, 2.0, scenario="truth", rng=rng
        )
        if len(trajectory) < 3:
            continue
        record = dataset.simulator.simulate(trajectory, rng)
        piece = SparseMeasurements(trajectory.lat, trajectory.lon, record.kpi["rsrp"])
        samples = piece if samples is None else samples.concat(piece)
    return samples


def main() -> None:
    print("Building the region and training a small GenDT...")
    dataset = make_dataset_a(seed=7, samples_per_scenario=700)
    split = split_per_scenario(dataset, 0.3, 200.0, np.random.default_rng(0))
    config = small_config(epochs=10, hidden_size=24, batch_len=25, train_step=5,
                          minibatch_windows=16)
    model = GenDT(dataset.region, kpis=["rsrp", "rsrq"], config=config, seed=1)
    model.fit(split.train)

    rng = np.random.default_rng(42)
    region = dataset.region
    print("Collecting the four measurement sources...")
    truth = dense_ground_truth(dataset, rng)
    mdt = mdt_campaign(region, rng, n_users=15, participation=0.4, hotspot_bias=0.9)
    crowd = crowdsourced_campaign(region, rng, n_users=25)
    gendt = gendt_coverage_measurements(model, region, rng, n_routes=10)

    maps = {
        "ground truth (dense)": build_coverage_map(region, truth, 300.0, 1500.0),
        "MDT (skewed users)": build_coverage_map(region, mdt, 300.0, 1500.0),
        "crowdsourced (coarse)": build_coverage_map(region, crowd, 300.0, 1500.0),
        "GenDT (chosen routes)": build_coverage_map(region, gendt, 300.0, 1500.0),
    }
    truth_map = maps["ground truth (dense)"]
    rows = []
    for name, cmap in maps.items():
        rows.append([
            name,
            len({"ground truth (dense)": truth, "MDT (skewed users)": mdt,
                 "crowdsourced (coarse)": crowd, "GenDT (chosen routes)": gendt}[name]),
            f"{cmap.fill_fraction:.0%}",
            cmap.error_vs(truth_map) if name != "ground truth (dense)" else 0.0,
        ])
    print(format_table(
        ["source", "samples", "map fill", "err vs truth (dB)"],
        rows,
        title="RSRP coverage maps from different measurement sources",
    ))
    print(
        "\nReading the table: the MDT map leaves pixels empty where no users "
        "went; GenDT fills the map from operator-chosen routes at comparable "
        "error, without any field measurement on those routes."
    )


if __name__ == "__main__":
    main()
