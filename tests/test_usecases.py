"""Downstream use cases: QoE prediction and handover analysis."""

import numpy as np
import pytest

from repro.usecases import (
    QoEPredictor,
    compare_handover_distributions,
    evaluate_qoe_prediction,
    handover_intervals_from_series,
    real_handover_intervals,
)


@pytest.fixture(scope="module")
def qoe_records(tiny_dataset_a):
    return tiny_dataset_a.records  # all carry QoE ground truth


@pytest.fixture(scope="module")
def qoe_predictor(qoe_records):
    predictor = QoEPredictor(kpi_names=("rsrp", "rsrq"), epochs=30, seed=0)
    predictor.fit(qoe_records[:9])
    return predictor


class TestQoEPredictor:
    def test_predict_shapes(self, qoe_predictor, qoe_records):
        record = qoe_records[-1]
        out = qoe_predictor.predict(record)
        assert out["throughput_mbps"].shape == (len(record),)
        assert out["per"].shape == (len(record),)

    def test_predictions_physical(self, qoe_predictor, qoe_records):
        out = qoe_predictor.predict(qoe_records[-1])
        assert np.all(out["throughput_mbps"] >= 0)
        assert np.all((out["per"] >= 0) & (out["per"] <= 1))

    def test_kpi_override_changes_prediction(self, qoe_predictor, qoe_records):
        record = qoe_records[-1]
        real = qoe_predictor.predict(record)
        shifted = record.kpi_matrix(["rsrp", "rsrq"]).copy()
        shifted[:, 0] -= 30.0  # much weaker signal
        degraded = qoe_predictor.predict(record, kpi_override=shifted)
        assert degraded["throughput_mbps"].mean() < real["throughput_mbps"].mean()

    def test_rsrp_matters_for_throughput(self, qoe_predictor, qoe_records):
        # The paper's Fig. 12a/b comparison: a predictor without RSRP/RSRQ
        # does clearly worse than one with them.
        test = qoe_records[-3:]
        blind = QoEPredictor(kpi_names=("rsrp", "rsrq"), epochs=30, seed=1)
        blind.fit(qoe_records[:9])
        with_kpis = evaluate_qoe_prediction(qoe_predictor, test)
        # Zero out the KPIs to emulate their exclusion.
        overrides = [np.zeros((len(r), 2)) for r in test]
        without_kpis = evaluate_qoe_prediction(blind, test, overrides)
        assert (
            without_kpis["throughput_mbps"]["mae"]
            > with_kpis["throughput_mbps"]["mae"]
        )

    def test_requires_fit(self, qoe_records):
        with pytest.raises(RuntimeError):
            QoEPredictor().predict(qoe_records[0])

    def test_requires_qoe_ground_truth(self, qoe_predictor, tiny_dataset_b):
        with pytest.raises(ValueError):
            qoe_predictor._targets(tiny_dataset_b.records[0])

    def test_evaluate_returns_all_metrics(self, qoe_predictor, qoe_records):
        out = evaluate_qoe_prediction(qoe_predictor, qoe_records[-2:])
        for target in ("throughput_mbps", "per"):
            assert set(out[target]) == {"mae", "dtw", "hwd"}


class TestHandoverAnalysis:
    def test_intervals_from_clean_series(self):
        series = np.array([1, 1, 1, 2, 2, 2, 3, 3, 3], dtype=float)
        t = np.arange(9.0)
        intervals = handover_intervals_from_series(series, t)
        np.testing.assert_allclose(intervals, [3.0])

    def test_flicker_filtered(self):
        # A single-sample flicker to another cell must not create two
        # extra handovers after the median filter.
        series = np.array([1, 1, 1, 1, 5, 1, 1, 1, 2, 2, 2, 2], dtype=float)
        t = np.arange(12.0)
        intervals = handover_intervals_from_series(series, t)
        assert len(intervals) == 0  # only one true handover -> no interval pair

    def test_continuous_values_snapped(self):
        series = np.array([1.1, 0.9, 1.2, 2.1, 1.8, 2.2], dtype=float)
        t = np.arange(6.0)
        intervals = handover_intervals_from_series(series, t)
        assert np.all(intervals >= 0)

    def test_real_intervals_pooled(self, tiny_dataset_a):
        intervals = real_handover_intervals(tiny_dataset_a.records)
        assert len(intervals) > 0
        assert np.all(intervals > 0)

    def test_comparison_hwd_small_for_identical(self, tiny_dataset_a):
        records = tiny_dataset_a.records[:4]
        generated = [r.serving_cell_id.astype(float) for r in records]
        comparison = compare_handover_distributions(records, generated)
        assert comparison.hwd < 3.0

    def test_comparison_detects_wrong_rate(self, tiny_dataset_a):
        records = tiny_dataset_a.records[:4]
        # Pathological generated series: handover every sample.
        generated = [
            np.arange(len(r), dtype=float) for r in records
        ]
        bad = compare_handover_distributions(records, generated)
        good = compare_handover_distributions(
            records, [r.serving_cell_id.astype(float) for r in records]
        )
        assert bad.hwd > good.hwd

    def test_cdf_monotone(self, tiny_dataset_a):
        records = tiny_dataset_a.records[:4]
        comparison = compare_handover_distributions(
            records, [r.serving_cell_id.astype(float) for r in records]
        )
        xs, cdf = comparison.cdf("real")
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_misaligned_inputs_rejected(self, tiny_dataset_a):
        with pytest.raises(ValueError):
            compare_handover_distributions(tiny_dataset_a.records[:2], [np.zeros(3)])
