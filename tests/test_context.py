"""Context pipeline: extraction, windowing, normalization."""

import numpy as np
import pytest

from repro.context import (
    CellFeatureTransform,
    ContextBuilder,
    ContextConfig,
    EnvFeatureNormalizer,
    EnvironmentContextExtractor,
    N_CELL_ATTRIBUTES,
    N_CELL_FEATURES,
    NetworkContextExtractor,
    TargetNormalizer,
    window_starts,
)


class TestWindowStarts:
    def test_exact_cover(self):
        assert window_starts(100, 50, 50) == [0, 50]

    def test_overlapping(self):
        starts = window_starts(100, 50, 10)
        assert starts[0] == 0
        assert starts[-1] == 50
        assert all(b - a == 10 for a, b in zip(starts[:-2], starts[1:-1]))

    def test_tail_anchored(self):
        starts = window_starts(103, 50, 50)
        assert starts[-1] == 53  # tail window covers the last samples

    def test_short_series(self):
        assert window_starts(30, 50, 10) == [0]

    def test_empty(self):
        assert window_starts(0, 50, 10) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            window_starts(100, 0, 10)
        with pytest.raises(ValueError):
            window_starts(100, 10, 0)


class TestNetworkContext:
    @pytest.fixture(scope="class")
    def extractor(self, small_region):
        return NetworkContextExtractor(small_region.deployment, d_s_m=1500.0)

    def test_distances_shape(self, extractor, sample_trajectory, small_region):
        d = extractor.distances(sample_trajectory)
        assert d.shape == (len(sample_trajectory), len(small_region.deployment))

    def test_window_cells_within_ds(self, extractor, sample_trajectory):
        distances = extractor.distances(sample_trajectory)
        cells = extractor.window_cells(distances, 0, 30)
        assert len(cells) > 0
        block = distances[0:30][:, cells]
        assert (block <= 1500.0).any(axis=0).all()

    def test_max_cells_cap(self, extractor, sample_trajectory):
        distances = extractor.distances(sample_trajectory)
        cells = extractor.window_cells(distances, 0, 30, max_cells=3)
        assert len(cells) <= 3

    def test_cells_sorted_by_mean_distance(self, extractor, sample_trajectory):
        distances = extractor.distances(sample_trajectory)
        cells = extractor.window_cells(distances, 0, 30)
        means = distances[0:30][:, cells].mean(axis=0)
        assert np.all(np.diff(means) >= 0)

    def test_window_features_schema(self, extractor, sample_trajectory):
        distances = extractor.distances(sample_trajectory)
        cells = extractor.window_cells(distances, 0, 20, max_cells=4)
        features = extractor.window_features(sample_trajectory, distances, cells, 0, 20)
        assert features.shape == (20, len(cells), N_CELL_ATTRIBUTES)
        # Static attributes constant over the window; distance varies.
        assert np.all(features[0, :, 0] == features[-1, :, 0])  # lat
        assert np.all(features[:, :, 4] >= 0)                   # distance

    def test_invalid_ds(self, small_region):
        with pytest.raises(ValueError):
            NetworkContextExtractor(small_region.deployment, d_s_m=0.0)


class TestEnvironmentContext:
    def test_features_shape(self, small_region, sample_trajectory):
        extractor = EnvironmentContextExtractor(small_region)
        env = extractor.features(sample_trajectory)
        assert env.shape == (len(sample_trajectory), 26)
        # Land-use fractions sum to ~1.
        np.testing.assert_allclose(env[:, :12].sum(axis=1), 1.0, atol=1e-6)
        assert np.all(env[:, 12:] >= 0)  # PoI counts

    def test_cache_effective(self, small_region, sample_trajectory):
        extractor = EnvironmentContextExtractor(small_region)
        extractor.features(sample_trajectory)
        n_cache = len(extractor._cache)
        assert n_cache < len(sample_trajectory)  # nearby samples share entries


class TestContextBuilder:
    @pytest.fixture(scope="class")
    def builder(self, small_region):
        return ContextBuilder(small_region, ContextConfig(max_cells=5))

    def test_training_windows(self, builder, sample_record):
        windows = builder.training_windows([sample_record], ["rsrp", "rsrq"], 30, 10)
        assert len(windows) > 2
        w = windows[0]
        assert w.cell_features.shape[0] == 30
        assert w.cell_features.shape[2] == N_CELL_ATTRIBUTES
        assert w.env_features.shape == (30, 26)
        assert w.target.shape == (30, 2)
        assert len(w.ue_lat) == 30

    def test_generation_windows_cover_everything(self, builder, sample_trajectory):
        windows = builder.generation_windows(sample_trajectory, 30)
        covered = np.zeros(len(sample_trajectory), dtype=bool)
        for w in windows:
            covered[w.start : w.start + w.length] = True
        assert covered.all()

    def test_target_alignment(self, builder, sample_record):
        windows = builder.training_windows([sample_record], ["rsrp"], 25, 25)
        full = sample_record.kpi["rsrp"]
        for w in windows:
            np.testing.assert_allclose(w.target[:, 0], full[w.start : w.start + 25])

    def test_misaligned_target_rejected(self, builder, sample_trajectory):
        with pytest.raises(ValueError):
            builder.windows_for_trajectory(
                sample_trajectory, 30, 10, target_matrix=np.zeros((5, 2))
            )


class TestNormalizers:
    def test_cell_transform_shape(self, small_region, sample_record):
        builder = ContextBuilder(small_region, ContextConfig(max_cells=5))
        window = builder.training_windows([sample_record], ["rsrp"], 20, 20)[0]
        transform = CellFeatureTransform(small_region.frame)
        out = transform(window, window.ue_lat, window.ue_lon)
        assert out.shape == (20, window.n_cells, N_CELL_FEATURES)
        # sin/cos columns bounded.
        assert np.all(np.abs(out[:, :, 3:5]) <= 1.0 + 1e-9)
        # distance column in km, consistent with the raw attribute.
        np.testing.assert_allclose(
            out[:, :, 5], window.cell_features[:, :, 4] / 1000.0
        )

    def test_env_normalizer_round_trip_properties(self, rng):
        raw = np.abs(rng.normal(size=(100, 26)))
        raw[:, :12] /= raw[:, :12].sum(axis=1, keepdims=True)
        norm = EnvFeatureNormalizer().fit(raw)
        out = norm(raw)
        assert out.shape == raw.shape
        # PoI columns are z-scored after log1p.
        assert np.abs(out[:, 12:].mean(axis=0)).max() < 1e-6

    def test_env_normalizer_requires_fit(self):
        with pytest.raises(RuntimeError):
            EnvFeatureNormalizer()(np.zeros((1, 26)))

    def test_env_normalizer_state_round_trip(self, rng):
        raw = np.abs(rng.normal(size=(50, 26)))
        norm = EnvFeatureNormalizer().fit(raw)
        restored = EnvFeatureNormalizer.from_state(norm.state())
        np.testing.assert_allclose(restored(raw), norm(raw))

    def test_target_normalizer_round_trip(self, rng):
        data = rng.normal(loc=[-90, -12], scale=[10, 2], size=(500, 2))
        norm = TargetNormalizer().fit(data)
        z = norm.normalize(data)
        assert np.abs(z.mean(axis=0)).max() < 1e-9
        np.testing.assert_allclose(norm.denormalize(z), data)

    def test_target_normalizer_state(self, rng):
        data = rng.normal(size=(100, 3))
        norm = TargetNormalizer().fit(data)
        restored = TargetNormalizer.from_state(norm.state())
        np.testing.assert_allclose(restored.normalize(data), norm.normalize(data))

    def test_target_normalizer_requires_fit(self):
        with pytest.raises(RuntimeError):
            TargetNormalizer().normalize(np.zeros((1, 2)))
