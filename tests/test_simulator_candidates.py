"""Candidate-cell discovery and simulator invariants."""

import numpy as np
import pytest

from repro.radio import DriveTestSimulator


class TestCandidateCells:
    def test_candidates_sorted_by_id(self, small_simulator, sample_trajectory):
        cells = small_simulator.candidate_cells(sample_trajectory)
        ids = [c.cell_id for c in cells]
        assert ids == sorted(ids)

    def test_candidates_cover_route_endpoints(self, small_simulator, sample_trajectory, small_region):
        cells = small_simulator.candidate_cells(sample_trajectory)
        cell_ids = {c.cell_id for c in cells}
        for k in (0, len(sample_trajectory) - 1):
            nearest = small_region.deployment.visible_cells(
                sample_trajectory.lat[k], sample_trajectory.lon[k], 1000.0
            )
            if nearest:
                assert nearest[0][0].cell_id in cell_ids

    def test_stride_sampling_stable(self, small_region, sample_trajectory):
        """Candidate sets from dense and strided sampling agree closely."""
        sim = DriveTestSimulator(small_region, candidate_range_m=2000.0)
        dense = sim.candidate_cells(sample_trajectory.resample(0.5))
        coarse = sim.candidate_cells(sample_trajectory)
        dense_ids = {c.cell_id for c in dense}
        coarse_ids = {c.cell_id for c in coarse}
        # Strided discovery may miss only marginal far cells.
        assert len(coarse_ids & dense_ids) >= 0.85 * len(dense_ids)


class TestRecordInvariants:
    def test_rsrq_respects_definition_bound(self, sample_record):
        # RSRQ <= -10*log10(12) (full-allocation bound) by construction.
        assert np.all(sample_record.kpi["rsrq"] <= -10 * np.log10(12.0) + 1e-6)

    def test_rssi_stronger_than_rsrp(self, sample_record):
        # Wideband power across 600 REs always exceeds the per-RE RSRP.
        assert np.all(sample_record.kpi["rssi"] > sample_record.kpi["rsrp"])

    def test_cqi_consistent_with_sinr(self, sample_record):
        from repro.radio import cqi_from_sinr

        expected = cqi_from_sinr(sample_record.kpi["sinr"])
        np.testing.assert_allclose(sample_record.kpi["cqi"], expected)

    def test_serving_cell_is_strongest_modulo_hysteresis(self, sample_record):
        # The serving cell's RSRP stays within hysteresis+ttt slack of the
        # maximum visible RSRP most of the time.  We can't recompute the
        # full matrix here, but the serving RSRP must stay in a sane band.
        rsrp = sample_record.kpi["rsrp"]
        assert rsrp.max() - rsrp.min() < 80.0

    def test_qoe_and_kpi_lengths_match(self, sample_record):
        for series in sample_record.qoe.values():
            assert len(series) == len(sample_record)
        assert len(sample_record.serving_load) == len(sample_record)
