"""Tests for the project lint engine (repro.analysis).

One positive + one suppressed case per rule, engine mechanics (syntax
errors, rule selection, CLI driver), and the self-lint gate asserting the
repository's own ``src/`` tree is clean.
"""

from pathlib import Path

import pytest

from repro.analysis import RULES, lint_file, lint_paths, main, suppressed_rules

SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def lint_snippet(tmp_path, code, name="snippet.py", select=None):
    path = tmp_path / name
    path.write_text(code, encoding="utf-8")
    return lint_file(path, select=select)


def rule_ids(violations):
    return [v.rule for v in violations]


class TestRNG001:
    def test_flags_global_state_call(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "x = np.random.normal(size=3)\n",
        )
        assert rule_ids(violations) == ["RNG001"]
        assert violations[0].line == 2

    def test_flags_legacy_import(self, tmp_path):
        violations = lint_snippet(tmp_path, "from numpy.random import rand\n")
        assert rule_ids(violations) == ["RNG001"]

    def test_allows_generator_api(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def f(seed):\n"
            "    rng = np.random.default_rng(seed)\n"
            "    return rng.normal(size=3)\n",
        )
        assert violations == []

    def test_suppressed(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "x = np.random.normal(size=3)  # repro: noqa[RNG001]\n",
        )
        assert violations == []


class TestEXC001:
    def test_flags_silent_broad_handler(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "try:\n    work()\nexcept Exception:\n    pass\n",
        )
        assert rule_ids(violations) == ["EXC001"]

    def test_flags_bare_except(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "try:\n    work()\nexcept:\n    result = None\n",
        )
        assert rule_ids(violations) == ["EXC001"]

    def test_reraise_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "try:\n    work()\nexcept Exception as exc:\n    raise\n",
        )
        assert violations == []

    def test_routing_through_taxonomy_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "from repro.runtime.errors import MeasurementError\n"
            "try:\n    work()\n"
            "except Exception as exc:\n"
            "    raise MeasurementError(str(exc)) from exc\n",
        )
        assert violations == []

    def test_narrow_handler_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "try:\n    work()\nexcept ValueError:\n    pass\n",
        )
        assert violations == []

    def test_suppressed(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "try:\n    work()\nexcept Exception:  # repro: noqa[EXC001]\n    pass\n",
        )
        assert violations == []


class TestTEN001:
    def test_flags_data_mutation(self, tmp_path):
        violations = lint_snippet(
            tmp_path, "def f(t):\n    t.data[0] = 1.0\n"
        )
        assert rule_ids(violations) == ["TEN001"]

    def test_flags_grad_assignment(self, tmp_path):
        violations = lint_snippet(
            tmp_path, "def f(t, g):\n    t.grad = g\n"
        )
        assert rule_ids(violations) == ["TEN001"]

    def test_exempt_inside_repro_nn(self, tmp_path):
        nn_dir = tmp_path / "repro" / "nn"
        nn_dir.mkdir(parents=True)
        path = nn_dir / "optim.py"
        path.write_text("def f(t):\n    t.data[0] = 1.0\n", encoding="utf-8")
        assert lint_file(path) == []

    def test_own_attribute_definition_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "class Box:\n    def __init__(self, data):\n        self.data = data\n",
        )
        assert violations == []

    def test_suppressed(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "def f(t):\n    t.grad[...] = 0.0  # repro: noqa[TEN001]\n",
        )
        assert violations == []


class TestSEED001:
    def test_flags_seedless_entry_point(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def make_data():\n"
            "    rng = np.random.default_rng()\n"
            "    return rng.normal(size=4)\n",
        )
        assert rule_ids(violations) == ["SEED001"]

    def test_seed_parameter_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def make_data(seed=0):\n"
            "    return np.random.default_rng(seed).normal(size=4)\n",
        )
        assert violations == []

    def test_self_seed_attribute_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "class M:\n"
            "    def __post_init__(self):\n"
            "        self.rng = np.random.default_rng(self.seed)\n",
        )
        assert violations == []

    def test_flags_module_level_rng(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\nRNG = np.random.default_rng(0)\n",
        )
        assert rule_ids(violations) == ["SEED001"]

    def test_suppressed(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def make_data():\n"
            "    return np.random.default_rng().normal(size=4)  # repro: noqa[SEED001]\n",
        )
        assert violations == []


class TestFLT001:
    def test_flags_tensor_data_comparison(self, tmp_path):
        violations = lint_snippet(
            tmp_path, "def same(a, b):\n    return a.data == b.data\n"
        )
        assert rule_ids(violations) == ["FLT001"]

    def test_flags_numpy_call_comparison(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def f(x, y):\n    return np.abs(x) != y\n",
        )
        assert rule_ids(violations) == ["FLT001"]

    def test_scalar_reduction_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def f(x):\n    return np.sum(x) == 0\n",
        )
        assert violations == []

    def test_ordering_comparison_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def f(x):\n    return np.abs(x) > 0\n",
        )
        assert violations == []

    def test_suppressed(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "def f(ids):\n"
            "    return np.diff(ids) != 0  # repro: noqa[FLT001]\n",
        )
        assert violations == []


class TestGRD001:
    def test_flags_requires_grad_inside_no_grad(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "from repro import nn\n"
            "def f(x):\n"
            "    with nn.no_grad():\n"
            "        t = nn.Tensor(x, requires_grad=True)\n"
            "    return t\n",
        )
        assert rule_ids(violations) == ["GRD001"]

    def test_flags_attribute_assignment(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "from repro.nn import no_grad\n"
            "def f(t):\n"
            "    with no_grad():\n"
            "        t.requires_grad = True\n",
        )
        assert rule_ids(violations) == ["GRD001"]

    def test_outside_no_grad_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "from repro import nn\n"
            "def f(x):\n"
            "    return nn.Tensor(x, requires_grad=True)\n",
        )
        assert violations == []

    def test_suppressed(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "from repro import nn\n"
            "def f(x):\n"
            "    with nn.no_grad():\n"
            "        return nn.Tensor(x, requires_grad=True)  # repro: noqa[GRD001]\n",
        )
        assert violations == []


class TestRTY001:
    def _serving_file(self, tmp_path, code):
        package = tmp_path / "repro" / "serving"
        package.mkdir(parents=True)
        path = package / "module.py"
        path.write_text(code, encoding="utf-8")
        return lint_file(path)

    def test_flags_time_sleep_in_serving(self, tmp_path):
        violations = self._serving_file(
            tmp_path,
            "import time\n\n\ndef cool_down():\n    time.sleep(1.0)\n",
        )
        assert rule_ids(violations) == ["RTY001"]
        assert violations[0].line == 5

    def test_flags_wall_clock_read_in_serving(self, tmp_path):
        violations = self._serving_file(
            tmp_path,
            "import time\n\n\ndef now():\n    return time.time()\n",
        )
        assert rule_ids(violations) == ["RTY001"]

    def test_flags_sleep_import_in_serving(self, tmp_path):
        violations = self._serving_file(
            tmp_path, "from time import sleep\n"
        )
        assert rule_ids(violations) == ["RTY001"]

    def test_outside_serving_is_fine(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import time\n\n\ndef cool_down():\n    time.sleep(1.0)\n",
        )
        assert "RTY001" not in rule_ids(violations)

    def test_injectable_contract_is_fine(self, tmp_path):
        violations = self._serving_file(
            tmp_path,
            "import time\n"
            "from repro.runtime.retry import REAL_SLEEP\n"
            "\n"
            "\n"
            "def make(clock=time.monotonic, sleep=REAL_SLEEP):\n"
            "    return clock, sleep\n",
        )
        assert violations == []

    def test_suppressed(self, tmp_path):
        violations = self._serving_file(
            tmp_path,
            "import time\n\n\ndef f():\n"
            "    time.sleep(0.1)  # repro: noqa[RTY001]\n",
        )
        assert violations == []


class TestEngine:
    def test_syntax_error_reported_not_raised(self, tmp_path):
        violations = lint_snippet(tmp_path, "def broken(:\n")
        assert rule_ids(violations) == ["E999"]

    def test_blanket_noqa_suppresses_all(self, tmp_path):
        violations = lint_snippet(
            tmp_path,
            "import numpy as np\n"
            "x = np.random.normal(size=3)  # repro: noqa\n",
        )
        assert violations == []

    def test_select_restricts_rules(self, tmp_path):
        code = (
            "import numpy as np\n"
            "x = np.random.normal(size=3)\n"
            "try:\n    work()\nexcept Exception:\n    pass\n"
        )
        assert rule_ids(lint_snippet(tmp_path, code, select=["EXC001"])) == ["EXC001"]
        assert len(lint_snippet(tmp_path, code)) == 2

    def test_suppressed_rules_parsing(self):
        assert suppressed_rules("x = 1") is None
        assert suppressed_rules("x = 1  # repro: noqa") == set()
        assert suppressed_rules("x = 1  # repro: noqa[RNG001, EXC001]") == {
            "RNG001",
            "EXC001",
        }

    def test_violation_format_has_location_and_rule(self, tmp_path):
        violation = lint_snippet(
            tmp_path, "import numpy as np\nx = np.random.rand(3)\n"
        )[0]
        text = violation.format()
        assert "snippet.py:2:" in text and "RNG001" in text

    def test_registry_has_all_documented_rules(self):
        assert {
            "RNG001", "EXC001", "TEN001", "SEED001", "FLT001", "GRD001", "RTY001"
        } <= set(RULES)

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n", encoding="utf-8")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("import numpy as np\nx = np.random.rand(2)\n", encoding="utf-8")

        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "RNG001" in out and "dirty.py:2" in out
        assert main(["--list-rules"]) == 0
        assert main([str(dirty), "--select", "NOPE001"]) == 2
        assert main([str(tmp_path / "missing.txt")]) == 2


class TestSelfLint:
    def test_src_tree_is_clean(self):
        violations = lint_paths([SRC_DIR])
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_seeded_violation_is_caught_in_src_style_tree(self, tmp_path):
        # End-to-end guard for the CI gate: a violation planted in a tree
        # must surface with rule ID and file:line, and flip the exit code.
        bad = tmp_path / "planted.py"
        bad.write_text(
            "import numpy as np\n\n\ndef entry():\n    np.random.seed(0)\n",
            encoding="utf-8",
        )
        assert main([str(tmp_path)]) == 1
