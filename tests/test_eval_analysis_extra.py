"""Extra coverage for the analysis helpers and fidelity result store."""

import numpy as np
import pytest

from repro.eval import FidelityResult, GenerationEnvelope, stitched_generation
from repro.geo import Trajectory


class TestFidelityResultStore:
    def test_get_and_average(self):
        result = FidelityResult(method="m")
        result.per_scenario = {
            "a": {"rsrp": {"mae": 2.0, "dtw": 1.0, "hwd": 0.5}},
            "b": {"rsrp": {"mae": 4.0, "dtw": 3.0, "hwd": 1.5}},
        }
        assert result.get("a", "rsrp", "mae") == 2.0
        assert result.average("rsrp", "mae") == pytest.approx(3.0)
        assert result.scenarios() == ["a", "b"]

    def test_average_skips_missing_scenario_kpis(self):
        result = FidelityResult(method="m")
        result.per_scenario = {
            "a": {"rsrp": {"mae": 2.0}},
            "b": {"rsrq": {"mae": 10.0}},
        }
        assert result.average("rsrp", "mae") == 2.0


class TestEnvelopeEdge:
    def test_single_sample_envelope_degenerate(self, rng):
        real = rng.normal(size=50)
        sample = real[None] + 0.1
        env = GenerationEnvelope(real=real, samples=sample)
        np.testing.assert_allclose(env.lower, env.upper)
        assert env.coverage() == 0.0  # offset sample never brackets truth

    def test_wide_envelope_full_coverage(self, rng):
        real = rng.normal(size=50)
        samples = np.stack([real - 10.0, real + 10.0])
        env = GenerationEnvelope(real=real, samples=samples)
        assert env.coverage() == 1.0


class TestStitchedGenerationEdge:
    def _traj(self, n: int, dt: float = 1.0) -> Trajectory:
        return Trajectory(
            np.arange(n) * dt,
            51.5 + np.arange(n) * 1e-5,
            np.full(n, -0.1),
            "syn",
        )

    def test_segment_longer_than_series(self):
        traj = self._traj(20)
        calls = []

        def generate(piece):
            calls.append(len(piece))
            return np.zeros((len(piece), 1))

        out = stitched_generation(generate, traj, segment_s=1000.0)
        assert out.shape == (20, 1)
        assert calls == [20]

    def test_exact_multiple_segments(self):
        traj = self._traj(30)
        calls = []

        def generate(piece):
            calls.append(len(piece))
            return np.zeros((len(piece), 2))

        out = stitched_generation(generate, traj, segment_s=10.0)
        assert out.shape == (30, 2)
        assert calls == [10, 10, 10]

    def test_each_segment_time_rebased(self):
        traj = self._traj(20)
        starts = []

        def generate(piece):
            starts.append(float(piece.t[0]))
            return np.zeros((len(piece), 1))

        stitched_generation(generate, traj, segment_s=5.0)
        assert all(s == 0.0 for s in starts)  # independent short trajectories
