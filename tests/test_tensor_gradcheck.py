"""Finite-difference gradcheck for every differentiable op in repro.nn.tensor.

The symbolic verifier (repro.analysis.graph) carries its own table of which
ops propagate gradients (``DIFFERENTIABLE_OPS``).  This suite does two
things:

* checks each op's analytic backward against a central-difference numeric
  gradient, and
* asserts the gradcheck case table covers *exactly* the symbolic op table,
  so adding an op to one without the other fails loudly instead of letting
  the two drift apart.

Inputs are chosen away from kinks (relu/abs at 0, clip at its bounds) so
the central difference is valid.
"""

import numpy as np
import pytest

from repro.analysis.graph.symbolic import DIFFERENTIABLE_OPS, NON_DIFFERENTIABLE_OPS
from repro.nn.tensor import Tensor, concat, no_grad, stack, where

EPS = 1e-6
ATOL = 1e-4
RTOL = 1e-4

# Fixed boolean mask for the `where` case (shape (2, 3)).
_WHERE_COND = np.array([[True, False, True], [False, True, False]])


def _weights(shape):
    """Deterministic non-uniform loss weights so gradcheck isn't just sum()."""
    n = int(np.prod(shape, dtype=int))
    return (np.arange(n, dtype=np.float64) * 0.173 + 0.31).reshape(shape)


def _smooth(shape, seed, lo=-1.5, hi=1.5):
    rng = np.random.default_rng(seed)
    return rng.uniform(lo, hi, size=shape)


def _away_from_zero(shape, seed, margin=0.25):
    """Values with |x| >= margin — safe for relu/abs/leaky_relu kinks."""
    data = _smooth(shape, seed)
    return np.where(data >= 0, data + margin, data - margin)


def _positive(shape, seed, lo=0.3, hi=2.0):
    return _smooth(shape, seed, lo, hi)


class Case:
    def __init__(self, make_inputs, fn):
        self.make_inputs = make_inputs
        self.fn = fn


CASES = {
    "add": Case(
        lambda: [_smooth((2, 3), 1), _smooth((3,), 2)],
        lambda a, b: a + b,
    ),
    "neg": Case(lambda: [_smooth((2, 3), 3)], lambda a: -a),
    "sub": Case(
        lambda: [_smooth((2, 3), 4), _smooth((1, 3), 5)],
        lambda a, b: a - b,
    ),
    "mul": Case(
        lambda: [_smooth((2, 3), 6), _smooth((2, 1), 7)],
        lambda a, b: a * b,
    ),
    "div": Case(
        lambda: [_smooth((2, 3), 8), _positive((3,), 9)],
        lambda a, b: a / b,
    ),
    "pow": Case(lambda: [_positive((2, 3), 10)], lambda a: a**1.7),
    "sqrt": Case(lambda: [_positive((2, 3), 11)], lambda a: a.sqrt()),
    "matmul": Case(
        lambda: [_smooth((2, 3), 12), _smooth((3, 4), 13)],
        lambda a, b: a @ b,
    ),
    "exp": Case(lambda: [_smooth((2, 3), 14)], lambda a: a.exp()),
    "log": Case(lambda: [_positive((2, 3), 15)], lambda a: a.log()),
    "tanh": Case(lambda: [_smooth((2, 3), 16)], lambda a: a.tanh()),
    "sigmoid": Case(lambda: [_smooth((2, 3), 17)], lambda a: a.sigmoid()),
    "relu": Case(lambda: [_away_from_zero((2, 3), 18)], lambda a: a.relu()),
    "leaky_relu": Case(
        lambda: [_away_from_zero((2, 3), 19)],
        lambda a: a.leaky_relu(negative_slope=0.1),
    ),
    "softplus": Case(lambda: [_smooth((2, 3), 20)], lambda a: a.softplus()),
    "abs": Case(lambda: [_away_from_zero((2, 3), 21)], lambda a: a.abs()),
    "clip": Case(
        # Data in (-1.5, 1.5) minus (-0.1, 0.1); bounds at ±0.9 leave every
        # sample at least 0.15 from a clip kink for seed 22.
        lambda: [_away_from_zero((2, 3), 22)],
        lambda a: a.clip(-0.9, 0.9),
    ),
    "sum": Case(lambda: [_smooth((2, 3, 4), 23)], lambda a: a.sum(axis=1)),
    "mean": Case(
        lambda: [_smooth((2, 3, 4), 24)],
        lambda a: a.mean(axis=0, keepdims=True),
    ),
    "var": Case(lambda: [_smooth((2, 5), 25)], lambda a: a.var(axis=1)),
    "reshape": Case(lambda: [_smooth((2, 6), 26)], lambda a: a.reshape(3, 4)),
    "transpose": Case(
        lambda: [_smooth((2, 3, 4), 27)], lambda a: a.transpose(2, 0, 1)
    ),
    "getitem": Case(lambda: [_smooth((4, 5), 28)], lambda a: a[1:3, ::2]),
    "concat": Case(
        lambda: [_smooth((2, 3), 29), _smooth((2, 2), 30)],
        lambda a, b: concat([a, b], axis=1),
    ),
    "stack": Case(
        lambda: [_smooth((2, 3), 31), _smooth((2, 3), 32)],
        lambda a, b: stack([a, b], axis=1),
    ),
    "where": Case(
        lambda: [_smooth((2, 3), 33), _smooth((2, 3), 34)],
        lambda a, b: where(_WHERE_COND, a, b),
    ),
}


def test_case_table_matches_symbolic_op_table():
    # The anti-drift contract: every op the symbolic tracer claims is
    # differentiable has a gradcheck, and vice versa.
    assert set(CASES) == set(DIFFERENTIABLE_OPS)
    assert "detach" in NON_DIFFERENTIABLE_OPS
    assert not set(CASES) & set(NON_DIFFERENTIABLE_OPS)


def _numeric_grad(fn, arrays, arg_index, weights):
    """Central-difference gradient of sum(fn(*arrays) * weights) wrt one arg."""

    def loss(candidate_arrays):
        with no_grad():
            out = fn(*[Tensor(arr) for arr in candidate_arrays])
        return float((out.numpy() * weights).sum())

    target = arrays[arg_index]
    grad = np.zeros_like(target, dtype=np.float64)
    for idx in np.ndindex(target.shape):
        bumped = [arr.copy() for arr in arrays]
        bumped[arg_index][idx] = target[idx] + EPS
        hi = loss(bumped)
        bumped[arg_index][idx] = target[idx] - EPS
        lo = loss(bumped)
        grad[idx] = (hi - lo) / (2 * EPS)
    return grad


@pytest.mark.parametrize("op_name", sorted(CASES))
def test_backward_matches_finite_difference(op_name):
    case = CASES[op_name]
    arrays = case.make_inputs()
    tensors = [Tensor(arr.copy(), requires_grad=True) for arr in arrays]
    out = case.fn(*tensors)
    weights = _weights(out.shape)
    (out * Tensor(weights)).sum().backward()
    for i, (tensor, arr) in enumerate(zip(tensors, arrays)):
        assert tensor.grad is not None, f"{op_name}: arg {i} got no gradient"
        numeric = _numeric_grad(case.fn, arrays, i, weights)
        np.testing.assert_allclose(
            tensor.grad,
            numeric,
            rtol=RTOL,
            atol=ATOL,
            err_msg=f"{op_name}: analytic grad of arg {i} != finite difference",
        )


def test_detach_blocks_gradients():
    a = Tensor(_smooth((2, 3), 40), requires_grad=True)
    b = Tensor(_smooth((2, 3), 41), requires_grad=True)
    (a.detach() * b).sum().backward()
    # b sees the detached values as constants; a's path is severed.
    assert a.grad is None
    np.testing.assert_allclose(b.grad, a.numpy())
