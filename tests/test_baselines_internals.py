"""Baseline internals: context encoding, DG components, FDaS candidates."""

import numpy as np
import pytest

from repro.baselines import FDaS, MLPBaseline
from repro.baselines.doppelganger import _DGDiscriminator, _DGGenerator
from repro.baselines.fdas import _CANDIDATES, fit_best_distribution
from repro.radio import KPI, KpiSpec
from repro import nn


class TestContextEncoding:
    @pytest.fixture(scope="class")
    def encoder(self, tiny_dataset_a):
        model = MLPBaseline(tiny_dataset_a.region, kpis=["rsrp"], max_cells=4)
        return model

    def test_flat_feature_width(self, encoder):
        assert encoder.n_flat_features == 4 * 6 + 26

    def test_trajectory_features_shape(self, encoder, tiny_dataset_a, tiny_split):
        encoder._fit_normalizers(tiny_split.train[:2])
        traj = tiny_split.train[0].trajectory
        features = encoder.trajectory_features(traj)
        assert features.shape == (len(traj), encoder.n_flat_features)
        assert np.all(np.isfinite(features))

    def test_padding_when_few_cells(self, encoder, tiny_dataset_a, tiny_split):
        # max_cells=4 > visible count should zero-pad, not crash.
        encoder._fit_normalizers(tiny_split.train[:2])
        traj = tiny_split.train[0].trajectory
        features = encoder.trajectory_features(traj)
        # Cell features occupy the first 24 columns; the padded tail of the
        # nearest-cell block stays finite.
        assert np.isfinite(features[:, :24]).all()

    def test_clip_delegates_to_kpi_spec(self, encoder):
        out = encoder.clip(np.array([[-500.0]]))
        assert out[0, 0] == -140.0


class TestFDaSInternals:
    def test_candidate_family_is_reasonable(self):
        assert "norm" in _CANDIDATES
        assert len(_CANDIDATES) >= 3

    def test_picks_skewed_family_for_skewed_data(self, rng):
        # Gumbel-left-skewed data should not be fit best by a pure normal.
        from scipy import stats

        data = stats.gumbel_l.rvs(loc=-90, scale=5, size=4000, random_state=rng)
        fit = fit_best_distribution(data)
        sample = fit.sample(4000, rng)
        # Whatever family won, the sample skewness must match in sign.
        assert np.sign(stats.skew(sample)) == np.sign(stats.skew(data))

    def test_fitted_distribution_reproducible(self, rng):
        data = rng.normal(-90, 8, size=2000)
        fit = fit_best_distribution(data)
        s1 = fit.sample(100, np.random.default_rng(0))
        s2 = fit.sample(100, np.random.default_rng(0))
        np.testing.assert_allclose(s1, s2)


class TestDGComponents:
    def test_generator_shapes(self):
        rng = np.random.default_rng(0)
        gen = _DGGenerator(n_meta=6, n_noise=3, hidden=8, n_channels=2, rng=rng)
        out = gen(np.zeros((4, 6)), length=10)
        assert out.shape == (4, 10, 2)

    def test_generator_noise_drives_variation(self):
        rng = np.random.default_rng(0)
        gen = _DGGenerator(n_meta=2, n_noise=3, hidden=8, n_channels=1, rng=rng)
        meta = np.zeros((1, 2))
        with nn.no_grad():
            a = gen(meta, 10).numpy()
            b = gen(meta, 10).numpy()
        assert not np.allclose(a, b)

    def test_discriminator_shapes(self):
        rng = np.random.default_rng(0)
        disc = _DGDiscriminator(n_meta=6, n_channels=2, hidden=8, rng=rng)
        logits = disc(nn.Tensor(np.zeros((4, 10, 2))), np.zeros((4, 6)))
        assert logits.shape == (4, 1)


class TestKpiSpecRssi:
    def test_rssi_channel_supported(self):
        spec = KpiSpec(["rsrp", "rssi"])
        assert spec.n_channels == 2
        clipped = spec.clip(np.array([[-200.0, 5.0]]))
        assert clipped[0, 0] == -140.0
        assert clipped[0, 1] == -10.0

    def test_rssi_generation_end_to_end(self, tiny_dataset_a, tiny_split):
        from repro.core import GenDT, small_config

        config = small_config(epochs=1, hidden_size=8, batch_len=15, train_step=15)
        model = GenDT(
            tiny_dataset_a.region, kpis=["rsrp", "rssi"], config=config, seed=0
        )
        model.fit(tiny_split.train[:2])
        out = model.generate(tiny_split.test[0].trajectory)
        assert out.shape[1] == 2
        assert np.all(out[:, 1] >= -113.0)
