"""GenDT generator assembly, training, high-level API."""

import numpy as np
import pytest

from repro.core import GenDT, GenDTGenerator, WindowAssembler, small_config
from repro.core.features import ModelBatch


class TestGeneratorAssembly:
    @pytest.fixture(scope="class")
    def batch(self, trained_gendt, tiny_split):
        windows = trained_gendt.build_training_windows(tiny_split.train[:1])[:3]
        return trained_gendt._assembler().assemble(windows, with_target=True)

    def test_batch_shapes(self, batch, trained_gendt):
        assert batch.cell_x.shape[1] == trained_gendt.config.max_cells
        assert batch.cell_x.shape[3] == 6
        assert batch.env.shape[2] == 28  # 26 env attributes + 2 kinematic
        assert batch.target.shape[2] == 2
        assert batch.cell_mask.shape == batch.cell_x.shape[:2]

    def test_mask_marks_real_cells(self, batch):
        assert np.all((batch.cell_mask == 0) | (batch.cell_mask == 1))
        assert batch.cell_mask.sum() > 0
        # Padded rows are all-zero features.
        for i in range(batch.n_windows):
            for j in range(batch.cell_x.shape[1]):
                if batch.cell_mask[i, j] == 0:
                    assert np.all(batch.cell_x[i, j] == 0)

    def test_h_avg_shape(self, batch, trained_gendt):
        h = trained_gendt.generator.h_avg(batch)
        assert h.shape == (batch.n_windows, batch.length, trained_gendt.config.hidden_size)

    def test_teacher_forced_output(self, batch, trained_gendt):
        out = trained_gendt.generator.forward_teacher_forced(batch)
        assert out["output"].shape == batch.target.shape
        assert "mu" in out and "log_sigma" in out

    def test_generate_batch_autoregressive_state(self, batch, trained_gendt):
        gen = trained_gendt.generator
        m = gen.resgen.ar_window
        out, state, params = gen.generate_batch(batch, collect_params=True)
        assert out.shape == batch.target.shape
        assert state.shape == (batch.n_windows, m, 2)
        # AR state carries the recent residuals; bounded by the safety clip.
        assert np.all(np.abs(state) <= 5.0)
        assert params["mu"].shape == out.shape
        assert np.all(params["sigma"] > 0)

    def test_empty_assembly_rejected(self, trained_gendt):
        with pytest.raises(ValueError):
            trained_gendt._assembler().assemble([], with_target=True)


class TestTraining:
    def test_loss_decreases(self, trained_gendt):
        history = trained_gendt.trainer.history
        assert len(history.mse) >= 3
        assert history.mse[-1] < history.mse[0]

    def test_history_records_all_terms(self, trained_gendt):
        last = trained_gendt.trainer.history.last()
        for key in ("total", "mse", "adv", "disc", "nll"):
            assert np.isfinite(last[key])

    def test_fit_requires_records(self, tiny_dataset_a):
        model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=small_config())
        with pytest.raises(ValueError):
            model.fit([])


class TestGenerateAPI:
    def test_output_shape_and_units(self, trained_gendt, tiny_split):
        record = tiny_split.test[0]
        out = trained_gendt.generate(record.trajectory)
        assert out.shape == (len(record.trajectory), 2)
        # Physical ranges: RSRP in dBm band, RSRQ in dB band.
        assert np.all((out[:, 0] >= -140) & (out[:, 0] <= -44))
        assert np.all((out[:, 1] >= -19.5) & (out[:, 1] <= -3.0))

    def test_generations_stochastic(self, trained_gendt, tiny_split):
        traj = tiny_split.test[0].trajectory
        a = trained_gendt.generate(traj)
        b = trained_gendt.generate(traj)
        assert not np.allclose(a, b)

    def test_generate_samples_stack(self, trained_gendt, tiny_split):
        traj = tiny_split.test[0].trajectory
        samples = trained_gendt.generate_samples(traj, 3)
        assert samples.shape == (3, len(traj), 2)

    def test_tracks_real_better_than_permuted(self, trained_gendt, tiny_split):
        # The conditional model must beat its own output paired with the
        # *wrong* trajectory — i.e. context actually matters.
        from repro.metrics import mae

        rec = tiny_split.test[0]
        real = rec.kpi_matrix(["rsrp", "rsrq"])
        gen = trained_gendt.generate(rec.trajectory)
        err_right = mae(real[:, 0], gen[:, 0])
        err_reversed = mae(real[::-1, 0], gen[:, 0])
        # Not a strict inequality in every seed, but with geometry-driven
        # RSRP the aligned error should not be dramatically worse.
        assert err_right < err_reversed * 1.5

    def test_requires_fit(self, tiny_dataset_a, tiny_split):
        model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=small_config())
        with pytest.raises(RuntimeError):
            model.generate(tiny_split.test[0].trajectory)


class TestPersistence:
    def test_save_load_round_trip(self, trained_gendt, tiny_split, tmp_path):
        path = tmp_path / "gendt.npz"
        trained_gendt.save(path)
        from repro.core import GenDT as GenDTClass

        clone = GenDTClass(
            trained_gendt.region,
            kpis=["rsrp", "rsrq"],
            config=trained_gendt.config,
            seed=123,
        )
        clone.load(path)
        traj = tiny_split.test[0].trajectory
        out = clone.generate(traj)
        assert out.shape == (len(traj), 2)
        # Weights equal => deterministic parts agree.
        np.testing.assert_allclose(
            clone.target_normalizer.mean, trained_gendt.target_normalizer.mean
        )

    def test_load_wrong_kpis_rejected(self, trained_gendt, tmp_path):
        path = tmp_path / "gendt.npz"
        trained_gendt.save(path)
        from repro.core import GenDT as GenDTClass

        wrong = GenDTClass(
            trained_gendt.region, kpis=["rsrp"], config=trained_gendt.config
        )
        with pytest.raises((ValueError, KeyError)):
            wrong.load(path)


class TestAblationVariants:
    @pytest.fixture(scope="class")
    def mini_train(self, tiny_split):
        return tiny_split.train[:2]

    def _fit(self, region, mini_train, **overrides):
        base = dict(epochs=1, hidden_size=8, batch_len=15, train_step=15)
        base.update(overrides)
        config = small_config(**base)
        model = GenDT(region, kpis=["rsrp"], config=config, seed=1)
        model.fit(mini_train)
        return model

    def test_no_resgen(self, tiny_dataset_a, mini_train, tiny_split):
        model = self._fit(tiny_dataset_a.region, mini_train, use_resgen=False)
        out = model.generate(tiny_split.test[0].trajectory)
        assert np.all(np.isfinite(out))

    def test_no_srnn(self, tiny_dataset_a, mini_train, tiny_split):
        model = self._fit(tiny_dataset_a.region, mini_train, use_stochastic_layers=False)
        out = model.generate(tiny_split.test[0].trajectory)
        assert np.all(np.isfinite(out))

    def test_no_gan(self, tiny_dataset_a, mini_train, tiny_split):
        model = self._fit(tiny_dataset_a.region, mini_train, lambda_adv=0.0)
        assert model.trainer.discriminator is None
        out = model.generate(tiny_split.test[0].trajectory)
        assert np.all(np.isfinite(out))

    def test_no_batch_one_shot(self, tiny_dataset_a, mini_train, tiny_split):
        model = self._fit(tiny_dataset_a.region, mini_train, batch_len=None)
        out = model.generate(tiny_split.test[0].trajectory)
        assert out.shape[0] == len(tiny_split.test[0].trajectory)
