"""Configuration-variant coverage: link budget, simulator, model channels."""

import numpy as np
import pytest

from repro.radio import (
    DriveTestSimulator,
    FastFadingModel,
    HandoverConfig,
    LinkBudgetConfig,
    PathlossModel,
    ShadowingModel,
)


class TestLinkBudgetConfigVariants:
    def test_custom_propagation_changes_kpis(self, small_region, sample_trajectory, rng):
        default_sim = DriveTestSimulator(small_region)
        harsh = LinkBudgetConfig(
            pathloss=PathlossModel(base_exponent=3.8),
            shadowing=ShadowingModel(sigma_db=9.0),
            fading=FastFadingModel(sigma_db=2.5),
        )
        harsh_sim = DriveTestSimulator(small_region, link_config=harsh)
        rec_default = default_sim.simulate(sample_trajectory, np.random.default_rng(0))
        rec_harsh = harsh_sim.simulate(sample_trajectory, np.random.default_rng(0))
        # Steeper pathloss -> weaker signal on average.
        assert rec_harsh.kpi["rsrp"].mean() < rec_default.kpi["rsrp"].mean()

    def test_aggressive_handover_config(self, small_region, sample_trajectory):
        eager = DriveTestSimulator(
            small_region, handover_config=HandoverConfig(hysteresis_db=0.5, time_to_trigger_samples=1)
        )
        sticky = DriveTestSimulator(
            small_region, handover_config=HandoverConfig(hysteresis_db=10.0, time_to_trigger_samples=8)
        )
        rec_eager = eager.simulate(sample_trajectory, np.random.default_rng(1))
        rec_sticky = sticky.simulate(sample_trajectory, np.random.default_rng(1))
        eager_changes = int(np.count_nonzero(np.diff(rec_eager.serving_cell_id)))
        sticky_changes = int(np.count_nonzero(np.diff(rec_sticky.serving_cell_id)))
        assert eager_changes > sticky_changes

    def test_candidate_range_gates_cells(self, small_region, sample_trajectory):
        near = DriveTestSimulator(small_region, candidate_range_m=600.0)
        far = DriveTestSimulator(small_region, candidate_range_m=3000.0)
        cells_near = near.candidate_cells(sample_trajectory)
        cells_far = far.candidate_cells(sample_trajectory)
        assert len(cells_far) > len(cells_near)

    def test_higher_noise_figure_lowers_sinr(self, small_region, sample_trajectory):
        quiet = DriveTestSimulator(
            small_region, link_config=LinkBudgetConfig(noise_figure_db=2.0)
        )
        noisy = DriveTestSimulator(
            small_region, link_config=LinkBudgetConfig(noise_figure_db=15.0)
        )
        rec_quiet = quiet.simulate(sample_trajectory, np.random.default_rng(2))
        rec_noisy = noisy.simulate(sample_trajectory, np.random.default_rng(2))
        assert rec_noisy.kpi["sinr"].mean() <= rec_quiet.kpi["sinr"].mean() + 0.5


class TestFourKpiModel:
    def test_all_four_channels_generate(self, tiny_dataset_a, tiny_split):
        from repro.core import GenDT, small_config

        config = small_config(epochs=1, hidden_size=10, batch_len=15, train_step=15)
        model = GenDT(
            tiny_dataset_a.region,
            kpis=["rsrp", "rsrq", "sinr", "cqi"],
            config=config,
            seed=0,
        )
        model.fit(tiny_split.train[:2])
        out = model.generate(tiny_split.test[0].trajectory)
        assert out.shape[1] == 4
        # CQI channel snapped to integers in [1, 15].
        assert np.all(out[:, 3] == np.round(out[:, 3]))
        assert np.all((out[:, 3] >= 1) & (out[:, 3] <= 15))
        # SINR within its physical window.
        assert np.all((out[:, 2] >= -10) & (out[:, 2] <= 30))

    def test_d_steps_per_g_step(self, tiny_dataset_a, tiny_split):
        from repro.core import GenDT, small_config

        config = small_config(
            epochs=1, hidden_size=8, batch_len=15, train_step=15, d_steps_per_g_step=2
        )
        model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=config, seed=0)
        history = model.fit(tiny_split.train[:2])
        assert np.isfinite(history.discriminator[-1])
