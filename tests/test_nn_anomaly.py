"""Tests for autodiff anomaly detection (repro.nn.anomaly).

Covers: forward NaN/Inf naming the creating op, backward gradient anomalies
naming the op whose backward produced them, module-path annotation, zero-cost
off mode (no raise, bit-identical training), and the trainer/CLI plumbing.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import NumericalAnomalyError, Tensor, detect_anomaly, is_anomaly_enabled


class TestContextManager:
    def test_toggles_and_restores(self):
        assert not is_anomaly_enabled()
        with detect_anomaly():
            assert is_anomaly_enabled()
            with detect_anomaly():
                assert is_anomaly_enabled()
            assert is_anomaly_enabled()
        assert not is_anomaly_enabled()

    def test_restores_on_error(self):
        with pytest.raises(NumericalAnomalyError):
            with detect_anomaly():
                Tensor([-1.0]).log()
        assert not is_anomaly_enabled()


class TestForwardAnomaly:
    def test_nan_forward_names_op_and_site(self):
        with detect_anomaly():
            x = Tensor([4.0, -1.0], requires_grad=True)
            with pytest.raises(NumericalAnomalyError) as excinfo:
                x.log()
        err = excinfo.value
        assert err.op == "log"
        assert err.phase == "forward"
        assert err.site is not None and "test_nn_anomaly" in err.site
        assert "log" in str(err)

    def test_inf_forward_detected(self):
        with detect_anomaly():
            x = Tensor([1.0, 0.0], requires_grad=True)
            with pytest.raises(NumericalAnomalyError) as excinfo:
                1.0 / x
        assert excinfo.value.phase == "forward"

    def test_nan_mid_graph_detected_at_creation(self):
        # The NaN appears in the middle of a larger expression; the error
        # must identify the creating op, not the downstream consumer.
        with detect_anomaly():
            x = Tensor([0.25, -4.0], requires_grad=True)
            with pytest.raises(NumericalAnomalyError) as excinfo:
                ((x.log() * 2.0) + 1.0).sum()
        assert excinfo.value.op == "log"


class TestBackwardAnomaly:
    def test_backward_grad_anomaly_names_op(self):
        with detect_anomaly():
            x = Tensor([0.0], requires_grad=True)
            y = (x**0.5).sum()  # forward is finite (sqrt(0) = 0) ...
            with pytest.raises(NumericalAnomalyError) as excinfo:
                y.backward()  # ... but d/dx = 0.5 * x**-0.5 is infinite
        err = excinfo.value
        assert err.phase == "backward"
        assert err.op == "__pow__"

    def test_injected_backward_nan_detected(self):
        # Inject a NaN directly into one op's backward function to emulate a
        # buggy gradient implementation.
        with detect_anomaly():
            x = Tensor([1.0, 2.0], requires_grad=True)
            y = x * 2.0

            original = y._backward

            def poisoned(grad):
                original(grad)
                x.grad[0] = np.nan  # the "bug"

            y._backward = poisoned
            with pytest.raises(NumericalAnomalyError) as excinfo:
                y.sum().backward()
        err = excinfo.value
        assert err.phase == "backward"
        assert err.op == "__mul__"


class TestModuleAnnotation:
    def test_module_chain_names_layer(self):
        rng = np.random.default_rng(0)
        mlp = nn.MLP(3, (4,), 2, rng)
        with detect_anomaly():
            with pytest.raises(NumericalAnomalyError) as excinfo:
                mlp(Tensor([[np.nan, 1.0, 2.0]]))
        err = excinfo.value
        assert err.module_chain, "module path must be recorded"
        assert err.module_chain[-1] == "MLP"  # outermost module last
        assert "module path" in str(err)


class TestOffMode:
    def test_no_raise_when_disabled(self):
        x = Tensor([-1.0], requires_grad=True)
        y = x.log()  # NaN, silently (pre-existing behavior)
        assert np.isnan(y.data).any()
        z = (Tensor([0.0], requires_grad=True) ** 0.5).sum()
        z.backward()  # Inf gradient, silently

    def test_training_identical_with_and_without_context(self, tiny_dataset_a, tiny_split):
        # detect_anomaly() must not perturb numerics: two identical runs,
        # one inside the context, must produce bit-identical weights.
        from repro.core import GenDT, small_config

        def run(detect):
            config = small_config(
                epochs=1, hidden_size=8, batch_len=25, train_step=5,
                minibatch_windows=8,
            )
            model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=config, seed=3)
            model.fit(tiny_split.train, detect_anomaly=detect)
            return np.concatenate(
                [p.data.ravel() for p in model.generator.parameters()]
            )

        baseline = run(False)
        detected = run(True)
        assert np.array_equal(baseline, detected)


class TestTrainerPlumbing:
    def test_fit_detect_anomaly_catches_injected_nan(self, tiny_dataset_a, tiny_split):
        # Poison one weight after a short fit so the next forward produces
        # NaN: with the mode on, continue_fit() must fail fast with the op
        # named instead of letting the NaN reach the loss.
        from repro.core import GenDT, small_config

        config = small_config(
            epochs=1, hidden_size=8, batch_len=25, train_step=5,
            minibatch_windows=8,
        )
        model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=config, seed=3)
        model.fit(tiny_split.train)
        params = model.generator.parameters()
        params[0].data[...] = np.nan
        with pytest.raises(NumericalAnomalyError) as excinfo:
            model.continue_fit(tiny_split.train, epochs=1, detect_anomaly=True)
        assert excinfo.value.op is not None
