"""Extended use cases (paper §C.2): cell load, bandwidth, video QoE, what-if."""

import numpy as np
import pytest

from repro.usecases import (
    CellLoadEstimator,
    LinkBandwidthPredictor,
    PlayerConfig,
    WhatIfOutcome,
    bandwidth_features,
    compare_sessions,
    deployment_override,
    handover_indicator,
    run_what_if,
    simulate_session,
    with_new_site,
    with_power_offset,
    without_cells,
)


class TestCellLoadEstimator:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset_a):
        records = tiny_dataset_a.records[:8]
        estimator = CellLoadEstimator(epochs=40, seed=0)
        estimator.fit(records, [r.serving_load for r in records])
        return estimator, records

    def test_serving_load_exposed(self, tiny_dataset_a):
        record = tiny_dataset_a.records[0]
        assert record.serving_load.shape == (len(record),)
        assert np.all((record.serving_load >= 0.05) & (record.serving_load <= 0.95))

    def test_predictions_in_unit_range(self, fitted):
        estimator, records = fitted
        pred = estimator.predict(records[-1].kpi)
        assert pred.shape == (len(records[-1]),)
        assert np.all((pred >= 0) & (pred <= 1))

    def test_beats_constant_mean(self, fitted, tiny_dataset_a):
        estimator, records = fitted
        test = tiny_dataset_a.records[8]
        pred = estimator.predict(test.kpi)
        truth = test.serving_load
        err_model = np.abs(pred - truth).mean()
        err_const = np.abs(truth.mean() - truth).mean()
        # RSRQ/SINR do carry load information in the link budget.
        assert err_model < err_const * 1.15

    def test_predict_from_matrix(self, fitted):
        estimator, records = fitted
        record = records[0]
        matrix = record.kpi_matrix(["rsrq", "sinr"])
        pred = estimator.predict_from_matrix(matrix, ["rsrq", "sinr"])
        assert pred.shape == (len(record),)

    def test_matrix_missing_kpi_rejected(self, fitted):
        estimator, _ = fitted
        with pytest.raises(ValueError):
            estimator.predict_from_matrix(np.zeros((5, 1)), ["rsrp"])

    def test_misaligned_fit_rejected(self, tiny_dataset_a):
        estimator = CellLoadEstimator()
        with pytest.raises(ValueError):
            estimator.fit(tiny_dataset_a.records[:2], [np.zeros(3)])

    def test_requires_fit(self, tiny_dataset_a):
        with pytest.raises(RuntimeError):
            CellLoadEstimator().predict(tiny_dataset_a.records[0].kpi)


class TestBandwidthPredictor:
    def test_handover_indicator(self):
        ids = np.array([1, 1, 1, 2, 2, 2, 2, 2])
        indicator = handover_indicator(ids, window=1)
        np.testing.assert_allclose(indicator, [0, 0, 1, 1, 1, 0, 0, 0])

    def test_indicator_no_changes(self):
        assert handover_indicator(np.ones(5, int)).sum() == 0

    def test_features_shape(self, tiny_dataset_a):
        record = tiny_dataset_a.records[0]
        features = bandwidth_features(record)
        assert features.shape == (len(record), 5)

    def test_features_need_qoe(self, tiny_dataset_b):
        with pytest.raises(ValueError):
            bandwidth_features(tiny_dataset_b.records[0])

    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset_a):
        predictor = LinkBandwidthPredictor(n_members=2, epochs=40, seed=0)
        predictor.fit(tiny_dataset_a.records[:8])
        return predictor

    def test_prediction_positive(self, fitted, tiny_dataset_a):
        test = tiny_dataset_a.records[8]
        pred = fitted.predict(bandwidth_features(test))
        assert pred.shape == (len(test),)
        assert np.all(pred >= 0)

    def test_tracks_ground_truth(self, fitted, tiny_dataset_a):
        test = tiny_dataset_a.records[8]
        pred = fitted.predict(bandwidth_features(test))
        truth = test.qoe["throughput_mbps"]
        corr = np.corrcoef(pred, truth)[0, 1]
        assert corr > 0.5  # CQI alone strongly determines throughput

    def test_interval_brackets_mean(self, fitted, tiny_dataset_a):
        test = tiny_dataset_a.records[8]
        features = bandwidth_features(test)
        lower, upper = fitted.predict_interval(features)
        mean = fitted.predict(features)
        assert np.all(lower <= mean + 1e-9)
        assert np.all(mean <= upper + 1e-9)

    def test_requires_fit(self, tiny_dataset_a):
        predictor = LinkBandwidthPredictor()
        with pytest.raises(RuntimeError):
            predictor.predict(np.zeros((3, 5)))


class TestVideoQoE:
    def test_high_throughput_no_stalls(self):
        session = simulate_session(np.full(120, 10.0))
        assert session.stall_ratio < 0.1
        assert session.average_bitrate_mbps >= 4.0
        assert session.qoe_score() > 3.5

    def test_starved_session_stalls(self):
        session = simulate_session(np.full(120, 0.2))
        assert session.stall_ratio > 0.3
        assert session.qoe_score() < 2.5

    def test_qoe_monotone_in_throughput(self):
        scores = [
            simulate_session(np.full(120, mbps)).qoe_score()
            for mbps in (0.3, 1.0, 3.0, 8.0)
        ]
        assert scores == sorted(scores)

    def test_variable_throughput_causes_switches(self, rng):
        stable = simulate_session(np.full(200, 3.0))
        wild = simulate_session(np.clip(3.0 + 2.5 * rng.standard_normal(200), 0.2, None))
        assert wild.n_switches > stable.n_switches

    def test_buffer_bounded(self):
        config = PlayerConfig(max_buffer_s=10.0)
        session = simulate_session(np.full(100, 50.0), config)
        assert session.buffer_s.max() <= 10.0 + 1e-9

    def test_score_range(self, rng):
        for _ in range(5):
            series = np.clip(rng.normal(2.0, 2.0, size=60), 0.0, None)
            score = simulate_session(series).qoe_score()
            assert 1.0 <= score <= 5.0

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            simulate_session(np.zeros(0))

    def test_compare_sessions_keys(self, rng):
        out = compare_sessions(np.full(60, 5.0), np.full(60, 4.0))
        assert set(out) == {"real", "generated"}
        assert set(out["real"]) == {
            "avg_bitrate_mbps", "stall_ratio", "n_switches", "qoe_score",
        }


class TestWhatIf:
    def test_power_offset(self, small_region):
        boosted = with_power_offset(small_region.deployment, 6.0)
        originals = {c.cell_id: c.p_max_dbm for c in small_region.deployment.cells}
        for cell in boosted.cells:
            assert cell.p_max_dbm == pytest.approx(originals[cell.cell_id] + 6.0)

    def test_power_offset_subset(self, small_region):
        target = small_region.deployment.cells[0].cell_id
        edited = with_power_offset(small_region.deployment, -3.0, cell_ids=[target])
        assert edited[target].p_max_dbm == pytest.approx(
            small_region.deployment[target].p_max_dbm - 3.0
        )
        other = small_region.deployment.cells[1].cell_id
        assert edited[other].p_max_dbm == small_region.deployment[other].p_max_dbm

    def test_new_site(self, small_region):
        edited = with_new_site(small_region.deployment, 51.5, -0.1, sectors=3)
        assert len(edited) == len(small_region.deployment) + 3
        new_ids = set(edited.cell_ids()) - set(small_region.deployment.cell_ids())
        assert len(new_ids) == 3

    def test_without_cells(self, small_region):
        victim = small_region.deployment.cells[0].cell_id
        edited = without_cells(small_region.deployment, [victim])
        assert victim not in edited.cell_ids()
        assert len(edited) == len(small_region.deployment) - 1

    def test_cannot_remove_all(self, small_region):
        with pytest.raises(ValueError):
            without_cells(small_region.deployment, small_region.deployment.cell_ids())

    def test_deployment_override_restores(self, trained_gendt):
        original = trained_gendt.region.deployment
        edited = with_power_offset(original, 3.0)
        with deployment_override(trained_gendt, edited):
            assert trained_gendt.region.deployment is edited
            assert trained_gendt.context.network.deployment is edited
        assert trained_gendt.region.deployment is original
        assert trained_gendt.context.network.deployment is original

    def test_override_restores_on_exception(self, trained_gendt):
        original = trained_gendt.region.deployment
        edited = with_power_offset(original, 3.0)
        with pytest.raises(RuntimeError):
            with deployment_override(trained_gendt, edited):
                raise RuntimeError("boom")
        assert trained_gendt.region.deployment is original

    def test_run_what_if_outcome(self, trained_gendt, tiny_split):
        traj = tiny_split.test[0].trajectory
        edited = with_power_offset(trained_gendt.region.deployment, 6.0)
        outcome = run_what_if(trained_gendt, traj, edited, n_samples=2)
        assert outcome.baseline.shape == outcome.edited.shape
        assert set(outcome.summary()) == set(trained_gendt.kpi_names)
        assert np.isfinite(outcome.mean_delta("rsrp"))
