"""Coordinate math: haversine, bearings, local frames."""

import numpy as np
import pytest

from repro.geo import LocalFrame, bearing_deg, haversine_m


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(51.5, -0.1, 51.5, -0.1) == pytest.approx(0.0, abs=1e-6)

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        d = haversine_m(50.0, 0.0, 51.0, 0.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_longitude_shrinks_with_latitude(self):
        at_equator = haversine_m(0.0, 0.0, 0.0, 1.0)
        at_60 = haversine_m(60.0, 0.0, 60.0, 1.0)
        assert at_60 == pytest.approx(at_equator * 0.5, rel=0.01)

    def test_symmetry(self):
        d1 = haversine_m(51.5, -0.1, 48.85, 2.35)
        d2 = haversine_m(48.85, 2.35, 51.5, -0.1)
        assert d1 == pytest.approx(d2)

    def test_vectorized(self):
        lats = np.array([50.0, 51.0])
        out = haversine_m(lats, 0.0, lats + 0.01, 0.0)
        assert out.shape == (2,)
        assert np.all(out > 1000)


class TestBearing:
    def test_north(self):
        assert bearing_deg(50.0, 0.0, 51.0, 0.0) == pytest.approx(0.0, abs=0.1)

    def test_east(self):
        assert bearing_deg(0.0, 0.0, 0.0, 1.0) == pytest.approx(90.0, abs=0.1)

    def test_south_west_quadrant(self):
        bearing = bearing_deg(51.0, 0.0, 50.0, -1.0)
        assert 180.0 < bearing < 270.0


class TestLocalFrame:
    def test_origin_maps_to_zero(self):
        frame = LocalFrame(51.5, -0.1)
        x, y = frame.to_xy(51.5, -0.1)
        assert float(x) == pytest.approx(0.0, abs=1e-9)
        assert float(y) == pytest.approx(0.0, abs=1e-9)

    def test_round_trip(self):
        frame = LocalFrame(51.5, -0.1)
        lat, lon = 51.52, -0.08
        x, y = frame.to_xy(lat, lon)
        lat2, lon2 = frame.to_latlon(x, y)
        assert float(lat2) == pytest.approx(lat, abs=1e-9)
        assert float(lon2) == pytest.approx(lon, abs=1e-9)

    def test_agrees_with_haversine_locally(self):
        frame = LocalFrame(51.5, -0.1)
        lat2, lon2 = 51.53, -0.05
        planar = float(frame.distance_m(51.5, -0.1, lat2, lon2))
        sphere = haversine_m(51.5, -0.1, lat2, lon2)
        assert planar == pytest.approx(sphere, rel=0.005)

    def test_north_is_positive_y(self):
        frame = LocalFrame(51.5, -0.1)
        _, y = frame.to_xy(51.6, -0.1)
        assert float(y) > 0

    def test_east_is_positive_x(self):
        frame = LocalFrame(51.5, -0.1)
        x, _ = frame.to_xy(51.5, 0.0)
        assert float(x) > 0

    def test_vectorized_round_trip(self):
        frame = LocalFrame(51.5, -0.1)
        lats = np.linspace(51.45, 51.55, 10)
        lons = np.linspace(-0.15, -0.05, 10)
        x, y = frame.to_xy(lats, lons)
        lat2, lon2 = frame.to_latlon(x, y)
        np.testing.assert_allclose(lat2, lats)
        np.testing.assert_allclose(lon2, lons)
