"""End-to-end integration tests spanning the whole pipeline."""

import numpy as np
import pytest

from repro.core import GenDT, mc_dropout_uncertainty, small_config
from repro.baselines import FDaS
from repro.eval import compare_methods, ranking
from repro.metrics import mae
from repro.usecases import QoEPredictor, compare_handover_distributions


class TestFullPipeline:
    def test_fit_generate_evaluate(self, trained_gendt, tiny_split):
        """Dataset -> split -> fit -> generate -> metrics: the paper's loop."""
        results = compare_methods(
            {"gendt": trained_gendt.generate},
            tiny_split.test,
            ["rsrp", "rsrq"],
        )
        gendt = results["gendt"]
        # Sanity band: an untrained/broken model would exceed this easily.
        assert gendt.average("rsrp", "mae") < 25.0
        assert gendt.average("rsrq", "mae") < 6.0

    def test_gendt_beats_fdas_on_dtw(self, trained_gendt, tiny_split):
        """The paper's key ordering: context-aware GenDT beats FDaS on
        temporal metrics (FDaS ignores the trajectory entirely)."""
        fdas = FDaS(kpis=["rsrp", "rsrq"], seed=0)
        fdas.fit(tiny_split.train)
        results = compare_methods(
            {"gendt": trained_gendt.generate, "fdas": fdas.generate},
            tiny_split.test,
            ["rsrp", "rsrq"],
            n_generations=2,
        )
        assert ranking(results, "rsrp", "dtw")[0] == "gendt"

    def test_generated_distribution_plausible(self, trained_gendt, tiny_split):
        from repro.metrics import hwd

        rec = tiny_split.test[0]
        gen = trained_gendt.generate(rec.trajectory)
        assert hwd(rec.kpi["rsrp"], gen[:, 0]) < 15.0

    def test_uncertainty_probe_end_to_end(self, trained_gendt, tiny_split):
        est = mc_dropout_uncertainty(trained_gendt, tiny_split.test[0].trajectory, 3)
        assert np.isfinite(est.model_uncertainty)

    def test_generation_on_concatenated_scenarios(self, trained_gendt, tiny_split):
        """Long multi-scenario trajectory: batching must cover it seamlessly."""
        a, b = tiny_split.test[0].trajectory, tiny_split.test[-1].trajectory
        joined = a.concat(b)
        out = trained_gendt.generate(joined)
        assert out.shape == (len(joined), 2)
        assert np.all(np.isfinite(out))


class TestQoEIntegration:
    def test_generated_kpis_feed_qoe_predictor(self, trained_gendt, tiny_dataset_a, tiny_split):
        qoe_train = [r for r in tiny_dataset_a.records if r in tiny_split.train]
        predictor = QoEPredictor(kpi_names=("rsrp", "rsrq"), epochs=20, seed=0)
        predictor.fit(qoe_train or tiny_dataset_a.records[:6])
        rec = tiny_split.test[0]
        generated_kpis = trained_gendt.generate(rec.trajectory)
        out = predictor.predict(rec, kpi_override=generated_kpis)
        assert out["throughput_mbps"].shape == (len(rec),)
        real_pred = predictor.predict(rec)
        # Predictions from generated KPIs stay in the same ballpark as from
        # real KPIs (the §6.3.1 claim, loosely checked at tiny scale).
        assert (
            abs(out["throughput_mbps"].mean() - real_pred["throughput_mbps"].mean())
            < real_pred["throughput_mbps"].mean() + 1.0
        )


class TestHandoverIntegration:
    def test_serving_cell_channel_generation(self, tiny_dataset_a, tiny_split):
        """Retrain GenDT with the serving-cell channel (paper §6.3.2)."""
        config = small_config(epochs=2, hidden_size=10, batch_len=20, train_step=20)
        model = GenDT(
            tiny_dataset_a.region,
            kpis=["rsrp", "serving_cell"],
            config=config,
            seed=4,
        )
        model.fit(tiny_split.train[:4])
        rec = tiny_split.test[0]
        out = model.generate(rec.trajectory)
        serving = out[:, 1]
        assert np.all(serving == np.round(serving))
        comparison = compare_handover_distributions([rec], [serving])
        assert np.isfinite(comparison.hwd) or len(comparison.generated_intervals) == 0


class TestDeterminism:
    def test_same_seed_same_model(self, tiny_dataset_a, tiny_split):
        def build():
            config = small_config(epochs=1, hidden_size=8, batch_len=15, train_step=15)
            model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=config, seed=11)
            model.fit(tiny_split.train[:2])
            return model

        m1, m2 = build(), build()
        s1 = m1.generator.state_dict()
        s2 = m2.generator.state_dict()
        for key in s1:
            np.testing.assert_allclose(s1[key], s2[key], err_msg=key)
