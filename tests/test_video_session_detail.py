"""Detailed video-player dynamics (the §C.2 video-QoE substrate)."""

import numpy as np
import pytest

from repro.usecases import PlayerConfig, simulate_session
from repro.usecases.video_qoe import VideoSession


class TestStartupBehaviour:
    def test_startup_stall_until_buffer_filled(self):
        # 1 Mbps throughput, lowest ladder 0.6 Mbps: buffer grows ~1.67 s/s,
        # startup threshold 2 s -> playback begins on the second tick.
        session = simulate_session(np.full(30, 1.0))
        assert session.stalled[0]
        assert not session.stalled[5]

    def test_faster_fill_starts_sooner(self):
        slow = simulate_session(np.full(30, 0.8))
        fast = simulate_session(np.full(30, 8.0))
        slow_start = int(np.argmax(~slow.stalled))
        fast_start = int(np.argmax(~fast.stalled))
        assert fast_start <= slow_start


class TestRebuffering:
    def test_throughput_drop_causes_rebuffer(self):
        series = np.concatenate([np.full(20, 6.0), np.full(40, 0.05)])
        session = simulate_session(series)
        # The long starvation must eventually stall playback.
        assert session.stalled[-10:].any()

    def test_recovery_after_drop(self):
        series = np.concatenate(
            [np.full(15, 6.0), np.full(10, 0.05), np.full(40, 6.0)]
        )
        session = simulate_session(series)
        assert not session.stalled[-5:].any()  # resumed by the end

    def test_rebuffer_threshold_respected(self):
        config = PlayerConfig(rebuffer_target_s=6.0)
        series = np.concatenate([np.full(15, 6.0), np.full(10, 0.05), np.full(40, 1.2)])
        session = simulate_session(series, config)
        # After a stall, playback resumes only once the buffer recrosses the
        # (higher) rebuffer threshold, so resumption is delayed vs default.
        default_session = simulate_session(series)
        assert session.stalled.sum() >= default_session.stalled.sum()


class TestAdaptation:
    def test_bitrate_follows_throughput_down(self):
        series = np.concatenate([np.full(30, 8.0), np.full(30, 1.0)])
        session = simulate_session(series)
        assert session.bitrates_mbps[:25].mean() > session.bitrates_mbps[-10:].mean()

    def test_safety_fraction_keeps_headroom(self):
        config = PlayerConfig(safety_fraction=0.5)
        session = simulate_session(np.full(60, 4.0), config)
        # With 50 % safety at 4 Mbps, target is 2 Mbps -> ladder 1.2.
        assert session.bitrates_mbps[10:].max() <= 2.4

    def test_session_dataclass_metrics(self):
        session = VideoSession(
            bitrates_mbps=np.array([1.2, 1.2, 2.4, 2.4]),
            buffer_s=np.ones(4),
            stalled=np.array([True, False, False, False]),
        )
        assert session.stall_ratio == pytest.approx(0.25)
        assert session.n_switches == 1
        assert session.average_bitrate_mbps == pytest.approx(2.0)
