"""Chaos tests for the resilient campaign runner (:mod:`repro.serving`).

Every test drives the real trained model through the serving stack with a
deterministic :class:`FaultPlan` and a hand-advanced clock, so the scenarios
are bit-reproducible and never wait on wall-clock time.
"""

import copy
import json

import numpy as np
import pytest

from repro.baselines.fdas import FDaS
from repro.serving import (
    DEGRADATION_LEVELS,
    STATUS_CANCELLED,
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUSES,
    CampaignConfig,
    CampaignRunner,
    FaultPlan,
    LadderExecutor,
    ManualClock,
)


@pytest.fixture(scope="module")
def fitted_fdas(tiny_split) -> FDaS:
    fdas = FDaS(kpis=["rsrp", "rsrq"], seed=0)
    fdas.fit(tiny_split.train)
    return fdas


@pytest.fixture()
def campaign_trajectories(tiny_split):
    return [r.trajectory for r in tiny_split.test[:3]]


def make_runner(model, fdas, plan=None, **config_kwargs):
    config_kwargs.setdefault("seed", 42)
    clock = ManualClock()
    runner = CampaignRunner(
        model,
        fdas=fdas,
        config=CampaignConfig(**config_kwargs),
        fault_plan=plan,
        clock=clock,
        sleep=clock.sleep,
    )
    return runner, clock


def full_ladder_plan():
    """Defeats the full rung for trajectory 1 and both model rungs for 2."""
    return (
        FaultPlan()
        .inject("nan_output", trajectory=1, level="full", times=None)
        .inject("nan_output", trajectory=2, level="full", times=None)
        .inject("nan_output", trajectory=2, level="first_stage", times=None)
    )


class TestChaosCampaign:
    """The headline scenario: one campaign spanning every ladder level."""

    def test_all_ladder_levels_and_quarantine(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        bad = copy.deepcopy(campaign_trajectories[0])
        bad.lat[3] = np.nan
        runner, _ = make_runner(trained_gendt, fitted_fdas, full_ladder_plan())

        result = runner.run(campaign_trajectories + [bad])

        # No exception escaped: one envelope per request, statuses legal.
        assert len(result) == 4
        assert all(e.status in STATUSES for e in result.envelopes)

        statuses = [e.status for e in result.envelopes]
        levels = [e.level for e in result.envelopes]
        assert statuses == [STATUS_OK, STATUS_OK, STATUS_OK, STATUS_QUARANTINED]
        # Trajectory 0 untouched, 1 demoted once, 2 demoted to the bottom.
        assert levels == ["full", "first_stage", "fdas", None]

        # Every served envelope carries a finite series with the KPI layout.
        for envelope in result.envelopes[:3]:
            assert envelope.series.shape[1] == 2
            assert np.all(np.isfinite(envelope.series))
            assert envelope.kpi_names == ["rsrp", "rsrq"]

        # The quarantined request has a machine-readable reason.
        quarantined = result.envelopes[3]
        assert quarantined.quarantine_reason["index"] == 3
        assert "latitude" in quarantined.quarantine_reason["error"]
        assert quarantined.series is None

    def test_fault_accounting_matches_plan(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        plan = full_ladder_plan()
        runner, _ = make_runner(trained_gendt, fitted_fdas, plan)
        result = runner.run(campaign_trajectories)

        # Trajectory 1: 2 full-level NaN attempts (original + one resample).
        traj1 = result.envelopes[1]
        assert [f.kind for f in traj1.faults] == [
            "non_finite_output",
            "non_finite_output",
        ]
        assert traj1.resamples == 1

        # Trajectory 2: two full-level failures trip the third consecutive
        # failure at first_stage; the breaker then blocks the resample.
        traj2 = result.envelopes[2]
        kinds = [f.kind for f in traj2.faults]
        assert kinds == [
            "non_finite_output",
            "non_finite_output",
            "non_finite_output",
            "breaker_open",
        ]
        # Envelope faults also appear in the campaign-wide log.
        assert all(f in result.fault_log for f in traj2.faults)

        # Exactly the planned injections fired, at the planned coordinates.
        assert all(f.kind == "nan_output" for f in plan.fired)
        assert {(f.trajectory, f.level) for f in plan.fired} == {
            (1, "full"),
            (2, "full"),
            (2, "first_stage"),
        }

    def test_breaker_transitions_match_injections(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        runner, _ = make_runner(trained_gendt, fitted_fdas, full_ladder_plan())
        result = runner.run(campaign_trajectories)
        # 5 injected model faults with threshold 3 → exactly one trip; the
        # cool-down never elapses on the frozen clock, so it stays open.
        assert [(t["from"], t["to"]) for t in result.breaker_transitions] == [
            ("closed", "open")
        ]
        assert runner.breaker.trip_count == 1

    def test_rerun_same_seed_same_plan_is_byte_identical(
        self, trained_gendt, fitted_fdas, campaign_trajectories, tmp_path
    ):
        bad = copy.deepcopy(campaign_trajectories[0])
        bad.lat[3] = np.nan
        requests = campaign_trajectories + [bad]

        paths = []
        for run_index in range(2):
            runner, _ = make_runner(trained_gendt, fitted_fdas, full_ladder_plan())
            result = runner.run(requests)
            path = tmp_path / f"campaign-{run_index}.jsonl"
            result.to_jsonl(path, include_series=True)
            paths.append(path)
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_envelope_jsonl_schema(
        self, trained_gendt, fitted_fdas, campaign_trajectories, tmp_path
    ):
        runner, _ = make_runner(trained_gendt, fitted_fdas, full_ladder_plan())
        result = runner.run(campaign_trajectories)
        path = result.to_jsonl(tmp_path / "campaign.jsonl")

        lines = [json.loads(line) for line in path.read_text().splitlines()]
        envelopes, trailer = lines[:-1], lines[-1]
        assert len(envelopes) == 3
        for record in envelopes:
            assert record["record"] == "envelope"
            assert record["status"] in STATUSES
            assert record["level"] in (None,) + DEGRADATION_LEVELS
            assert isinstance(record["faults"], list)
            for fault in record["faults"]:
                assert {"trajectory", "window", "level", "kind", "detail"} <= set(fault)
        assert trailer["record"] == "summary"
        assert trailer["status_counts"][STATUS_OK] == 3
        assert trailer["level_counts"] == {"full": 1, "first_stage": 1, "fdas": 1}
        assert len(trailer["breaker"]) == 1


class TestDegradationLadder:
    def test_injected_exception_demotes_without_resampling(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        plan = FaultPlan().inject(
            "exception", trajectory=0, window=0, level="full"
        )
        runner, _ = make_runner(trained_gendt, fitted_fdas, plan)
        result = runner.run(campaign_trajectories[:1])
        envelope = result.envelopes[0]
        assert envelope.status == STATUS_OK
        assert envelope.level == "first_stage"
        assert envelope.resamples == 0  # infrastructure faults never resample
        assert [f.kind for f in envelope.faults] == ["exception"]
        assert envelope.faults[0].window == 0

    def test_without_fdas_ladder_bottoms_out_as_failed(
        self, trained_gendt, campaign_trajectories
    ):
        plan = (
            FaultPlan()
            .inject("nan_output", trajectory=0, level="full", times=None)
            .inject("nan_output", trajectory=0, level="first_stage", times=None)
        )
        runner, _ = make_runner(trained_gendt, None, plan, breaker_threshold=10)
        result = runner.run(campaign_trajectories[:1])
        envelope = result.envelopes[0]
        assert envelope.status == STATUS_FAILED
        assert envelope.level is None
        assert envelope.series is None

    def test_start_level_skips_higher_rungs(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        runner, _ = make_runner(
            trained_gendt, fitted_fdas, start_level="first_stage"
        )
        result = runner.run(campaign_trajectories[:1])
        assert result.envelopes[0].status == STATUS_OK
        assert result.envelopes[0].level == "first_stage"

    def test_first_stage_rung_deterministic_given_rng_state(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        # SRNN sampling and the ResGen loop are disabled on this rung; the
        # only randomness left is the denoising noise z0 drawn from the
        # model's generation RNG, so fixing its state fixes the output.
        executor = LadderExecutor(trained_gendt, fdas=fitted_fdas)
        state = trained_gendt.rng.bit_generator.state
        first = executor.attempt(campaign_trajectories[0], "first_stage")
        trained_gendt.rng.bit_generator.state = state
        second = executor.attempt(campaign_trajectories[0], "first_stage")
        np.testing.assert_array_equal(first, second)

    def test_mismatched_fdas_layout_rejected(self, trained_gendt, tiny_split):
        wrong = FDaS(kpis=["rsrp"], seed=0)
        wrong.fit(tiny_split.train)
        with pytest.raises(ValueError, match="KPI layout"):
            LadderExecutor(trained_gendt, fdas=wrong)


class TestDeadlines:
    def test_trajectory_deadline_yields_clean_partial_result(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        plan = FaultPlan().inject(
            "latency", trajectory=0, window=0, latency_s=5.0
        )
        runner, _ = make_runner(
            trained_gendt, fitted_fdas, plan, trajectory_deadline_s=1.0
        )
        result = runner.run(campaign_trajectories[:2])

        timed_out = result.envelopes[0]
        assert timed_out.status == STATUS_DEADLINE
        kinds = [f.kind for f in timed_out.faults]
        assert "latency" in kinds and "trajectory_deadline" in kinds
        # The stall at window 0 means no window result was committed.
        assert timed_out.windows_completed == 0
        # The next trajectory still runs to completion.
        assert result.envelopes[1].status == STATUS_OK
        assert not result.deadline_hit  # only campaign deadlines set this

    def test_deadline_does_not_trip_the_breaker(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        plan = FaultPlan().inject(
            "latency", trajectory=0, window=0, latency_s=5.0
        )
        runner, _ = make_runner(
            trained_gendt, fitted_fdas, plan, trajectory_deadline_s=1.0
        )
        runner.run(campaign_trajectories[:1])
        assert runner.breaker.state == "closed"
        assert runner.breaker.transitions == []

    def test_campaign_deadline_cancels_remaining_trajectories(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        plan = FaultPlan().inject(
            "latency", trajectory=0, window=0, latency_s=5.0
        )
        runner, _ = make_runner(
            trained_gendt, fitted_fdas, plan, campaign_deadline_s=2.0
        )
        result = runner.run(campaign_trajectories)

        assert result.deadline_hit
        assert result.envelopes[0].status == STATUS_DEADLINE
        assert [f.kind for f in result.envelopes[0].faults] == [
            "latency",
            "campaign_deadline",
        ]
        assert [e.status for e in result.envelopes[1:]] == [
            STATUS_CANCELLED,
            STATUS_CANCELLED,
        ]
        summary = result.summary()
        assert summary["campaign_deadline_hit"] is True
        assert summary["status_counts"][STATUS_CANCELLED] == 2

    def test_latency_without_deadline_is_absorbed(
        self, trained_gendt, fitted_fdas, campaign_trajectories
    ):
        plan = FaultPlan().inject(
            "latency", trajectory=0, window=0, latency_s=30.0
        )
        runner, clock = make_runner(trained_gendt, fitted_fdas, plan)
        result = runner.run(campaign_trajectories[:1])
        assert result.envelopes[0].status == STATUS_OK
        assert clock() >= 30.0
        assert result.elapsed_s >= 30.0


class TestCampaignConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            CampaignConfig(max_resamples=-1).validate()
        with pytest.raises(ValueError):
            CampaignConfig(trajectory_deadline_s=0.0).validate()
        with pytest.raises(ValueError):
            CampaignConfig(campaign_deadline_s=-3.0).validate()

    def test_rejects_unknown_start_level(self):
        with pytest.raises(ValueError, match="unknown ladder level"):
            CampaignConfig(start_level="turbo").validate()
