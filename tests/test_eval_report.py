"""Consolidated report builder."""

from pathlib import Path

import pytest

from repro.eval.report import REPORT_SECTIONS, build_report, collect_results, main


@pytest.fixture
def results_dir(tmp_path):
    d = tmp_path / "results"
    d.mkdir()
    (d / "table01_dataset_a_stats.txt").write_text("Table 1 content\nrow")
    (d / "fig09_envelope.txt").write_text("envelope figure")
    return d


class TestCollect:
    def test_collects_present_files(self, results_dir):
        found = collect_results(results_dir)
        assert set(found) == {"table01_dataset_a_stats", "fig09_envelope"}

    def test_empty_dir(self, tmp_path):
        assert collect_results(tmp_path) == {}


class TestBuild:
    def test_report_contains_sections_in_order(self, results_dir):
        report = build_report(results_dir)
        assert report.index("Table 1 content") < report.index("envelope figure")

    def test_missing_sections_listed(self, results_dir):
        report = build_report(results_dir)
        assert "missing sections" in report
        assert "Table 12" in report

    def test_no_missing_when_all_present(self, tmp_path):
        for stem, _ in REPORT_SECTIONS:
            (tmp_path / f"{stem}.txt").write_text("x")
        report = build_report(tmp_path)
        assert "missing sections" not in report

    def test_section_registry_matches_bench_names(self):
        # Every registered stem corresponds to a record_result() call in the
        # benchmark suite (keeps the report and benches in sync).
        bench_dir = Path(__file__).parent.parent / "benchmarks"
        source = "\n".join(
            p.read_text() for p in bench_dir.glob("test_*.py")
        )
        for stem, _ in REPORT_SECTIONS:
            assert f'"{stem}"' in source, stem


class TestMain:
    def test_prints_to_stdout(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "Table 1 content" in capsys.readouterr().out

    def test_writes_to_file(self, results_dir, tmp_path):
        out = tmp_path / "report.txt"
        assert main([str(results_dir), str(out)]) == 0
        assert "Table 1 content" in out.read_text()
