"""Autodiff engine tests: op correctness by numerical gradient checking."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, concat, stack, where


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn of one array."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        xp = x.copy()
        xp[idx] += eps
        xm = x.copy()
        xm[idx] -= eps
        grad[idx] = (fn(xp) - fn(xm)) / (2 * eps)
    return grad


def check_grad(build, x: np.ndarray, tol: float = 1e-5) -> None:
    """Compare autodiff grad of ``build(tensor)`` against finite differences."""
    t = Tensor(x, requires_grad=True)
    out = build(t)
    out.backward()
    analytic = t.grad
    numeric = numerical_grad(lambda arr: build(Tensor(arr, requires_grad=True)).item(), x)
    assert analytic is not None
    np.testing.assert_allclose(analytic, numeric, atol=tol, rtol=tol)


@pytest.fixture
def x(rng):
    return rng.normal(size=(3, 4))


class TestArithmetic:
    def test_add_grad(self, x):
        check_grad(lambda t: (t + 2.0).sum(), x)

    def test_mul_grad(self, x):
        check_grad(lambda t: (t * t).sum(), x)

    def test_sub_grad(self, x):
        check_grad(lambda t: (t - 3.0 * t).sum(), x)

    def test_div_grad(self, x):
        check_grad(lambda t: (t / (t * t + 2.0)).sum(), x)

    def test_pow_grad(self, x):
        check_grad(lambda t: ((t * t + 1.0) ** 1.5).sum(), x)

    def test_neg_grad(self, x):
        check_grad(lambda t: (-t * 2.0).sum(), x)

    def test_radd_rmul(self, x):
        t = Tensor(x, requires_grad=True)
        out = (1.0 + t) * 2.0
        np.testing.assert_allclose(out.numpy(), (1.0 + x) * 2.0)

    def test_rsub_rdiv(self, x):
        t = Tensor(np.abs(x) + 1.0, requires_grad=True)
        out = 1.0 - t
        np.testing.assert_allclose(out.numpy(), 1.0 - (np.abs(x) + 1.0))
        out2 = 1.0 / t
        np.testing.assert_allclose(out2.numpy(), 1.0 / (np.abs(x) + 1.0))

    def test_broadcast_add_grad(self, rng):
        a = rng.normal(size=(3, 4))
        bias = rng.normal(size=(4,))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(bias, requires_grad=True)
        ((ta + tb) * 2.0).sum().backward()
        np.testing.assert_allclose(ta.grad, np.full((3, 4), 2.0))
        np.testing.assert_allclose(tb.grad, np.full(4, 6.0))

    def test_broadcast_mul_grad(self, rng):
        a = rng.normal(size=(2, 3))
        scale = rng.normal(size=(1, 3))
        ta = Tensor(a, requires_grad=True)
        ts = Tensor(scale, requires_grad=True)
        (ta * ts).sum().backward()
        np.testing.assert_allclose(ta.grad, np.broadcast_to(scale, (2, 3)))
        np.testing.assert_allclose(ts.grad, a.sum(axis=0, keepdims=True))


class TestMatmul:
    def test_matmul_grad_left(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_grad(lambda t: t.matmul(Tensor(b)).sum(), a)

    def test_matmul_grad_right(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        check_grad(lambda t: Tensor(a).matmul(t).sum(), b)

    def test_batched_matmul(self, rng):
        a = rng.normal(size=(5, 3, 4))
        b = rng.normal(size=(4, 2))
        ta = Tensor(a, requires_grad=True)
        out = ta.matmul(Tensor(b, requires_grad=True))
        assert out.shape == (5, 3, 2)
        out.sum().backward()
        assert ta.grad.shape == a.shape


class TestNonlinearities:
    @pytest.mark.parametrize(
        "op",
        ["tanh", "sigmoid", "relu", "softplus", "exp", "abs"],
    )
    def test_unary_grads(self, op, rng):
        x = rng.normal(size=(3, 3)) + 0.1  # avoid relu/abs kinks at 0
        check_grad(lambda t: getattr(t, op)().sum(), x)

    def test_log_grad(self, rng):
        x = np.abs(rng.normal(size=(3, 3))) + 0.5
        check_grad(lambda t: t.log().sum(), x)

    def test_leaky_relu_values(self):
        t = Tensor(np.array([-2.0, 0.5]))
        out = t.leaky_relu(0.1)
        np.testing.assert_allclose(out.numpy(), [-0.2, 0.5])

    def test_leaky_relu_grad(self, rng):
        x = rng.normal(size=(4,)) + 0.05
        check_grad(lambda t: t.leaky_relu(0.2).sum(), x)

    def test_clip_grad_zero_outside(self):
        t = Tensor(np.array([-5.0, 0.0, 5.0]), requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_sigmoid_saturation_is_finite(self):
        t = Tensor(np.array([1e4, -1e4]), requires_grad=True)
        out = t.sigmoid()
        assert np.all(np.isfinite(out.numpy()))
        np.testing.assert_allclose(out.numpy(), [1.0, 0.0], atol=1e-12)


class TestReductions:
    def test_sum_axis_grad(self, rng):
        x = rng.normal(size=(3, 4))
        check_grad(lambda t: (t.sum(axis=0) ** 2).sum(), x)

    def test_sum_keepdims(self, rng):
        x = rng.normal(size=(3, 4))
        t = Tensor(x)
        assert t.sum(axis=1, keepdims=True).shape == (3, 1)

    def test_mean_grad(self, rng):
        x = rng.normal(size=(5,))
        check_grad(lambda t: (t.mean() ** 2), x)

    def test_mean_axis_matches_numpy(self, rng):
        x = rng.normal(size=(3, 4, 5))
        np.testing.assert_allclose(Tensor(x).mean(axis=2).numpy(), x.mean(axis=2))

    def test_var(self, rng):
        x = rng.normal(size=(10,))
        np.testing.assert_allclose(Tensor(x).var().item(), x.var(), rtol=1e-12)


class TestShapes:
    def test_reshape_grad(self, rng):
        x = rng.normal(size=(2, 6))
        check_grad(lambda t: (t.reshape(3, 4) ** 2).sum(), x)

    def test_transpose_grad(self, rng):
        x = rng.normal(size=(2, 3))
        check_grad(lambda t: (t.T.matmul(Tensor(np.ones((2, 2))))).sum(), x)

    def test_transpose_axes(self, rng):
        x = rng.normal(size=(2, 3, 4))
        t = Tensor(x, requires_grad=True)
        out = t.transpose(2, 0, 1)
        assert out.shape == (4, 2, 3)
        out.sum().backward()
        assert t.grad.shape == x.shape

    def test_getitem_grad(self, rng):
        x = rng.normal(size=(4, 5))
        t = Tensor(x, requires_grad=True)
        (t[1:3, :] * 2.0).sum().backward()
        expected = np.zeros_like(x)
        expected[1:3, :] = 2.0
        np.testing.assert_allclose(t.grad, expected)

    def test_concat_grad(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 2))
        ta = Tensor(a, requires_grad=True)
        tb = Tensor(b, requires_grad=True)
        concat([ta, tb], axis=1).sum().backward()
        np.testing.assert_allclose(ta.grad, np.ones_like(a))
        np.testing.assert_allclose(tb.grad, np.ones_like(b))

    def test_stack_grad(self, rng):
        parts = [Tensor(rng.normal(size=(3,)), requires_grad=True) for _ in range(4)]
        out = stack(parts, axis=0)
        assert out.shape == (4, 3)
        (out * 2.0).sum().backward()
        for p in parts:
            np.testing.assert_allclose(p.grad, np.full(3, 2.0))

    def test_where_grad(self):
        a = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        b = Tensor(np.array([10.0, 20.0]), requires_grad=True)
        where(np.array([True, False]), a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 0.0])
        np.testing.assert_allclose(b.grad, [0.0, 1.0])


class TestBackwardMechanics:
    def test_grad_accumulates_across_uses(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * t + t).backward()  # d/dt (t^2 + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 3.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(t.grad, [3.0, 6.0, 9.0])

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(1)).backward()

    def test_no_grad_context(self):
        t = Tensor(np.ones(2), requires_grad=True)
        with nn.no_grad():
            out = t * 2.0
        assert not out.requires_grad
        assert nn.is_grad_enabled()

    def test_detach(self):
        t = Tensor(np.ones(2), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        np.testing.assert_allclose(d.numpy(), t.numpy())

    def test_deep_chain_no_recursion_error(self):
        # Backward is iterative, so very deep graphs must not blow the stack.
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t
        for _ in range(3000):
            out = out * 1.0001
        out.backward()
        assert t.grad is not None and np.isfinite(t.grad[0])

    def test_composite_gradient_check(self, rng):
        x = rng.normal(size=(3, 4))
        w = rng.normal(size=(4, 2))

        def build(t):
            h = t.matmul(Tensor(w)).tanh()
            return (h * h).mean() + t.sigmoid().sum() * 0.1

        check_grad(build, x)
