"""Layer behaviour: Linear, LeakyReLU, Dropout (incl. MC-dropout), MLP."""

import numpy as np
import pytest

from repro import nn


@pytest.fixture
def layer_rng():
    return np.random.default_rng(2)


class TestLinear:
    def test_output_shape(self, layer_rng):
        layer = nn.Linear(5, 3, layer_rng)
        out = layer(nn.Tensor(np.ones((7, 5))))
        assert out.shape == (7, 3)

    def test_matches_manual_affine(self, layer_rng):
        layer = nn.Linear(4, 2, layer_rng)
        x = layer_rng.normal(size=(3, 4))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(nn.Tensor(x)).numpy(), expected)

    def test_no_bias(self, layer_rng):
        layer = nn.Linear(4, 2, layer_rng, bias=False)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_3d_input(self, layer_rng):
        layer = nn.Linear(4, 2, layer_rng)
        out = layer(nn.Tensor(np.ones((5, 6, 4))))
        assert out.shape == (5, 6, 2)

    def test_gradients_flow(self, layer_rng):
        layer = nn.Linear(3, 1, layer_rng)
        loss = layer(nn.Tensor(np.ones((2, 3)))).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None


class TestDropout:
    def test_identity_in_eval(self, layer_rng):
        drop = nn.Dropout(0.5, layer_rng)
        drop.eval()
        x = np.ones((100,))
        np.testing.assert_allclose(drop(nn.Tensor(x)).numpy(), x)

    def test_zeroes_in_train(self, layer_rng):
        drop = nn.Dropout(0.5, layer_rng)
        out = drop(nn.Tensor(np.ones(1000))).numpy()
        zero_fraction = (out == 0).mean()
        assert 0.35 < zero_fraction < 0.65

    def test_inverted_scaling_preserves_mean(self, layer_rng):
        drop = nn.Dropout(0.3, layer_rng)
        out = drop(nn.Tensor(np.ones(20000))).numpy()
        assert abs(out.mean() - 1.0) < 0.05

    def test_force_active_in_eval_mode(self, layer_rng):
        drop = nn.Dropout(0.5, layer_rng)
        drop.eval()
        drop.force_active = True
        out = drop(nn.Tensor(np.ones(1000))).numpy()
        assert (out == 0).any()

    def test_invalid_probability(self, layer_rng):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, layer_rng)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1, layer_rng)

    def test_p_zero_is_identity(self, layer_rng):
        drop = nn.Dropout(0.0, layer_rng)
        x = np.ones(10)
        np.testing.assert_allclose(drop(nn.Tensor(x)).numpy(), x)


class TestActivationModules:
    def test_leaky_relu_module(self):
        act = nn.LeakyReLU(0.1)
        out = act(nn.Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.numpy(), [-0.1, 2.0])

    def test_tanh_sigmoid_modules(self):
        x = nn.Tensor(np.array([0.0]))
        assert nn.Tanh()(x).item() == 0.0
        assert nn.Sigmoid()(x).item() == 0.5


class TestSequentialAndMLP:
    def test_sequential_order(self, layer_rng):
        seq = nn.Sequential(nn.Linear(3, 3, layer_rng), nn.LeakyReLU(), nn.Linear(3, 1, layer_rng))
        assert len(seq) == 3
        out = seq(nn.Tensor(np.ones((2, 3))))
        assert out.shape == (2, 1)

    def test_mlp_shapes(self, layer_rng):
        mlp = nn.MLP(6, [8, 8], 2, layer_rng, dropout=0.1)
        out = mlp(nn.Tensor(np.ones((4, 6))))
        assert out.shape == (4, 2)

    def test_mlp_dropout_layers_property(self, layer_rng):
        mlp = nn.MLP(3, [4], 1, layer_rng, dropout=0.2)
        assert len(mlp.dropout_layers) == 1
        mlp_no = nn.MLP(3, [4], 1, layer_rng, dropout=0.0)
        assert len(mlp_no.dropout_layers) == 0

    def test_mlp_can_fit_xor_like_function(self, layer_rng):
        # Nonlinear target needs the hidden layer to work.
        mlp = nn.MLP(2, [16], 1, layer_rng)
        x = layer_rng.normal(size=(256, 2))
        y = (np.sign(x[:, 0] * x[:, 1]))[:, None]
        opt = nn.Adam(mlp.parameters(), lr=1e-2)
        for _ in range(200):
            loss = nn.mse_loss(mlp(nn.Tensor(x)), nn.Tensor(y))
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.35
