"""Unit tests for the serving circuit breaker and the chaos fault plan.

Everything here is model-free and clock-injected: the breaker state machine
is driven with a hand-advanced fake clock, so no test ever sleeps.
"""

import pytest

from repro.runtime.errors import CircuitOpenError
from repro.serving import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    FaultPlan,
    ManualClock,
)


def make_breaker(clock, threshold=3, base=1.0, factor=2.0, seed=0):
    return CircuitBreaker(
        failure_threshold=threshold,
        cooldown_base_s=base,
        cooldown_factor=factor,
        seed=seed,
        clock=clock,
    )


class TestBreakerStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker(ManualClock())
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()
        breaker.check()  # must not raise

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = make_breaker(ManualClock(), threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        assert breaker.trip_count == 1
        assert not breaker.allow()

    def test_success_resets_consecutive_count(self):
        breaker = make_breaker(ManualClock(), threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == STATE_CLOSED  # never two in a row

    def test_check_raises_with_remaining_cooldown(self):
        clock = ManualClock()
        breaker = make_breaker(clock, threshold=1, base=5.0)
        breaker.record_failure()
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check()
        assert excinfo.value.cooldown_remaining_s > 0.0

    def test_half_open_probe_success_closes(self):
        clock = ManualClock()
        breaker = make_breaker(clock, threshold=1)
        breaker.record_failure()
        assert breaker.state == STATE_OPEN
        clock.sleep(breaker.current_cooldown_s() + 0.01)
        assert breaker.allow()  # admits the probe
        assert breaker.state == STATE_HALF_OPEN
        breaker.record_success()
        assert breaker.state == STATE_CLOSED

    def test_half_open_probe_failure_reopens_with_longer_cooldown(self):
        clock = ManualClock()
        breaker = make_breaker(clock, threshold=1, base=1.0, factor=2.0)
        breaker.record_failure()
        first_cooldown = breaker.current_cooldown_s()
        clock.sleep(first_cooldown + 0.01)
        assert breaker.allow()
        breaker.record_failure()  # probe fails
        assert breaker.state == STATE_OPEN
        assert breaker.trip_count == 2
        assert breaker.current_cooldown_s() > first_cooldown

    def test_cooldown_remaining_decreases_with_clock(self):
        clock = ManualClock()
        breaker = make_breaker(clock, threshold=1, base=4.0)
        breaker.record_failure()
        before = breaker.cooldown_remaining_s()
        clock.sleep(1.0)
        after = breaker.cooldown_remaining_s()
        assert 0.0 < after < before

    def test_transitions_are_recorded_in_order(self):
        clock = ManualClock()
        breaker = make_breaker(clock, threshold=1)
        breaker.record_failure()
        clock.sleep(breaker.current_cooldown_s() + 0.01)
        breaker.allow()
        breaker.record_success()
        states = [(t.from_state, t.to_state) for t in breaker.transitions]
        assert states == [
            (STATE_CLOSED, STATE_OPEN),
            (STATE_OPEN, STATE_HALF_OPEN),
            (STATE_HALF_OPEN, STATE_CLOSED),
        ]

    def test_cooldowns_deterministic_per_seed(self):
        a = make_breaker(ManualClock(), seed=5)
        b = make_breaker(ManualClock(), seed=5)
        c = make_breaker(ManualClock(), seed=6)
        assert a._cooldowns == b._cooldowns
        assert a._cooldowns != c._cooldowns

    def test_cooldown_schedule_clamps_after_many_trips(self):
        clock = ManualClock()
        breaker = make_breaker(clock, threshold=1)
        for _ in range(20):  # far beyond max_trips
            breaker.record_failure()
            clock.sleep(breaker.current_cooldown_s() + 0.01)
            assert breaker.allow()
        assert breaker.current_cooldown_s() == breaker._cooldowns[-1]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown_base_s=-1.0)


class TestFaultPlan:
    def test_exact_coordinate_match(self):
        plan = FaultPlan().inject("exception", trajectory=2, window=3, level="full")
        assert plan.pop("exception", 2, 3, "full") is not None
        assert plan.pop("exception", 2, 3, "full") is None  # spent

    def test_wildcards_match_any_window_and_level(self):
        plan = FaultPlan().inject("nan_output", trajectory=1, times=2)
        assert plan.pop("nan_output", 1, 0, "full") is not None
        assert plan.pop("nan_output", 1, 7, "first_stage") is not None
        assert plan.pop("nan_output", 1, 0, "full") is None

    def test_level_filter_blocks_other_levels(self):
        plan = FaultPlan().inject("nan_output", trajectory=0, level="full", times=None)
        assert plan.pop("nan_output", 0, 0, "first_stage") is None
        assert plan.pop("nan_output", 0, 0, "full") is not None

    def test_unlimited_injection_never_spends(self):
        plan = FaultPlan().inject("nan_output", trajectory=0, times=None)
        for window in range(10):
            assert plan.pop("nan_output", 0, window, "full") is not None
        assert plan.pending() == 1

    def test_wrong_trajectory_or_kind_does_not_fire(self):
        plan = FaultPlan().inject("exception", trajectory=4)
        assert plan.pop("exception", 5, 0, "full") is None
        assert plan.pop("nan_output", 4, 0, "full") is None
        assert plan.pending() == 1

    def test_fired_log_records_actual_coordinates(self):
        plan = FaultPlan().inject("latency", trajectory=1, latency_s=2.5)
        fired = plan.pop("latency", 1, 6, "first_stage")
        assert fired.latency_s == 2.5
        assert [f.as_dict() for f in plan.fired] == [
            {
                "kind": "latency",
                "trajectory": 1,
                "window": 6,
                "level": "first_stage",
                "latency_s": 2.5,
            }
        ]

    def test_invalid_injections_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().inject("meteor_strike", trajectory=0)
        with pytest.raises(ValueError):
            FaultPlan().inject("exception", trajectory=0, times=0)
        with pytest.raises(ValueError):
            FaultPlan().inject("latency", trajectory=0)  # latency_s missing

    def test_chaining_returns_self(self):
        plan = FaultPlan()
        assert plan.inject("exception", trajectory=0) is plan


class TestManualClock:
    def test_reads_and_advances(self):
        clock = ManualClock(start_s=10.0)
        assert clock() == 10.0
        clock.sleep(2.5)
        assert clock() == 12.5
