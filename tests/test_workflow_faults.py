"""Fig. 14 loop under measurement failures + the transfer shared-weights fix."""

import copy

import numpy as np
import pytest

from repro.core import retrain_in_new_region, transfer_model
from repro.radio import DriveTestSimulator
from repro.runtime import MeasurementError


@pytest.fixture(scope="module")
def probes_and_simulator(two_city_region):
    simulator = DriveTestSimulator(two_city_region, candidate_range_m=3000.0)
    probes = []
    for k, city in enumerate(["west", "east", "west"]):
        route = two_city_region.roads.random_walk_route(
            np.random.default_rng(10 + k), 800.0, city=city
        )
        probes.append(
            two_city_region.roads.route_to_trajectory(
                route, 6.0, 1.5, scenario=f"area{k}", rng=np.random.default_rng(20 + k)
            )
        )
    return probes, simulator


def _measure_fn(probes, simulator):
    def measure(area_idx):
        return [simulator.simulate(probes[area_idx], np.random.default_rng(30 + area_idx))]

    return measure


class TestTransferCopyWeights:
    def test_shared_weights_footgun_documented_default(self, trained_gendt, two_city_region):
        transferred = transfer_model(trained_gendt, two_city_region, copy_weights=False)
        assert transferred.generator is trained_gendt.generator

    def test_copy_weights_isolates_source(
        self, trained_gendt, two_city_region, probes_and_simulator
    ):
        probes, simulator = probes_and_simulator
        pretrained = copy.deepcopy(trained_gendt)
        before = {k: v.copy() for k, v in pretrained.generator.state_dict().items()}

        transferred = transfer_model(pretrained, two_city_region, copy_weights=True)
        assert transferred.generator is not pretrained.generator
        records = _measure_fn(probes, simulator)(0)
        transferred.continue_fit(records, epochs=1)

        after = pretrained.generator.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])
        # The transferred copy, in contrast, did move.
        moved = transferred.generator.state_dict()
        assert any(not np.array_equal(moved[k], before[k]) for k in before)

    def test_shared_mode_mutates_source(
        self, trained_gendt, two_city_region, probes_and_simulator
    ):
        """Regression for the documented default: fine-tuning the shared
        transfer also moves the source weights."""
        probes, simulator = probes_and_simulator
        pretrained = copy.deepcopy(trained_gendt)
        before = {k: v.copy() for k, v in pretrained.generator.state_dict().items()}

        transferred = transfer_model(pretrained, two_city_region, copy_weights=False)
        records = _measure_fn(probes, simulator)(0)
        transferred.continue_fit(records, epochs=1)

        after = pretrained.generator.state_dict()
        assert any(not np.array_equal(before[k], after[k]) for k in before)


class TestMeasurementRetry:
    def test_fails_twice_then_succeeds_completes_loop(
        self, trained_gendt, two_city_region, probes_and_simulator
    ):
        probes, simulator = probes_and_simulator
        real_measure = _measure_fn(probes, simulator)
        fail_budget = {"left": 2}

        def flaky_measure(area_idx):
            if fail_budget["left"] > 0:
                fail_budget["left"] -= 1
                raise RuntimeError("campaign van broke down")
            return real_measure(area_idx)

        pretrained = copy.deepcopy(trained_gendt)
        result = retrain_in_new_region(
            pretrained, two_city_region, flaky_measure, probes,
            max_steps=2, epochs_per_step=1, mc_passes=2,
            measure_retries=2, copy_weights=True,
        )
        assert fail_budget["left"] == 0  # retry path exercised
        assert len(result.steps) >= 1
        assert result.steps[0].failures == 2  # both transient failures logged
        assert not result.steps[0].skipped
        assert result.total_failures >= 2

    def test_persistent_loop_failure_skips_and_continues(
        self, trained_gendt, two_city_region, probes_and_simulator
    ):
        probes, simulator = probes_and_simulator
        real_measure = _measure_fn(probes, simulator)
        failed_areas = []

        def measure(area_idx):
            if area_idx != 0:  # every non-bootstrap area is unreachable
                failed_areas.append(area_idx)
                raise RuntimeError("road closed")
            return real_measure(area_idx)

        pretrained = copy.deepcopy(trained_gendt)
        result = retrain_in_new_region(
            pretrained, two_city_region, measure, probes,
            max_steps=2, epochs_per_step=1, mc_passes=2,
            measure_retries=1, copy_weights=True,
        )
        skipped = [s for s in result.steps if s.skipped]
        assert skipped, "failed rounds must be annotated, not dropped"
        assert all(s.failures >= 1 for s in skipped)
        assert all(s.measured_area != 0 for s in skipped)
        # Skipped rounds repeat the last uncertainty and never fake a plateau.
        assert not result.converged

    def test_bootstrap_failure_raises_measurement_error(
        self, trained_gendt, two_city_region, probes_and_simulator
    ):
        probes, _ = probes_and_simulator

        def dead_measure(area_idx):
            raise RuntimeError("no van available")

        with pytest.raises(MeasurementError) as excinfo:
            retrain_in_new_region(
                trained_gendt, two_city_region, dead_measure, probes,
                max_steps=1, measure_retries=1, copy_weights=True,
            )
        assert excinfo.value.area == 0
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.__cause__, RuntimeError)

    def test_no_sleep_by_default(self, trained_gendt, two_city_region, probes_and_simulator):
        """The workflow's retries must not wall-clock-sleep under test."""
        import time

        probes, simulator = probes_and_simulator
        real_measure = _measure_fn(probes, simulator)
        calls = {"n": 0}

        def flaky(area_idx):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real_measure(area_idx)

        pretrained = copy.deepcopy(trained_gendt)
        start = time.monotonic()
        retrain_in_new_region(
            pretrained, two_city_region, flaky, probes,
            max_steps=1, epochs_per_step=1, mc_passes=2,
            measure_retries=1, measure_backoff_s=30.0, copy_weights=True,
        )
        assert time.monotonic() - start < 25.0  # far below one backoff delay
