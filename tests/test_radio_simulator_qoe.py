"""Drive-test simulator and QoE ground-truth model."""

import numpy as np
import pytest

from repro.radio import DriveTestSimulator, QoETruthModel, cell_dwell_times


class TestSimulator:
    def test_record_shapes(self, sample_record, sample_trajectory):
        assert len(sample_record) == len(sample_trajectory)
        for name in ("rsrp", "rsrq", "sinr", "cqi", "rssi"):
            assert sample_record.kpi[name].shape == (len(sample_trajectory),)
        assert sample_record.serving_cell_id.shape == (len(sample_trajectory),)

    def test_serving_cell_ids_are_candidates(self, sample_record):
        assert set(np.unique(sample_record.serving_cell_id)).issubset(
            set(sample_record.candidate_cell_ids)
        )

    def test_kpi_matrix_column_order(self, sample_record):
        mat = sample_record.kpi_matrix(["rsrq", "rsrp"])
        np.testing.assert_allclose(mat[:, 0], sample_record.kpi["rsrq"])
        np.testing.assert_allclose(mat[:, 1], sample_record.kpi["rsrp"])

    def test_kpi_matrix_serving_cell_channel(self, sample_record):
        mat = sample_record.kpi_matrix(["rsrp", "serving_cell"])
        np.testing.assert_allclose(mat[:, 1], sample_record.serving_cell_id.astype(float))

    def test_rsrp_in_physical_band(self, sample_record):
        rsrp = sample_record.kpi["rsrp"]
        assert -140 < rsrp.mean() < -40
        assert 2 < rsrp.std() < 25

    def test_repeats_differ(self, small_simulator, sample_trajectory):
        rng = np.random.default_rng(0)
        recs = small_simulator.simulate_repeats(sample_trajectory, rng, 3)
        assert not np.allclose(recs[0].kpi["rsrp"], recs[1].kpi["rsrp"])

    def test_repeats_share_structure(self, small_simulator, sample_trajectory):
        # Cross-run RSRP std should be far below the within-run dynamic range:
        # the geometry (pathloss) is shared, only shadowing/fading re-roll.
        rng = np.random.default_rng(1)
        recs = small_simulator.simulate_repeats(sample_trajectory, rng, 4)
        stack = np.stack([r.kpi["rsrp"] for r in recs])
        cross_std = stack.std(axis=0).mean()
        dynamic_range = stack.max() - stack.min()
        assert cross_std < dynamic_range / 3

    def test_deterministic_given_rng(self, small_simulator, sample_trajectory):
        r1 = small_simulator.simulate(sample_trajectory, np.random.default_rng(5))
        r2 = small_simulator.simulate(sample_trajectory, np.random.default_rng(5))
        np.testing.assert_allclose(r1.kpi["rsrp"], r2.kpi["rsrp"])

    def test_too_short_trajectory_rejected(self, small_simulator, sample_trajectory):
        with pytest.raises(ValueError):
            small_simulator.simulate(sample_trajectory.slice(0, 2), np.random.default_rng(0))

    def test_handovers_occur_on_long_route(self, sample_record):
        dwell = cell_dwell_times(sample_record.serving_cell_id, sample_record.trajectory.t)
        assert len(dwell) >= 2  # at least one handover on a 1.5 km drive

    def test_qoe_attached_when_requested(self, sample_record):
        assert set(sample_record.qoe) == {"throughput_mbps", "per"}
        assert np.all(sample_record.qoe["throughput_mbps"] >= 0)
        assert np.all((sample_record.qoe["per"] >= 0) & (sample_record.qoe["per"] <= 1))


class TestQoETruth:
    def test_throughput_increases_with_cqi(self):
        model = QoETruthModel(throughput_noise_cv=0.0)
        rng = np.random.default_rng(0)
        low = model.throughput_mbps(np.full(10, 3.0), np.full(10, 0.5), rng)
        high = model.throughput_mbps(np.full(10, 12.0), np.full(10, 0.5), rng)
        assert high.mean() > low.mean() * 3

    def test_throughput_decreases_with_load(self):
        model = QoETruthModel(throughput_noise_cv=0.0)
        rng = np.random.default_rng(0)
        idle = model.throughput_mbps(np.full(10, 10.0), np.full(10, 0.1), rng)
        busy = model.throughput_mbps(np.full(10, 10.0), np.full(10, 0.9), rng)
        assert idle.mean() > busy.mean()

    def test_per_decreases_with_sinr_margin(self):
        model = QoETruthModel(per_noise_cv=0.0)
        rng = np.random.default_rng(0)
        # Same CQI, increasing SINR above its threshold -> lower PER.
        weak = model.packet_error_rate(np.full(10, 0.0), np.full(10, 7.0), rng)
        strong = model.packet_error_rate(np.full(10, 15.0), np.full(10, 7.0), rng)
        assert strong.mean() < weak.mean()

    def test_per_bounded(self):
        model = QoETruthModel()
        rng = np.random.default_rng(0)
        per = model.packet_error_rate(
            np.linspace(-10, 30, 50), np.full(50, 7.0), rng
        )
        assert np.all((per >= 0) & (per <= 1))

    def test_generate_keys(self):
        model = QoETruthModel()
        rng = np.random.default_rng(0)
        out = model.generate(np.full(5, 10.0), np.full(5, 8.0), np.full(5, 0.4), rng)
        assert set(out) == {"throughput_mbps", "per"}
