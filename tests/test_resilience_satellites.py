"""Resilience hardening around the serving work: checkpoint corruption
surfaced as the structured taxonomy type, transfer-time context validation,
generation-boundary edge cases, sparse-measurement layout checks, and the
evaluation harness's skip-and-continue mode.
"""

import copy

import numpy as np
import pytest

from repro.baselines.fdas import FDaS
from repro.core import GenDT, small_config
from repro.core.workflow import transfer_model
from repro.datasets.mdt import SparseMeasurements
from repro.eval.harness import evaluate_method
from repro.geo.trajectory import Trajectory
from repro.runtime.errors import CheckpointCorruptError, ContextValidationError
from repro.runtime.validate import validate_trajectory


class TestCheckpointCorruption:
    def test_missing_file_raises_structured_error(self, trained_gendt, tmp_path):
        model = copy.copy(trained_gendt)
        missing = tmp_path / "nope.npz"
        with pytest.raises(CheckpointCorruptError) as excinfo:
            model.load(missing)
        assert excinfo.value.path == str(missing)
        assert "not found" in str(excinfo.value)

    def test_truncated_legacy_npz_raises_structured_error(
        self, trained_gendt, tmp_path
    ):
        # A legacy .npz save, torn mid-write.
        import repro.nn as nn

        legacy = tmp_path / "legacy.npz"
        nn.save_module(trained_gendt.generator, legacy, meta=trained_gendt._checkpoint_meta())
        data = legacy.read_bytes()
        legacy.write_bytes(data[: len(data) // 3])

        model = copy.copy(trained_gendt)
        with pytest.raises(CheckpointCorruptError) as excinfo:
            model.load(legacy)
        assert excinfo.value.path == str(legacy)
        assert "malformed legacy" in str(excinfo.value)

    def test_garbage_file_raises_structured_error(self, trained_gendt, tmp_path):
        garbage = tmp_path / "garbage.npz"
        garbage.write_bytes(b"this is not an archive at all")
        model = copy.copy(trained_gendt)
        with pytest.raises(CheckpointCorruptError) as excinfo:
            model.load(garbage)
        assert excinfo.value.path == str(garbage)

    def test_kpi_mismatch_names_checkpoint_path(
        self, trained_gendt, tiny_dataset_a, tmp_path
    ):
        path = tmp_path / "model.ckpt"
        trained_gendt.save(path)
        other = GenDT(
            tiny_dataset_a.region,
            kpis=["rsrp", "rsrq", "sinr"],
            config=trained_gendt.config,
            seed=3,
        )
        with pytest.raises(ValueError) as excinfo:
            other.load(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "do not match" in message


class TestTransferValidation:
    def test_transfer_to_compatible_region_passes(
        self, trained_gendt, tiny_dataset_b
    ):
        transferred = transfer_model(trained_gendt, tiny_dataset_b.region)
        assert transferred.region is tiny_dataset_b.region

    def test_transfer_rejects_mismatched_env_taxonomy(
        self, trained_gendt, tiny_dataset_b
    ):
        region = copy.copy(tiny_dataset_b.region)
        # A region built against a narrower land-use taxonomy: drop a class.
        region.land_use = copy.copy(region.land_use)
        region.land_use.fractions = region.land_use.fractions[..., :-1]
        with pytest.raises(ContextValidationError) as excinfo:
            transfer_model(trained_gendt, region)
        message = str(excinfo.value)
        assert "environment features" in message
        assert "n_env" in message

    def test_unfitted_model_still_requires_fit_first(self, tiny_dataset_a):
        model = GenDT(
            tiny_dataset_a.region,
            kpis=["rsrp", "rsrq"],
            config=small_config(epochs=1),
        )
        with pytest.raises(RuntimeError, match="fit"):
            transfer_model(model, tiny_dataset_a.region)


class TestValidateEdgeCases:
    def test_empty_trajectory_rejected(self):
        empty = Trajectory(np.zeros(0), np.zeros(0), np.zeros(0))
        with pytest.raises(ContextValidationError, match="empty"):
            validate_trajectory(empty)

    def test_single_point_trajectory_passes(self):
        single = Trajectory(np.array([0.0]), np.array([51.5]), np.array([-0.1]))
        validate_trajectory(single)  # no pairwise timestamp check to trip

    def test_single_point_nan_coordinate_rejected(self):
        single = Trajectory(np.array([0.0]), np.array([np.nan]), np.array([-0.1]))
        with pytest.raises(ContextValidationError) as excinfo:
            validate_trajectory(single)
        assert excinfo.value.index == 0

    def test_nan_timestamp_rejected_with_index(self):
        trajectory = Trajectory(
            np.array([0.0, 1.0, 2.0]),
            np.array([51.5, 51.5, 51.5]),
            np.array([-0.1, -0.1, -0.1]),
        )
        trajectory.t = trajectory.t.copy()
        trajectory.t[1] = np.nan
        with pytest.raises(ContextValidationError) as excinfo:
            validate_trajectory(trajectory)
        assert excinfo.value.index == 1

    def test_inf_coordinate_rejected(self):
        trajectory = Trajectory(
            np.array([0.0, 1.0]),
            np.array([51.5, np.inf]),
            np.array([-0.1, -0.1]),
        )
        with pytest.raises(ContextValidationError) as excinfo:
            validate_trajectory(trajectory)
        assert excinfo.value.index == 1


class TestSparseMeasurementLayouts:
    def test_concat_same_kpi_preserves_layout(self):
        a = SparseMeasurements(
            np.array([51.5]), np.array([-0.1]), np.array([-80.0]), kpi="rsrq"
        )
        b = SparseMeasurements(
            np.array([51.6]), np.array([-0.2]), np.array([-75.0]), kpi="rsrq"
        )
        merged = a.concat(b)
        assert merged.kpi == "rsrq"
        assert len(merged) == 2
        np.testing.assert_array_equal(merged.value, [-80.0, -75.0])

    def test_concat_mismatched_kpi_layouts_rejected_both_ways(self):
        rsrp = SparseMeasurements(
            np.array([51.5]), np.array([-0.1]), np.array([-80.0]), kpi="rsrp"
        )
        sinr = SparseMeasurements(
            np.array([51.5]), np.array([-0.1]), np.array([12.0]), kpi="sinr"
        )
        with pytest.raises(ValueError, match="different KPIs"):
            rsrp.concat(sinr)
        with pytest.raises(ValueError, match="different KPIs"):
            sinr.concat(rsrp)

    def test_concat_with_empty_same_kpi_is_identity(self):
        empty = SparseMeasurements(np.zeros(0), np.zeros(0), np.zeros(0), kpi="rsrp")
        full = SparseMeasurements(
            np.array([51.5]), np.array([-0.1]), np.array([-80.0]), kpi="rsrp"
        )
        merged = empty.concat(full)
        assert len(merged) == 1
        assert merged.kpi == "rsrp"


class TestHarnessSkip:
    def _records(self, tiny_split):
        return tiny_split.test[:3]

    def test_skip_mode_quarantines_failures_and_continues(self, tiny_split):
        records = self._records(tiny_split)
        calls = {"n": 0}

        def flaky_generate(trajectory):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("simulated generator crash")
            return np.zeros((len(trajectory), 2))

        result = evaluate_method(
            "flaky", flaky_generate, records, ["rsrp", "rsrq"], on_error="skip"
        )
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert failure["record"] == 1
        assert "RuntimeError" in failure["error"]
        # The surviving records still produced metrics.
        assert result.per_scenario

    def test_raise_mode_is_default_and_propagates(self, tiny_split):
        records = self._records(tiny_split)

        def broken_generate(trajectory):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            evaluate_method("broken", broken_generate, records, ["rsrp", "rsrq"])

    def test_shape_mismatch_is_skippable(self, tiny_split):
        records = self._records(tiny_split)

        def wrong_shape(trajectory):
            return np.zeros((len(trajectory) + 5, 2))

        result = evaluate_method(
            "short", wrong_shape, records, ["rsrp", "rsrq"], on_error="skip"
        )
        assert len(result.failures) == len(records)
        assert not result.per_scenario

    def test_invalid_on_error_rejected(self, tiny_split):
        with pytest.raises(ValueError, match="on_error"):
            evaluate_method(
                "x", lambda t: None, [], ["rsrp"], on_error="ignore"
            )


class TestFDaSReseed:
    def test_reseed_reproduces_samples(self, tiny_split):
        fdas = FDaS(kpis=["rsrp", "rsrq"], seed=0)
        fdas.fit(tiny_split.train)
        trajectory = tiny_split.test[0].trajectory
        first = fdas.generate(trajectory)
        second = fdas.generate(trajectory)  # RNG advanced: different draw
        assert not np.array_equal(first, second)
        fdas.reseed(0)
        replay = fdas.generate(trajectory)
        np.testing.assert_array_equal(first, replay)

    def test_reseed_keeps_fits(self, tiny_split):
        fdas = FDaS(kpis=["rsrp", "rsrq"], seed=0)
        fdas.fit(tiny_split.train)
        fits_before = dict(fdas.fits)
        fdas.reseed(99)
        assert fdas.fits == fits_before
