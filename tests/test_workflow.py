"""Fig. 14 workflow: model transfer and new-region retraining."""

import numpy as np
import pytest

from repro.core import retrain_in_new_region, transfer_model
from repro.radio import DriveTestSimulator


@pytest.fixture(scope="module")
def new_region_setup(two_city_region):
    """Candidate areas (one probe route each) + a measure callback."""
    rng = np.random.default_rng(0)
    simulator = DriveTestSimulator(two_city_region, candidate_range_m=3000.0)
    probes = []
    for k, city in enumerate(["west", "east", "west"]):
        route = two_city_region.roads.random_walk_route(
            np.random.default_rng(10 + k), 800.0, city=city
        )
        probes.append(
            two_city_region.roads.route_to_trajectory(
                route, 6.0, 1.5, scenario=f"area{k}", rng=np.random.default_rng(20 + k)
            )
        )

    def measure(area_idx):
        return [simulator.simulate(probes[area_idx], np.random.default_rng(30 + area_idx))]

    return probes, measure


class TestTransfer:
    def test_transfer_rebinds_region(self, trained_gendt, two_city_region):
        transferred = transfer_model(trained_gendt, two_city_region)
        assert transferred.region is two_city_region
        assert transferred.context.region is two_city_region
        # Weights are shared (same generator object).
        assert transferred.generator is trained_gendt.generator

    def test_transfer_requires_fitted(self, tiny_dataset_a, two_city_region):
        from repro.core import GenDT, small_config

        model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=small_config())
        with pytest.raises(RuntimeError):
            transfer_model(model, two_city_region)

    def test_transferred_model_generates(self, trained_gendt, two_city_region, new_region_setup):
        probes, _ = new_region_setup
        transferred = transfer_model(trained_gendt, two_city_region)
        out = transferred.generate(probes[0])
        assert out.shape == (len(probes[0]), 2)
        assert np.all(np.isfinite(out))


class TestRetrainLoop:
    def test_workflow_runs_and_records_steps(self, trained_gendt, two_city_region, new_region_setup):
        import copy

        probes, measure = new_region_setup
        pretrained = copy.deepcopy(trained_gendt)
        result = retrain_in_new_region(
            pretrained, two_city_region, measure, probes,
            max_steps=2, epochs_per_step=1, mc_passes=2,
        )
        assert len(result.steps) >= 1
        assert result.steps[0].measured_area == 0
        assert all(np.isfinite(s.model_uncertainty) for s in result.steps)
        assert result.steps[-1].records_used >= result.steps[0].records_used

    def test_measured_areas_unique(self, trained_gendt, two_city_region, new_region_setup):
        import copy

        probes, measure = new_region_setup
        pretrained = copy.deepcopy(trained_gendt)
        result = retrain_in_new_region(
            pretrained, two_city_region, measure, probes,
            max_steps=3, epochs_per_step=1, mc_passes=2, plateau_tolerance=-1.0,
        )
        areas = [s.measured_area for s in result.steps]
        assert len(set(areas)) == len(areas)

    def test_requires_probes(self, trained_gendt, two_city_region):
        with pytest.raises(ValueError):
            retrain_in_new_region(
                trained_gendt, two_city_region, lambda i: [], [], max_steps=1
            )

    def test_empty_bootstrap_rejected(self, trained_gendt, two_city_region, new_region_setup):
        probes, _ = new_region_setup
        with pytest.raises(ValueError):
            retrain_in_new_region(
                trained_gendt, two_city_region, lambda i: [], probes, max_steps=1
            )
