"""Conditional-mean generation (GenDT.generate_expected)."""

import numpy as np
import pytest

from repro.metrics import mae


class TestGenerateExpected:
    def test_shape_matches_generate(self, trained_gendt, tiny_split):
        traj = tiny_split.test[0].trajectory
        expected = trained_gendt.generate_expected(traj, n_samples=3)
        single = trained_gendt.generate(traj)
        assert expected.shape == single.shape

    def test_less_variable_than_single_draw(self, trained_gendt, tiny_split):
        traj = tiny_split.test[0].trajectory
        expected = trained_gendt.generate_expected(traj, n_samples=6)
        draws = trained_gendt.generate_samples(traj, 6)
        # Averaging shrinks the sampling noise, so the expected series'
        # high-frequency variation is below the typical single draw's.
        def roughness(series):
            return float(np.abs(np.diff(series[:, 0])).mean())

        single_roughness = np.mean([roughness(d) for d in draws])
        assert roughness(expected) < single_roughness

    def test_respects_physical_ranges(self, trained_gendt, tiny_split):
        traj = tiny_split.test[0].trajectory
        out = trained_gendt.generate_expected(traj, n_samples=2)
        assert np.all((out[:, 0] >= -140) & (out[:, 0] <= -44))
        assert np.all((out[:, 1] >= -19.5) & (out[:, 1] <= -3.0))

    def test_pointwise_error_not_worse_than_single(self, trained_gendt, tiny_split):
        rec = tiny_split.test[0]
        real = rec.kpi["rsrp"]
        err_expected = mae(real, trained_gendt.generate_expected(rec.trajectory, 6)[:, 0])
        err_single = np.mean([
            mae(real, trained_gendt.generate(rec.trajectory)[:, 0]) for _ in range(4)
        ])
        assert err_expected <= err_single * 1.05

    def test_requires_fit(self, tiny_dataset_a, tiny_split):
        from repro.core import GenDT, small_config

        model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=small_config())
        with pytest.raises(RuntimeError):
            model.generate_expected(tiny_split.test[0].trajectory)
