"""Evaluation harness, reporting, and analysis helpers."""

import numpy as np
import pytest

from repro.eval import (
    analyze_stochasticity,
    ascii_plot,
    average_rows,
    cdf_points,
    compare_methods,
    evaluate_method,
    fidelity_rows,
    format_table,
    GenerationEnvelope,
    ranking,
    serving_cell_distances_fast,
    sparkline,
    stitched_generation,
)


def constant_generator(value, n_kpis=2):
    def generate(trajectory):
        return np.full((len(trajectory), n_kpis), value, dtype=float)

    return generate


def echo_generator(record_map):
    """Perfect oracle: returns the real series (keyed by trajectory id)."""

    def generate(trajectory):
        return record_map[id(trajectory)]

    return generate


class TestHarness:
    def test_evaluate_method_structure(self, tiny_split):
        result = evaluate_method(
            "const", constant_generator(-85.0), tiny_split.test, ["rsrp", "rsrq"]
        )
        assert set(result.scenarios()) == {r.scenario for r in tiny_split.test}
        for scenario in result.scenarios():
            for kpi in ("rsrp", "rsrq"):
                for metric in ("mae", "dtw", "hwd"):
                    assert result.get(scenario, kpi, metric) >= 0

    def test_oracle_scores_zero(self, tiny_split):
        record_map = {
            id(r.trajectory): r.kpi_matrix(["rsrp", "rsrq"]) for r in tiny_split.test
        }
        result = evaluate_method(
            "oracle", echo_generator(record_map), tiny_split.test, ["rsrp", "rsrq"]
        )
        assert result.average("rsrp", "mae") == pytest.approx(0.0, abs=1e-9)

    def test_shape_mismatch_caught(self, tiny_split):
        def bad(trajectory):
            return np.zeros((len(trajectory), 5))

        with pytest.raises(ValueError):
            evaluate_method("bad", bad, tiny_split.test, ["rsrp", "rsrq"])

    def test_ranking_prefers_oracle(self, tiny_split):
        record_map = {
            id(r.trajectory): r.kpi_matrix(["rsrp", "rsrq"]) for r in tiny_split.test
        }
        results = compare_methods(
            {
                "oracle": echo_generator(record_map),
                "const": constant_generator(-85.0),
            },
            tiny_split.test,
            ["rsrp", "rsrq"],
        )
        assert ranking(results, "rsrp", "mae")[0] == "oracle"

    def test_average_missing_kpi_raises(self, tiny_split):
        result = evaluate_method(
            "const", constant_generator(-85.0, n_kpis=1), tiny_split.test, ["rsrp"]
        )
        with pytest.raises(KeyError):
            result.average("cqi", "mae")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1.2345, "x"], [2.0, "yy"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # all lines equal width

    def test_format_table_with_title(self):
        text = format_table(["h"], [[1.0]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_sparkline_length(self):
        out = sparkline(np.sin(np.linspace(0, 10, 500)), width=40)
        assert len(out) == 40

    def test_sparkline_constant(self):
        out = sparkline(np.ones(10))
        assert len(set(out)) == 1

    def test_ascii_plot_contains_legend(self):
        text = ascii_plot({"real": [1, 2, 3], "gen": [3, 2, 1]}, width=20, height=5)
        assert "real" in text and "gen" in text

    def test_cdf_points(self, rng):
        xs, cdf = cdf_points(rng.normal(size=200))
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[-1] == pytest.approx(1.0)

    def test_fidelity_rows_shape(self, tiny_split):
        results = {
            "const": evaluate_method(
                "const", constant_generator(-85.0, n_kpis=1), tiny_split.test, ["rsrp"]
            )
        }
        scenarios = results["const"].scenarios()
        headers, rows = fidelity_rows(results, "rsrp", scenarios)
        assert len(headers) == 1 + 3 * len(scenarios)
        assert len(rows) == 1

    def test_average_rows_shape(self, tiny_split):
        results = {
            "const": evaluate_method(
                "const", constant_generator(-85.0), tiny_split.test, ["rsrp", "rsrq"]
            )
        }
        headers, rows = average_rows(results, ["rsrp", "rsrq"])
        assert len(headers) == 1 + 6
        assert len(rows[0]) == len(headers)


class TestAnalysis:
    def test_stochasticity(self, small_simulator, sample_trajectory):
        rng = np.random.default_rng(0)
        analysis = analyze_stochasticity(small_simulator, sample_trajectory, rng, repeats=4)
        assert analysis.rsrp_runs.shape == (4, len(sample_trajectory))
        assert analysis.mean_cross_run_std > 0.5  # Fig. 1: real variability
        diversity = analysis.serving_cell_diversity()
        assert diversity.max() >= 2  # Fig. 2: serving cell varies across runs

    def test_stochasticity_correlation(self, small_simulator, sample_trajectory):
        rng = np.random.default_rng(1)
        analysis = analyze_stochasticity(small_simulator, sample_trajectory, rng, repeats=5)
        # Locations with serving-cell churn show more RSRP variation.
        assert analysis.correlation_std_vs_diversity() > 0.0

    def test_envelope(self, rng):
        real = rng.normal(size=100)
        samples = real[None] + rng.normal(0, 0.1, size=(10, 100))
        env = GenerationEnvelope(real=real, samples=samples)
        assert np.all(env.lower <= env.upper)
        assert env.coverage() > 0.5
        assert env.histogram_hwd() < 1.0

    def test_serving_distances(self, sample_record, small_region):
        d = serving_cell_distances_fast(sample_record, small_region.deployment)
        assert d.shape == (len(sample_record),)
        assert np.all(d >= 0)
        assert d.max() < 5000

    def test_stitched_generation_covers(self, tiny_split):
        traj = tiny_split.test[0].trajectory

        def generate(piece):
            return np.zeros((len(piece), 2))

        out = stitched_generation(generate, traj, segment_s=30.0)
        assert out.shape == (len(traj), 2)
