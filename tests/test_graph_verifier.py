"""Tests for the symbolic graph verifier (repro.analysis.graph).

Covers the three layers of the subsystem: the verifier itself (clean models
pass, the seeded defect classes are caught with named module paths and
symbolic shapes), the integration points (raise_on_error, RNG restoration so
fit/load-time verification cannot shift seeded streams), and the tooling on
top (verify-graph CLI exit codes, the SHP001 lint rule, lint --select /
--ignore / --format json).
"""

import json
import textwrap

import numpy as np
import pytest

from repro import cli, nn
from repro.analysis.engine import lint_file
from repro.analysis.engine import main as lint_main
from repro.analysis.graph import verify
from repro.analysis.graph.registry import seeded_defects, shipped_entries
from repro.analysis.graph.verifier import _collect_generators
from repro.runtime.errors import GraphContractError

SHIPPED = {entry.name: entry for entry in shipped_entries()}
DEFECTS = {defect.name: defect for defect in seeded_defects()}


# ---------------------------------------------------------------------------
# Clean models verify clean.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(SHIPPED))
def test_shipped_model_verifies_clean(name):
    entry = SHIPPED[name]
    report = verify(entry.build(0))
    assert report.ok, report.format()
    assert report.n_params > 0
    assert report.bound_dims, "verification should bind at least one dim"


def test_report_format_clean_line():
    report = verify(SHIPPED["linear"].build(0))
    text = report.format()
    assert text.startswith("ok    Linear.forward")
    assert "Fin=12" in text and "Fout=6" in text


# ---------------------------------------------------------------------------
# Seeded defects are detected, with module paths and symbolic shapes.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(DEFECTS))
def test_seeded_defect_detected(name):
    defect = DEFECTS[name]
    report = verify(defect.build(0))
    assert not report.ok, f"defect {name} slipped past the verifier"
    assert defect.expect in report.format()


def test_miswindowed_resgen_names_module_path_and_shapes():
    report = verify(DEFECTS["resgen_miswindowed"].build(0))
    text = report.format()
    # The failure is localised to the submodule that received the bad input,
    # and the message shows the symbolic shape, not just raw integers.
    assert "ResGen.mlp" in text
    assert "Fin" in text


def test_broadcast_residual_reports_axis():
    report = verify(DEFECTS["broadcast_residual"].build(0))
    text = report.format()
    assert "accidental broadcast" in text
    assert "axis" in text


def test_dead_weight_lists_exact_parameters():
    report = verify(DEFECTS["dead_weight"].build(0))
    assert sorted(report.dead_params) == ["orphan.bias", "orphan.weight"]
    assert not report.violations


def test_detached_head_reports_severed_path_and_no_grad_output():
    report = verify(DEFECTS["detached_head"].build(0))
    assert report.no_grad_output
    severed = {name: op for name, op, _path in report.severed_params}
    assert severed.get("stem.weight") == "detach"
    assert severed.get("stem.bias") == "detach"


def test_raise_on_error_raises_graph_contract_error():
    module = DEFECTS["resgen_miswindowed"].build(0)
    with pytest.raises(GraphContractError) as excinfo:
        verify(module, raise_on_error=True)
    assert "mlp" in str(excinfo.value)


def test_verify_is_free_of_rng_side_effects():
    # fit()/load() verify the generator up front; that must not advance any
    # seeded stream, or training becomes nondeterministic vs. the seed.
    build = SHIPPED["gendt_generator"].build
    verified, untouched = build(11), build(11)
    report = verify(verified)
    assert report.ok, report.format()
    rngs_a = _collect_generators(verified)
    rngs_b = _collect_generators(untouched)
    assert rngs_a and len(rngs_a) == len(rngs_b)
    for rng_a, rng_b in zip(rngs_a, rngs_b):
        np.testing.assert_array_equal(
            rng_a.standard_normal(8), rng_b.standard_normal(8)
        )


def test_verify_rejects_module_without_contract():
    class Bare(nn.Module):
        def forward(self, x):
            return x

    # A missing declaration is a usage error, not a graph defect.
    with pytest.raises(ValueError) as excinfo:
        verify(Bare())
    assert "contract" in str(excinfo.value).lower()


# ---------------------------------------------------------------------------
# CLI: repro verify-graph
# ---------------------------------------------------------------------------


def test_cli_verify_graph_clean_exit_zero(capsys):
    assert cli.main(["verify-graph", "linear", "mlp"]) == 0
    out = capsys.readouterr().out
    assert "ok    Linear.forward" in out
    assert "ok    MLP.forward" in out


def test_cli_verify_graph_unknown_model_exit_two(capsys):
    assert cli.main(["verify-graph", "no_such_model"]) == 2
    assert "unknown model" in capsys.readouterr().err


def test_cli_verify_graph_self_test(capsys):
    assert cli.main(["verify-graph", "linear", "--self-test"]) == 0
    out = capsys.readouterr().out
    for name in DEFECTS:
        assert f"ok    defect {name} detected" in out


def test_cli_verify_graph_json(capsys):
    assert cli.main(["verify-graph", "linear", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["name"] == "linear"
    assert payload[0]["ok"] is True
    assert payload[0]["bound_dims"] == {"Fin": 12, "Fout": 6}


def test_cli_verify_graph_list(capsys):
    assert cli.main(["verify-graph", "--list"]) == 0
    out = capsys.readouterr().out
    for name in SHIPPED:
        assert name in out


# ---------------------------------------------------------------------------
# SHP001: exported Modules must declare contracts.
# ---------------------------------------------------------------------------


def _write_core_file(tmp_path, source):
    target = tmp_path / "repro" / "core" / "models.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    return target


def test_shp001_flags_uncontracted_module(tmp_path):
    path = _write_core_file(
        tmp_path,
        """
        from repro import nn

        class Net(nn.Module):
            def forward(self, x):
                return x
        """,
    )
    violations = lint_file(path, select=["SHP001"])
    assert [v.rule for v in violations] == ["SHP001"]
    assert "Net" in violations[0].message


def test_shp001_accepts_contracted_module(tmp_path):
    path = _write_core_file(
        tmp_path,
        """
        from repro import nn
        from repro.analysis.graph.spec import Spec, contract

        @contract(inputs={"x": Spec("B", "F")}, outputs=Spec("B", "F"))
        class Net(nn.Module):
            def forward(self, x):
                return x
        """,
    )
    assert lint_file(path, select=["SHP001"]) == []


def test_shp001_noqa_opt_out(tmp_path):
    path = _write_core_file(
        tmp_path,
        """
        from repro import nn

        class Container(nn.Module):  # repro: noqa[SHP001]
            pass
        """,
    )
    assert lint_file(path, select=["SHP001"]) == []


def test_shp001_ignores_out_of_scope_paths(tmp_path):
    target = tmp_path / "repro" / "eval" / "models.py"
    target.parent.mkdir(parents=True)
    target.write_text(
        "from repro import nn\n\nclass Net(nn.Module):\n    pass\n",
        encoding="utf-8",
    )
    assert lint_file(target, select=["SHP001"]) == []


# ---------------------------------------------------------------------------
# Lint CLI: --select / --ignore / --format json
# ---------------------------------------------------------------------------


def test_lint_ignore_silences_rule(tmp_path):
    path = _write_core_file(
        tmp_path,
        """
        from repro import nn

        class Net(nn.Module):
            pass
        """,
    )
    assert lint_main([str(path), "--select", "SHP001"]) == 1
    assert lint_main([str(path), "--ignore", "SHP001"]) == 0


def test_lint_unknown_rule_exit_two(tmp_path, capsys):
    path = _write_core_file(tmp_path, "x = 1\n")
    assert lint_main([str(path), "--select", "NOPE999"]) == 2
    assert "unknown rule" in capsys.readouterr().err
    assert lint_main([str(path), "--ignore", "NOPE999"]) == 2


def test_lint_format_json(tmp_path, capsys):
    path = _write_core_file(
        tmp_path,
        """
        from repro import nn

        class Net(nn.Module):
            pass
        """,
    )
    assert lint_main([str(path), "--select", "SHP001", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1
    assert payload[0]["rule"] == "SHP001"
    assert set(payload[0]) == {"rule", "path", "line", "col", "message"}


def test_lint_format_json_clean_is_empty_list(tmp_path, capsys):
    path = _write_core_file(tmp_path, "x = 1\n")
    assert lint_main([str(path), "--format", "json"]) == 0
    assert json.loads(capsys.readouterr().out) == []
