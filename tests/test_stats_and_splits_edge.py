"""Edge cases for dataset statistics and geographic splitting."""

import numpy as np
import pytest

from repro.datasets import scenario_stats, split_by_geography
from repro.geo import Trajectory
from repro.radio.simulator import DriveTestRecord


def synthetic_record(lat0: float, lon0: float, n: int = 30, scenario: str = "syn") -> DriveTestRecord:
    """Hand-built record (no simulator) for splitter/stat edge tests."""
    t = np.arange(n, dtype=float)
    lat = lat0 + np.arange(n) * 1e-5
    lon = np.full(n, lon0)
    trajectory = Trajectory(t, lat, lon, scenario)
    rng = np.random.default_rng(int(abs(lat0 * 1e4)) % 2**31)
    kpi = {
        "rsrp": rng.normal(-85, 5, n),
        "rsrq": rng.normal(-13, 2, n),
        "sinr": rng.normal(8, 4, n),
        "cqi": rng.integers(1, 16, n).astype(float),
        "rssi": rng.normal(-60, 5, n),
    }
    serving = np.repeat(np.arange(3), n // 3 + 1)[:n]
    return DriveTestRecord(
        trajectory=trajectory,
        kpi=kpi,
        serving_cell_id=serving,
        candidate_cell_ids=[0, 1, 2],
        serving_load=np.full(n, 0.4),
    )


class TestScenarioStatsEdge:
    def test_single_record(self):
        stats = scenario_stats("syn", [synthetic_record(51.5, -0.1)])
        assert stats.n_samples == 30
        assert stats.avg_cell_dwell_s > 0

    def test_aggregates_multiple_records(self):
        records = [synthetic_record(51.5 + i * 0.01, -0.1) for i in range(3)]
        stats = scenario_stats("syn", records)
        assert stats.n_samples == 90

    def test_roc_of_constant_series_zero(self):
        record = synthetic_record(51.5, -0.1)
        record.kpi["rsrp"] = np.full(30, -85.0)
        stats = scenario_stats("syn", [record])
        assert stats.roc_rsrp == 0.0


class TestSplitterEdge:
    def test_two_far_records_split_cleanly(self, rng):
        # Two records 5+ km apart: either can be held out.
        records = [synthetic_record(51.5, -0.1), synthetic_record(51.55, -0.1)]
        split = split_by_geography(records, 0.5, 1000.0, rng)
        assert len(split.test) == 1
        assert len(split.train) == 1

    def test_clustered_records_fall_back(self, rng):
        # All records within metres of each other: constraint unsatisfiable,
        # fallback must still hold out exactly one (most isolated) record.
        records = [synthetic_record(51.5 + i * 1e-5, -0.1) for i in range(4)]
        split = split_by_geography(records, 0.5, 5000.0, rng)
        assert len(split.test) == 1
        assert len(split.train) == 3

    def test_requested_fraction_never_exceeded(self, rng):
        records = [synthetic_record(51.5 + i * 0.02, -0.1) for i in range(6)]
        split = split_by_geography(records, 0.34, 100.0, rng)
        assert len(split.test) <= 2  # round(0.34 * 6) = 2

    def test_deterministic_under_seed(self):
        records = [synthetic_record(51.5 + i * 0.02, -0.1) for i in range(5)]
        s1 = split_by_geography(records, 0.4, 100.0, np.random.default_rng(9))
        s2 = split_by_geography(records, 0.4, 100.0, np.random.default_rng(9))
        assert [id(r) for r in s1.test] == [id(r) for r in s2.test]
