"""Property tests for ``repro.nn.tensor._unbroadcast``.

``_unbroadcast(grad, shape)`` must be the exact adjoint of numpy
broadcasting: for any x of ``shape`` broadcast to ``grad.shape``,

    <_unbroadcast(grad, shape), x> == <grad, broadcast_to(x, grad.shape)>

Hypothesis sweeps the full space of broadcastable shape pairs — leading rank
extension, size-1 expansion (including expansion *to* size 0), 0-d scalars,
and size-0 axes — the combinations a hand-written example table always
misses.
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.nn.tensor import Tensor, _unbroadcast  # noqa: E402


@st.composite
def broadcast_pairs(draw):
    """(shape, out_shape) with out_shape a valid broadcast of shape."""
    rank = draw(st.integers(min_value=0, max_value=4))
    shape = tuple(
        draw(st.lists(st.integers(0, 4), min_size=rank, max_size=rank))
    )
    n_lead = draw(st.integers(min_value=0, max_value=2))
    lead = tuple(
        draw(st.lists(st.integers(0, 3), min_size=n_lead, max_size=n_lead))
    )
    out = list(lead) + list(shape)
    for i, size in enumerate(shape):
        if size == 1 and draw(st.booleans()):
            # Expand the unit axis — including to 0 (empty broadcast).
            out[n_lead + i] = draw(st.integers(0, 4).filter(lambda n: n != 1))
    return shape, tuple(out)


def _probe_arrays(shape, out_shape):
    """Deterministic non-uniform x/grad for a given shape pair."""
    x = np.arange(int(np.prod(shape, dtype=int)), dtype=np.float64)
    x = x.reshape(shape) * 0.37 - 1.25
    grad = np.arange(int(np.prod(out_shape, dtype=int)), dtype=np.float64)
    grad = grad.reshape(out_shape) * 0.11 + 0.5
    return x, grad


@given(pair=broadcast_pairs())
@settings(max_examples=300, deadline=None)
def test_unbroadcast_is_adjoint_of_broadcasting(pair):
    shape, out_shape = pair
    x, grad = _probe_arrays(shape, out_shape)
    reduced = _unbroadcast(grad, shape)
    assert reduced.shape == shape
    lhs = np.vdot(reduced, x)
    rhs = np.vdot(grad, np.broadcast_to(x, out_shape))
    np.testing.assert_allclose(lhs, rhs, rtol=1e-10, atol=1e-10)


@given(pair=broadcast_pairs())
@settings(max_examples=200, deadline=None)
def test_unbroadcast_of_replicated_input_counts_copies(pair):
    """Broadcasting replicates values; the adjoint sums the copies back."""
    shape, out_shape = pair
    x, _ = _probe_arrays(shape, out_shape)
    replicated = np.ascontiguousarray(np.broadcast_to(x, out_shape))
    reduced = _unbroadcast(replicated, shape)
    n_x = int(np.prod(shape, dtype=int))
    n_out = int(np.prod(out_shape, dtype=int))
    if n_x > 0 and n_out > 0:
        copies = n_out // n_x
        np.testing.assert_allclose(reduced, x * copies, rtol=1e-12)
    else:
        # Degenerate (size-0) pairs: only the shape is meaningful.
        assert reduced.shape == shape


def test_unbroadcast_to_scalar_sums_everything():
    grad = np.arange(24, dtype=np.float64).reshape(2, 3, 4)
    reduced = _unbroadcast(grad, ())
    assert reduced.shape == ()
    assert reduced == grad.sum()


def test_unbroadcast_size_zero_axis_keeps_unit_axis_zero():
    # grad with a 0-length axis broadcast from a size-1 axis: summing the
    # empty axis must yield zeros, not an error.
    grad = np.zeros((3, 0, 5))
    reduced = _unbroadcast(grad, (3, 1, 5))
    assert reduced.shape == (3, 1, 5)
    np.testing.assert_array_equal(reduced, np.zeros((3, 1, 5)))


def test_backward_through_real_broadcast_matches_unbroadcast():
    # End-to-end: an op that broadcasts must hand each operand a gradient
    # of its own shape.
    a = Tensor(np.arange(6, dtype=np.float64).reshape(2, 3), requires_grad=True)
    b = Tensor(np.arange(3, dtype=np.float64).reshape(1, 3), requires_grad=True)
    (a * b).sum().backward()
    assert a.grad.shape == (2, 3)
    assert b.grad.shape == (1, 3)
    np.testing.assert_allclose(b.grad, a.numpy().sum(axis=0, keepdims=True))
