"""Trainer internals: loss wiring, discriminator interaction, minibatching."""

import numpy as np
import pytest

from repro.core import (
    GenDT,
    GenDTGenerator,
    GenDTTrainer,
    WindowAssembler,
    make_minibatches,
    small_config,
)


@pytest.fixture(scope="module")
def training_setup(tiny_dataset_a, tiny_split):
    config = small_config(epochs=1, hidden_size=10, batch_len=15, train_step=15)
    model = GenDT(tiny_dataset_a.region, kpis=["rsrp", "rsrq"], config=config, seed=0)
    # Prepare normalizers + windows without fitting the generator.
    records = tiny_split.train[:2]
    stacked = np.concatenate([r.kpi_matrix(model.kpi_names) for r in records])
    model.target_normalizer.fit(stacked)
    windows = model.build_training_windows(records)
    env = np.concatenate([w.env_features for w in windows])
    model.env_normalizer.fit(env)
    return model, windows, config


class TestMinibatching:
    def test_all_windows_used(self, training_setup):
        model, windows, config = training_setup
        rng = np.random.default_rng(0)
        batches = make_minibatches(model._assembler(), windows, 4, rng)
        assert sum(b.n_windows for b in batches) == len(windows)

    def test_batches_respect_size_cap(self, training_setup):
        model, windows, config = training_setup
        rng = np.random.default_rng(0)
        batches = make_minibatches(model._assembler(), windows, 4, rng)
        assert all(b.n_windows <= 4 for b in batches)

    def test_mixed_lengths_grouped(self, training_setup):
        model, windows, config = training_setup
        rng = np.random.default_rng(0)
        # Append a duplicate window with a different length.
        import copy

        short = copy.deepcopy(windows[0])
        short.cell_features = short.cell_features[:7]
        short.env_features = short.env_features[:7]
        short.ue_lat = short.ue_lat[:7]
        short.ue_lon = short.ue_lon[:7]
        short.ue_speed = short.ue_speed[:7]
        short.target = short.target[:7]
        batches = make_minibatches(model._assembler(), list(windows) + [short], 4, rng)
        lengths = {b.length for b in batches}
        assert 7 in lengths


class TestTrainerWiring:
    def test_no_discriminator_when_lambda_zero(self, training_setup):
        model, windows, config = training_setup
        cfg = small_config(epochs=1, hidden_size=10, lambda_adv=0.0)
        gen = GenDTGenerator(2, 28, cfg, np.random.default_rng(0))
        trainer = GenDTTrainer(gen, cfg, np.random.default_rng(0))
        assert trainer.discriminator is None
        assert trainer.d_optimizer is None

    def test_fit_empty_batches_rejected(self, training_setup):
        model, windows, config = training_setup
        gen = GenDTGenerator(2, 28, config, np.random.default_rng(0))
        trainer = GenDTTrainer(gen, config, np.random.default_rng(0))
        with pytest.raises(ValueError):
            trainer.fit([])

    def test_single_step_updates_parameters(self, training_setup):
        model, windows, config = training_setup
        rng = np.random.default_rng(1)
        gen = GenDTGenerator(2, 28, config, rng)
        trainer = GenDTTrainer(gen, config, rng)
        batches = make_minibatches(model._assembler(), windows, 4, rng)
        before = {k: v.copy() for k, v in gen.state_dict().items()}
        trainer.fit(batches[:1], epochs=1)
        after = gen.state_dict()
        changed = [k for k in before if not np.allclose(before[k], after[k])]
        assert len(changed) > len(before) // 2  # most parameters moved

    def test_history_lengths_match_epochs(self, training_setup):
        model, windows, config = training_setup
        rng = np.random.default_rng(2)
        gen = GenDTGenerator(2, 28, config, rng)
        trainer = GenDTTrainer(gen, config, rng)
        batches = make_minibatches(model._assembler(), windows, 4, rng)
        trainer.fit(batches, epochs=3)
        assert len(trainer.history.total) == 3
        assert len(trainer.history.discriminator) == 3

    def test_discriminator_loss_finite_and_positive(self, training_setup):
        model, windows, config = training_setup
        rng = np.random.default_rng(3)
        gen = GenDTGenerator(2, 28, config, rng)
        trainer = GenDTTrainer(gen, config, rng)
        batches = make_minibatches(model._assembler(), windows, 4, rng)
        trainer.fit(batches, epochs=2)
        for value in trainer.history.discriminator:
            assert np.isfinite(value)
            assert value > 0

    def test_continue_fit_keeps_normalizers(self, trained_gendt, tiny_split):
        mean_before = trained_gendt.target_normalizer.mean.copy()
        trained_gendt.continue_fit(tiny_split.train[:1], epochs=1)
        np.testing.assert_allclose(trained_gendt.target_normalizer.mean, mean_before)

    def test_continue_fit_requires_fitted(self, tiny_dataset_a, tiny_split):
        config = small_config(epochs=1, hidden_size=8)
        model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=config, seed=0)
        with pytest.raises(RuntimeError):
            model.continue_fit(tiny_split.train[:1], epochs=1)
