"""MDT/crowdsourcing substitutes and the coverage-map use case."""

import numpy as np
import pytest

from repro.datasets import (
    SparseMeasurements,
    build_coverage_map,
    crowdsourced_campaign,
    gendt_coverage_measurements,
    mdt_campaign,
)


class TestSparseMeasurements:
    def test_concat(self):
        a = SparseMeasurements(np.zeros(2), np.zeros(2), np.ones(2))
        b = SparseMeasurements(np.ones(3), np.ones(3), np.zeros(3))
        joined = a.concat(b)
        assert len(joined) == 5

    def test_concat_kpi_mismatch(self):
        a = SparseMeasurements(np.zeros(1), np.zeros(1), np.ones(1), "rsrp")
        b = SparseMeasurements(np.zeros(1), np.zeros(1), np.ones(1), "rsrq")
        with pytest.raises(ValueError):
            a.concat(b)


class TestCampaigns:
    def test_mdt_yields_samples(self, small_region):
        rng = np.random.default_rng(0)
        samples = mdt_campaign(small_region, rng, n_users=10, participation=0.8)
        assert len(samples) > 10
        assert np.all(samples.value < -30)  # dBm-scale RSRP

    def test_mdt_participation_gates_volume(self, small_region):
        few = mdt_campaign(
            small_region, np.random.default_rng(1), n_users=20, participation=0.1
        )
        many = mdt_campaign(
            small_region, np.random.default_rng(1), n_users=20, participation=0.9
        )
        assert len(many) > len(few)

    def test_crowdsourced_quantized(self, small_region):
        rng = np.random.default_rng(2)
        samples = crowdsourced_campaign(small_region, rng, n_users=15, quantization_db=2.0)
        assert len(samples) > 0
        remainder = np.abs(samples.value / 2.0 - np.round(samples.value / 2.0))
        assert remainder.max() < 1e-9

    def test_crowdsourced_sparser_in_time(self, small_region):
        # 30 s reporting vs 10 s: fewer samples per user on similar routes.
        mdt = mdt_campaign(
            small_region, np.random.default_rng(3), n_users=20,
            report_period_s=10.0, participation=0.8, hotspot_bias=0.0,
        )
        crowd = crowdsourced_campaign(
            small_region, np.random.default_rng(3), n_users=20, report_period_s=30.0
        )
        assert len(crowd) < len(mdt)


class TestCoverageMap:
    def test_build_map_shapes(self, small_region):
        rng = np.random.default_rng(4)
        samples = mdt_campaign(small_region, rng, n_users=15, participation=0.9)
        cmap = build_coverage_map(small_region, samples, pixel_m=250.0, extent_m=1500.0)
        assert cmap.mean.shape == cmap.counts.shape
        assert 0.0 < cmap.fill_fraction <= 1.0

    def test_empty_pixels_nan(self, small_region):
        samples = SparseMeasurements(
            np.array([51.5]), np.array([-0.1]), np.array([-85.0])
        )
        cmap = build_coverage_map(small_region, samples, pixel_m=250.0, extent_m=1000.0)
        assert np.isnan(cmap.mean[cmap.counts == 0]).all()
        assert (cmap.counts > 0).sum() == 1

    def test_mdt_skew_vs_gendt_uniformity(self, small_region, trained_gendt):
        """The headline comparison: GenDT routes cover more of the map than a
        skewed MDT campaign of comparable sample count."""
        rng = np.random.default_rng(5)
        mdt = mdt_campaign(
            small_region, rng, n_users=12, participation=0.5, hotspot_bias=0.9
        )
        gendt = gendt_coverage_measurements(
            trained_gendt, small_region, rng, n_routes=8, route_length_m=900.0
        )
        map_mdt = build_coverage_map(small_region, mdt, pixel_m=300.0, extent_m=1200.0)
        map_gendt = build_coverage_map(small_region, gendt, pixel_m=300.0, extent_m=1200.0)
        assert map_gendt.fill_fraction >= map_mdt.fill_fraction * 0.8

    def test_error_vs_requires_overlap(self, small_region):
        a = build_coverage_map(
            small_region,
            SparseMeasurements(np.array([51.5]), np.array([-0.1]), np.array([-85.0])),
            pixel_m=300.0, extent_m=900.0,
        )
        b = build_coverage_map(
            small_region,
            SparseMeasurements(np.array([51.5]), np.array([-0.1]), np.array([-80.0])),
            pixel_m=300.0, extent_m=900.0,
        )
        assert a.error_vs(b) == pytest.approx(5.0)
