"""Fidelity metric properties: MAE, DTW, HWD, efficiency accounting."""

import numpy as np
import pytest

from repro.metrics import (
    dtw,
    evaluate_series,
    fraction_used,
    hwd,
    mae,
    measurement_efficiency,
    wasserstein_1d,
)


class TestMAE:
    def test_identity_zero(self, rng):
        x = rng.normal(size=100)
        assert mae(x, x) == 0.0

    def test_constant_offset(self, rng):
        x = rng.normal(size=100)
        assert mae(x, x + 3.0) == pytest.approx(3.0)

    def test_symmetry(self, rng):
        x, y = rng.normal(size=50), rng.normal(size=50)
        assert mae(x, y) == pytest.approx(mae(y, x))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mae(np.zeros(3), np.zeros(4))


class TestDTW:
    def test_identity_zero(self, rng):
        x = rng.normal(size=50)
        assert dtw(x, x) == pytest.approx(0.0)

    def test_shift_invariance_advantage(self):
        # A time-shifted copy: DTW must be far below MAE.
        t = np.linspace(0, 6 * np.pi, 200)
        x = np.sin(t)
        y = np.sin(t + 0.5)
        assert dtw(x, y, band=30) < mae(x, y) / 3

    def test_symmetry(self, rng):
        x, y = rng.normal(size=40), rng.normal(size=40)
        assert dtw(x, y) == pytest.approx(dtw(y, x))

    def test_symmetry_under_alignment_ties(self):
        # Near-constant series (quantized KPIs) produce many equal-cost
        # alignment paths of different lengths; the normalization's
        # tie-breaking must not depend on argument order.
        x = np.full(20, -43.0)
        x[9] = -40.0
        y = np.full(20, -43.0)
        y[3] = -40.0
        y[15] = -44.0
        assert dtw(x, y) == pytest.approx(dtw(y, x), rel=1e-12)

    def test_different_lengths(self, rng):
        x = rng.normal(size=50)
        y = rng.normal(size=70)
        assert np.isfinite(dtw(x, y))

    def test_band_widened_for_length_gap(self):
        # A band narrower than the length difference must still work
        # (implementation widens it).
        x = np.zeros(20)
        y = np.zeros(60)
        assert dtw(x, y, band=2) == pytest.approx(0.0)

    def test_unnormalized_scales_with_length(self):
        x = np.zeros(10)
        y = np.ones(10)
        total = dtw(x, y, normalize=False)
        per_step = dtw(x, y, normalize=True)
        assert total == pytest.approx(per_step * 10)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw(np.zeros(0), np.zeros(5))

    def test_upper_bounded_by_pointwise(self, rng):
        x, y = rng.normal(size=60), rng.normal(size=60)
        assert dtw(x, y) <= mae(x, y) + 1e-9


class TestHWD:
    def test_identical_distributions_zero(self, rng):
        x = rng.normal(size=2000)
        assert hwd(x, x) == pytest.approx(0.0, abs=1e-9)

    def test_mean_shift_approximates_offset(self, rng):
        x = rng.normal(0, 1, size=5000)
        y = rng.normal(2.0, 1, size=5000)
        assert hwd(x, y) == pytest.approx(2.0, rel=0.15)

    def test_permutation_invariant(self, rng):
        x = rng.normal(size=500)
        y = rng.normal(size=500)
        shuffled = y.copy()
        rng.shuffle(shuffled)
        assert hwd(x, y) == pytest.approx(hwd(x, shuffled))

    def test_agrees_with_exact_wasserstein(self, rng):
        x = rng.normal(0, 1, size=3000)
        y = rng.normal(1.0, 1.5, size=3000)
        assert hwd(x, y, n_bins=200) == pytest.approx(wasserstein_1d(x, y), rel=0.1)

    def test_degenerate_equal_values(self):
        assert hwd(np.full(10, 5.0), np.full(10, 5.0)) == 0.0


class TestWasserstein:
    def test_known_value(self):
        # W1 between point masses at 0 and at 3 is 3.
        assert wasserstein_1d(np.zeros(100), np.full(100, 3.0)) == pytest.approx(3.0)

    def test_triangle_inequality(self, rng):
        a = rng.normal(0, 1, 500)
        b = rng.normal(1, 1, 500)
        c = rng.normal(2, 1, 500)
        assert wasserstein_1d(a, c) <= wasserstein_1d(a, b) + wasserstein_1d(b, c) + 1e-9


class TestEvaluateSeries:
    def test_returns_all_metrics(self, rng):
        x, y = rng.normal(size=100), rng.normal(size=100)
        out = evaluate_series(x, y)
        assert set(out) == {"mae", "dtw", "hwd"}
        assert all(v >= 0 for v in out.values())


class TestEfficiency:
    def test_fraction_and_efficiency(self, tiny_dataset_a):
        records = tiny_dataset_a.records
        used = records[:2]
        frac = fraction_used(used, records)
        assert 0 < frac < 1
        assert measurement_efficiency(used, records) == pytest.approx(1 - frac)

    def test_full_usage(self, tiny_dataset_a):
        records = tiny_dataset_a.records
        assert fraction_used(records, records) == pytest.approx(1.0)
        assert measurement_efficiency(records, records) == pytest.approx(0.0)

    def test_time_weighting(self, tiny_dataset_a):
        # Fraction is weighted by duration, not record count.
        records = tiny_dataset_a.records
        longest = max(records, key=lambda r: r.trajectory.duration_s)
        frac = fraction_used([longest], records)
        assert frac >= 1.0 / len(records) * 0.5
