"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro import nn
from repro.context import window_starts
from repro.metrics import dtw, hwd, mae, wasserstein_1d
from repro.radio import (
    cqi_from_sinr,
    rsrp_from_rssi,
    rsrq_db,
    rssi_from_rsrp,
    rssi_from_rsrp_rsrq,
    select_serving_cells,
    HandoverConfig,
    cell_dwell_times,
)
from repro.radio.antenna import SectorAntenna, wrap_angle_deg
from repro.core.features import recent_values_matrix

finite_series = arrays(
    np.float64,
    st.integers(min_value=5, max_value=60),
    elements=st.floats(min_value=-120, max_value=-40, allow_nan=False),
)


class TestMetricProperties:
    @given(finite_series)
    @settings(max_examples=30, deadline=None)
    def test_mae_nonnegative_and_zero_on_self(self, x):
        assert mae(x, x) == 0.0

    @given(finite_series, st.floats(min_value=-5, max_value=5, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_mae_translation(self, x, c):
        assert mae(x, x + c) == pytest.approx(abs(c), abs=1e-9)

    @given(finite_series)
    @settings(max_examples=20, deadline=None)
    def test_dtw_bounded_by_pointwise(self, x):
        rng = np.random.default_rng(0)
        y = x + rng.normal(0, 1, size=x.shape)
        assert dtw(x, y) <= mae(x, y) + 1e-9

    @given(finite_series)
    @settings(max_examples=20, deadline=None)
    def test_dtw_symmetric(self, x):
        rng = np.random.default_rng(1)
        y = np.asarray(x) + rng.normal(0, 2, size=x.shape)
        assert dtw(x, y) == pytest.approx(dtw(y, x), rel=1e-9)

    @given(finite_series, finite_series)
    @settings(max_examples=30, deadline=None)
    def test_hwd_nonnegative_symmetric(self, x, y):
        assert hwd(x, y) >= 0
        assert hwd(x, y) == pytest.approx(hwd(y, x), abs=1e-9)

    @given(finite_series)
    @settings(max_examples=30, deadline=None)
    def test_wasserstein_identity(self, x):
        assert wasserstein_1d(x, x) == pytest.approx(0.0, abs=1e-9)


class TestKpiRelationProperties:
    @given(st.floats(min_value=-140, max_value=-44), st.floats(min_value=-100, max_value=-20))
    @settings(max_examples=50, deadline=None)
    def test_two_of_three_kpi_closure(self, rsrp, rssi):
        rsrq = rsrq_db(rsrp, rssi)
        assert rssi_from_rsrp_rsrq(rsrp, rsrq) == pytest.approx(rssi, abs=1e-9)

    @given(st.floats(min_value=-140, max_value=-44))
    @settings(max_examples=50, deadline=None)
    def test_rsrp_rssi_round_trip(self, rsrp):
        assert rsrp_from_rssi(rssi_from_rsrp(rsrp)) == pytest.approx(rsrp, abs=1e-9)

    @given(st.floats(min_value=-30, max_value=40))
    @settings(max_examples=50, deadline=None)
    def test_cqi_always_valid(self, sinr):
        cqi = cqi_from_sinr(sinr)
        assert 1 <= cqi <= 15
        assert cqi == int(cqi)

    @given(
        st.floats(min_value=-30, max_value=39),
        st.floats(min_value=0.01, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_cqi_monotone(self, sinr, delta):
        assert cqi_from_sinr(sinr + delta) >= cqi_from_sinr(sinr)


class TestAntennaProperties:
    @given(st.floats(min_value=-720, max_value=720, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_wrap_angle_range(self, angle):
        wrapped = wrap_angle_deg(angle)
        assert -180.0 <= wrapped < 180.0

    @given(st.floats(min_value=-180, max_value=179.9))
    @settings(max_examples=50, deadline=None)
    def test_gain_bounded(self, offset):
        ant = SectorAntenna(max_gain_dbi=15.0, front_to_back_db=25.0)
        gain = float(ant.gain_dbi(offset))
        assert -10.0 - 1e-9 <= gain <= 15.0 + 1e-9


class TestWindowProperties:
    @given(
        st.integers(min_value=1, max_value=500),
        st.integers(min_value=2, max_value=80),
        st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=80, deadline=None)
    def test_window_starts_cover_and_fit(self, total, length, step):
        starts = window_starts(total, length, step)
        if total == 0:
            assert starts == []
            return
        eff = min(length, total)
        if total >= length:
            covered = np.zeros(total, dtype=bool)
            for s in starts:
                assert 0 <= s <= total - length
                covered[s : s + length] = True
            assert covered[0] and covered[-1]
        else:
            assert starts == [0]


class TestServingCellProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(5, 40), st.integers(1, 6)),
            elements=st.floats(min_value=-130, max_value=-50, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_serving_always_valid_column(self, rsrp):
        serving = select_serving_cells(rsrp, HandoverConfig(3.0, 2))
        assert serving.shape == (rsrp.shape[0],)
        assert np.all((serving >= 0) & (serving < rsrp.shape[1]))

    @given(
        arrays(
            np.int64,
            st.integers(2, 60),
            elements=st.integers(min_value=0, max_value=4),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_dwell_times_sum_to_total_duration(self, ids):
        t = np.arange(len(ids), dtype=float)
        dwell = cell_dwell_times(ids, t)
        assert dwell.sum() == pytest.approx(len(ids) - 1 + 1.0)


class TestAutodiffProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            elements=st.floats(min_value=-3, max_value=3, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, x):
        t = nn.Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))

    @given(
        arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(min_value=-3, max_value=3, allow_nan=False),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_tanh_gradient_bound(self, x):
        t = nn.Tensor(x, requires_grad=True)
        t.tanh().sum().backward()
        assert np.all(t.grad <= 1.0 + 1e-12)
        assert np.all(t.grad >= 0.0)


class TestRecentValuesProperties:
    @given(
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=20),
        st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_shifted_layout(self, batch, length, m):
        rng = np.random.default_rng(0)
        series = rng.normal(size=(batch, length, 2))
        out = recent_values_matrix(series, m)
        assert out.shape == (batch, length, m * 2)
        # Row t's last block equals x[t-1] for t >= 1.
        for t in range(1, length):
            np.testing.assert_allclose(out[:, t, -2:], series[:, t - 1])
