"""KPI definitions and the paper's analytic relations between them."""

import numpy as np
import pytest

from repro.radio import (
    CQI_SINR_THRESHOLDS_DB,
    DEFAULT_N_RB,
    KPI,
    KPI_RANGES,
    KpiSpec,
    cqi_from_sinr,
    db_to_linear,
    linear_to_db,
    rsrp_from_rssi,
    rsrq_db,
    rssi_from_rsrp,
    rssi_from_rsrp_rsrq,
    spectral_efficiency_from_cqi,
    thermal_noise_dbm,
)


class TestRsrpRssiRelation:
    def test_offset_is_10log_12nrb(self):
        rssi = -50.0
        rsrp = rsrp_from_rssi(rssi)
        assert rsrp == pytest.approx(rssi - 10 * np.log10(12 * DEFAULT_N_RB))

    def test_round_trip(self):
        rsrp = -90.0
        assert rsrp_from_rssi(rssi_from_rsrp(rsrp)) == pytest.approx(rsrp)

    def test_any_two_give_the_third(self):
        # The paper's statement: given two of RSRP/RSRQ/RSSI, derive the third.
        rsrp, rssi = -92.0, -61.0
        rsrq = rsrq_db(rsrp, rssi)
        assert rssi_from_rsrp_rsrq(rsrp, rsrq) == pytest.approx(rssi)

    def test_rsrq_full_load_bound(self):
        # With RSSI equal to serving wideband power only (12*N_RB REs at
        # RSRP), RSRQ reaches its upper bound of 10log10(N_RB) - 10log10(12*N_RB)
        # = -10log10(12) ≈ -10.79 dB.
        rsrp = -90.0
        rssi = rssi_from_rsrp(rsrp)
        assert rsrq_db(rsrp, rssi) == pytest.approx(-10 * np.log10(12.0))

    def test_vectorized(self):
        rsrp = np.array([-80.0, -100.0])
        out = rssi_from_rsrp(rsrp)
        assert out.shape == (2,)


class TestCqiMapping:
    def test_thresholds_monotone(self):
        assert np.all(np.diff(CQI_SINR_THRESHOLDS_DB) > 0)

    def test_low_sinr_gives_cqi_1(self):
        assert cqi_from_sinr(-15.0) == 1.0

    def test_high_sinr_gives_cqi_15(self):
        assert cqi_from_sinr(30.0) == 15.0

    def test_monotone_in_sinr(self):
        sinrs = np.linspace(-10, 25, 100)
        cqis = cqi_from_sinr(sinrs)
        assert np.all(np.diff(cqis) >= 0)

    def test_discrete_values(self):
        cqis = cqi_from_sinr(np.linspace(-10, 25, 57))
        assert set(np.unique(cqis)).issubset(set(range(1, 16)))

    def test_scalar_in_scalar_out(self):
        assert isinstance(cqi_from_sinr(5.0), float)

    def test_spectral_efficiency_monotone(self):
        eff = spectral_efficiency_from_cqi(np.arange(1, 16))
        assert np.all(np.diff(eff) > 0)

    def test_spectral_efficiency_range(self):
        assert spectral_efficiency_from_cqi(1) == pytest.approx(0.1523)
        assert spectral_efficiency_from_cqi(15) == pytest.approx(5.5547)


class TestDbHelpers:
    def test_db_round_trip(self):
        assert linear_to_db(db_to_linear(-33.0)) == pytest.approx(-33.0)

    def test_3db_doubles_power(self):
        assert db_to_linear(3.0103) == pytest.approx(2.0, rel=1e-4)

    def test_thermal_noise_10mhz(self):
        # -174 + 10log10(9e6) + 7 ≈ -97.5 dBm
        assert thermal_noise_dbm(9e6) == pytest.approx(-97.46, abs=0.1)


class TestKpiSpec:
    def test_default_channels(self):
        spec = KpiSpec()
        assert spec.n_channels == 4
        assert spec.names() == ["rsrp", "rsrq", "sinr", "cqi"]

    def test_accepts_strings(self):
        spec = KpiSpec(["rsrp", "rsrq"])
        assert spec.kpis == (KPI.RSRP, KPI.RSRQ)

    def test_index_of(self):
        spec = KpiSpec(["rsrq", "rsrp"])
        assert spec.index_of("rsrp") == 1

    def test_clip_enforces_ranges(self):
        spec = KpiSpec(["rsrp", "cqi"])
        raw = np.array([[-200.0, 30.0], [0.0, -5.0]])
        clipped = spec.clip(raw)
        lo, hi = KPI_RANGES[KPI.RSRP]
        assert clipped[0, 0] == lo
        assert clipped[1, 0] == hi
        assert clipped[0, 1] == 15.0
        assert clipped[1, 1] == 1.0

    def test_clip_rounds_cqi(self):
        spec = KpiSpec(["cqi"])
        clipped = spec.clip(np.array([[7.4], [7.6]]))
        np.testing.assert_allclose(clipped.ravel(), [7.0, 8.0])

    def test_clip_does_not_mutate_input(self):
        spec = KpiSpec(["rsrp"])
        raw = np.array([[-200.0]])
        spec.clip(raw)
        assert raw[0, 0] == -200.0
