"""Optimizers and loss functions."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


def quadratic_problem():
    """Minimize ||w - target||^2; any sane optimizer converges."""
    target = np.array([1.0, -2.0, 3.0])
    w = nn.Parameter(np.zeros(3))

    def loss_fn():
        diff = w - Tensor(target)
        return (diff * diff).sum()

    return w, target, loss_fn


class TestSGD:
    def test_converges_on_quadratic(self):
        w, target, loss_fn = quadratic_problem()
        opt = nn.SGD([w], lr=0.1)
        for _ in range(100):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-4)

    def test_momentum_accelerates(self):
        w1, target, loss1 = quadratic_problem()
        w2, _, loss2 = quadratic_problem()
        plain = nn.SGD([w1], lr=0.01)
        momentum = nn.SGD([w2], lr=0.01, momentum=0.9)
        for _ in range(30):
            for opt, fn in ((plain, loss1), (momentum, loss2)):
                loss = fn()
                opt.zero_grad()
                loss.backward()
                opt.step()
        assert np.linalg.norm(w2.data - target) < np.linalg.norm(w1.data - target)

    def test_weight_decay_shrinks(self):
        w = nn.Parameter(np.array([10.0]))
        opt = nn.SGD([w], lr=0.1, weight_decay=0.5)
        loss = (w * 0.0).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
        assert abs(w.data[0]) < 10.0

    def test_skips_parameters_without_grad(self):
        w = nn.Parameter(np.ones(2))
        opt = nn.SGD([w], lr=0.1)
        opt.step()  # no grad accumulated; must not raise
        np.testing.assert_allclose(w.data, 1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        w, target, loss_fn = quadratic_problem()
        opt = nn.Adam([w], lr=0.1)
        for _ in range(200):
            loss = loss_fn()
            opt.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(w.data, target, atol=1e-3)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            nn.Adam([nn.Parameter(np.ones(1))], lr=0.0)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            nn.Adam([], lr=0.1)

    def test_grad_clipping(self):
        w = nn.Parameter(np.zeros(4))
        opt = nn.Adam([w], lr=0.1)
        w.grad = np.full(4, 100.0)
        norm = opt.clip_grad_norm(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(w.grad) == pytest.approx(1.0)

    def test_clip_noop_when_small(self):
        w = nn.Parameter(np.zeros(2))
        opt = nn.Adam([w], lr=0.1)
        w.grad = np.array([0.1, 0.1])
        opt.clip_grad_norm(10.0)
        np.testing.assert_allclose(w.grad, [0.1, 0.1])


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert nn.mse_loss(pred, target).item() == pytest.approx(2.5)

    def test_mae_value(self):
        pred = Tensor(np.array([1.0, -3.0]))
        target = Tensor(np.array([0.0, 0.0]))
        assert nn.mae_loss(pred, target).item() == pytest.approx(2.0)

    def test_bce_with_logits_matches_reference(self):
        logits = np.array([-2.0, 0.0, 3.0])
        for label in (0.0, 1.0):
            got = nn.bce_with_logits(Tensor(logits), label).item()
            p = 1 / (1 + np.exp(-logits))
            expected = -(label * np.log(p) + (1 - label) * np.log(1 - p)).mean()
            assert got == pytest.approx(expected, rel=1e-6)

    def test_bce_stable_at_extreme_logits(self):
        loss = nn.bce_with_logits(Tensor(np.array([1e3, -1e3])), 1.0)
        assert np.isfinite(loss.item())

    def test_discriminator_loss_at_optimum(self):
        # Perfect discrimination (logits +/- inf-ish) -> loss near 0.
        loss = nn.discriminator_loss(
            Tensor(np.array([20.0])), Tensor(np.array([-20.0]))
        )
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_generator_loss_decreases_with_fooling(self):
        weak = nn.generator_adversarial_loss(Tensor(np.array([-5.0]))).item()
        strong = nn.generator_adversarial_loss(Tensor(np.array([5.0]))).item()
        assert strong < weak

    def test_gaussian_nll_minimized_at_true_params(self):
        rng = np.random.default_rng(0)
        data = rng.normal(2.0, 0.5, size=1000)
        target = Tensor(data)

        def nll(mu, log_sigma):
            return nn.gaussian_nll(
                Tensor(np.full(1000, mu)), Tensor(np.full(1000, log_sigma)), target
            ).item()

        at_truth = nll(2.0, np.log(0.5))
        assert at_truth < nll(0.0, np.log(0.5))
        assert at_truth < nll(2.0, np.log(2.0))
        assert at_truth < nll(2.0, np.log(0.1))
