"""Road network construction and route sampling."""

import numpy as np
import pytest

from repro.geo import CitySpec, RoadNetwork


@pytest.fixture(scope="module")
def single_city_net():
    city = CitySpec("solo", 51.5, -0.1, half_extent_m=1000.0, street_spacing_m=250.0)
    return RoadNetwork([city])


@pytest.fixture(scope="module")
def two_city_net():
    cities = [
        CitySpec("a", 51.50, -0.10, half_extent_m=800.0, street_spacing_m=250.0),
        CitySpec("b", 51.46, -0.02, half_extent_m=800.0, street_spacing_m=250.0),
    ]
    return RoadNetwork(cities)


class TestConstruction:
    def test_empty_cities_rejected(self):
        with pytest.raises(ValueError):
            RoadNetwork([])

    def test_grid_is_connected(self, single_city_net):
        import networkx as nx

        assert nx.is_connected(single_city_net.graph)

    def test_street_edges_have_length(self, single_city_net):
        for _, _, data in single_city_net.graph.edges(data=True):
            assert data["kind"] in ("street", "highway")
            assert data["length_m"] > 0

    def test_highway_connects_cities(self, two_city_net):
        kinds = {d["kind"] for _, _, d in two_city_net.graph.edges(data=True)}
        assert "highway" in kinds

    def test_highway_is_routable(self, two_city_net):
        import networkx as nx

        assert nx.is_connected(two_city_net.graph)


class TestRouteSampling:
    def test_walk_reaches_requested_length(self, single_city_net):
        rng = np.random.default_rng(0)
        route = single_city_net.random_walk_route(rng, 2000.0, city="solo")
        assert len(route) >= 2000.0 / 250.0

    def test_walk_avoids_immediate_backtrack(self, single_city_net):
        rng = np.random.default_rng(1)
        route = single_city_net.random_walk_route(rng, 3000.0, city="solo")
        for a, b in zip(route[:-2], route[2:]):
            # Immediate backtracking (A -> B -> A) should be rare/never when
            # alternatives exist; grid interior nodes always have them.
            if single_city_net.graph.degree(b) > 1:
                continue
        # At minimum the route should not be a two-node oscillation.
        assert len(set(route)) > 2

    def test_walk_stays_on_streets(self, two_city_net):
        rng = np.random.default_rng(2)
        route = two_city_net.random_walk_route(rng, 1500.0, city="a", kinds=("street",))
        for u, v in zip(route[:-1], route[1:]):
            assert two_city_net.graph.edges[u, v]["kind"] == "street"

    def test_intercity_route_spans_both(self, two_city_net):
        rng = np.random.default_rng(3)
        route = two_city_net.intercity_route("a", "b", rng, city_detour_m=500.0)
        kinds = {
            two_city_net.graph.edges[u, v]["kind"]
            for u, v in zip(route[:-1], route[1:])
        }
        assert "highway" in kinds
        assert "street" in kinds

    def test_route_to_trajectory(self, single_city_net):
        rng = np.random.default_rng(4)
        route = single_city_net.random_walk_route(rng, 1500.0, city="solo")
        traj = single_city_net.route_to_trajectory(route, 10.0, 1.0, "drive", rng)
        assert len(traj) > 60
        assert traj.scenario == "drive"
        assert traj.average_speed_mps() == pytest.approx(10.0, rel=0.35)

    def test_deterministic_under_seed(self, single_city_net):
        r1 = single_city_net.random_walk_route(np.random.default_rng(9), 1000.0, city="solo")
        r2 = single_city_net.random_walk_route(np.random.default_rng(9), 1000.0, city="solo")
        assert r1 == r2
