"""HealthGuard: fault injection, rollback recovery, LR backoff, give-up."""

import numpy as np
import pytest

from repro.core import GenDT, small_config
from repro.runtime import DivergenceError, HealthGuard


CFG = dict(epochs=2, hidden_size=8, batch_len=20, train_step=10, minibatch_windows=16)


def _fresh_model(dataset):
    return GenDT(dataset.region, kpis=["rsrp"], config=small_config(**CFG), seed=5)


class TestGuardConfig:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HealthGuard(max_recoveries=-1)
        with pytest.raises(ValueError):
            HealthGuard(lr_backoff=0.0)
        with pytest.raises(ValueError):
            HealthGuard(divergence_factor=1.0)
        with pytest.raises(ValueError):
            HealthGuard(snapshot_every=0)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError):
            HealthGuard().inject_fault("meteor_strike", at_step=0)


class TestFaultRecovery:
    def test_nan_loss_recovered(self, tiny_dataset_a, tiny_split):
        guard = HealthGuard(max_recoveries=3)
        guard.inject_fault("nan_loss", at_step=2)
        model = _fresh_model(tiny_dataset_a)
        history = model.fit(tiny_split.train, guard=guard)
        # Training completed, the recovery is on the record, and the model
        # still generates finite output.
        assert guard.recoveries == 1
        assert [e.kind for e in guard.events] == ["nan_loss"]
        assert guard.events[0].action == "rollback"
        assert sum(history.recoveries) == 1
        assert all(np.isfinite(v) for v in history.total)
        out = model.generate(tiny_split.test[0].trajectory)
        assert np.all(np.isfinite(out))

    def test_corrupt_grad_recovered_without_poisoning_params(self, tiny_dataset_a, tiny_split):
        guard = HealthGuard(max_recoveries=3)
        guard.inject_fault("corrupt_grad", at_step=1)
        model = _fresh_model(tiny_dataset_a)
        model.fit(tiny_split.train, guard=guard)
        assert [e.kind for e in guard.events] == ["nonfinite_grad"]
        for param in model.generator.parameters():
            assert np.all(np.isfinite(param.data))

    def test_explode_loss_detected_as_divergence(self, tiny_dataset_a, tiny_split):
        guard = HealthGuard(max_recoveries=3, min_baseline=3)
        guard.inject_fault("explode_loss", at_step=4)
        model = _fresh_model(tiny_dataset_a)
        model.fit(tiny_split.train, guard=guard)
        assert [e.kind for e in guard.events] == ["divergence"]

    def test_lr_backoff_applied_on_rollback(self, tiny_dataset_a, tiny_split):
        guard = HealthGuard(max_recoveries=3, lr_backoff=0.5)
        guard.inject_fault("nan_loss", at_step=1)
        model = _fresh_model(tiny_dataset_a)
        lr_before = model.config.lr_generator
        model.fit(tiny_split.train, guard=guard)
        assert model.trainer.g_optimizer.lr == pytest.approx(lr_before * 0.5)
        assert guard.events[0].lr_after == pytest.approx(lr_before * 0.5)

    def test_multiple_faults_multiple_recoveries(self, tiny_dataset_a, tiny_split):
        guard = HealthGuard(max_recoveries=5)
        guard.inject_fault("nan_loss", at_step=1)
        guard.inject_fault("corrupt_grad", at_step=3)
        model = _fresh_model(tiny_dataset_a)
        history = model.fit(tiny_split.train, guard=guard)
        assert guard.recoveries == 2
        assert sum(history.recoveries) == 2

    def test_max_recoveries_exhausted_raises(self, tiny_dataset_a, tiny_split):
        guard = HealthGuard(max_recoveries=0)
        guard.inject_fault("nan_loss", at_step=1)
        model = _fresh_model(tiny_dataset_a)
        with pytest.raises(DivergenceError) as excinfo:
            model.fit(tiny_split.train, guard=guard)
        assert excinfo.value.step == 1
        assert guard.events[-1].action == "fatal"

    def test_params_left_at_last_good_snapshot_after_fatal(self, tiny_dataset_a, tiny_split):
        guard = HealthGuard(max_recoveries=0)
        guard.inject_fault("nan_loss", at_step=1)
        model = _fresh_model(tiny_dataset_a)
        with pytest.raises(DivergenceError):
            model.fit(tiny_split.train, guard=guard)
        # Rollback happened before the raise: parameters are finite/sane.
        for param in model.generator.parameters():
            assert np.all(np.isfinite(param.data))


class TestGuardNeutrality:
    def test_healthy_run_unaffected_by_guard(self, tiny_dataset_a, tiny_split):
        """With no faults, a guarded run is bit-identical to an unguarded one."""
        plain = _fresh_model(tiny_dataset_a)
        plain_history = plain.fit(tiny_split.train)

        guarded = _fresh_model(tiny_dataset_a)
        guarded_history = guarded.fit(tiny_split.train, guard=HealthGuard())

        np.testing.assert_array_equal(plain_history.mse, guarded_history.mse)
        a = plain.generator.state_dict()
        b = guarded.generator.state_dict()
        for key in a:
            np.testing.assert_array_equal(a[key], b[key])
