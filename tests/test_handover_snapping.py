"""Serving-cell channel post-processing (snap + dwell filtering)."""

import numpy as np
import pytest

from repro.usecases import handover_intervals_from_series
from repro.usecases.handover import snap_serving_series


class TestSnapToCandidates:
    def test_snaps_to_nearest_candidate(self):
        series = np.array([101.2, 99.7, 150.4, 148.9])
        out = snap_serving_series(series, candidate_ids=[100, 150], min_dwell_samples=1)
        np.testing.assert_array_equal(out, [100, 100, 150, 150])

    def test_without_candidates_rounds(self):
        out = snap_serving_series(np.array([1.4, 2.6]), min_dwell_samples=1)
        np.testing.assert_array_equal(out, [1, 3])

    def test_values_outside_candidate_range_clamped(self):
        out = snap_serving_series(
            np.array([-50.0, 500.0]), candidate_ids=[10, 20], min_dwell_samples=1
        )
        np.testing.assert_array_equal(out, [10, 20])

    def test_single_candidate(self):
        out = snap_serving_series(
            np.array([5.0, 99.0]), candidate_ids=[42], min_dwell_samples=1
        )
        np.testing.assert_array_equal(out, [42, 42])


class TestDwellFiltering:
    def test_short_dwell_merged_into_previous(self):
        series = np.array([1, 1, 1, 2, 1, 1, 1], dtype=float)
        out = snap_serving_series(series, min_dwell_samples=2)
        np.testing.assert_array_equal(out, [1, 1, 1, 1, 1, 1, 1])

    def test_long_dwell_kept(self):
        series = np.array([1, 1, 1, 2, 2, 2], dtype=float)
        out = snap_serving_series(series, min_dwell_samples=3)
        np.testing.assert_array_equal(out, series.astype(int))

    def test_leading_short_run_kept(self):
        # Nothing precedes the first run, so it cannot be merged.
        series = np.array([9, 1, 1, 1, 1], dtype=float)
        out = snap_serving_series(series, min_dwell_samples=3)
        assert out[0] == 9

    def test_flicker_storm_collapses(self):
        rng = np.random.default_rng(0)
        base = np.repeat([10, 20, 30], 20).astype(float)
        noisy = base + rng.normal(0, 0.3, len(base))
        out = snap_serving_series(noisy, candidate_ids=[10, 20, 30], min_dwell_samples=3)
        changes = int(np.count_nonzero(np.diff(out)))
        assert changes == 2  # only the two true handovers survive

    def test_min_dwell_one_is_identity(self):
        series = np.array([1, 2, 1, 2], dtype=float)
        out = snap_serving_series(series, min_dwell_samples=1)
        np.testing.assert_array_equal(out, series.astype(int))


class TestIntervalExtraction:
    def test_intervals_after_snapping(self):
        series = np.array([10.1, 9.9, 10.2, 20.3, 19.8, 20.1, 30.0, 29.9, 30.1])
        t = np.arange(9.0)
        intervals = handover_intervals_from_series(
            series, t, candidate_ids=[10, 20, 30], min_dwell_samples=2
        )
        np.testing.assert_allclose(intervals, [3.0])

    def test_no_handover_no_intervals(self):
        series = np.full(10, 7.0)
        intervals = handover_intervals_from_series(series, np.arange(10.0))
        assert len(intervals) == 0
