"""Environment world: attributes, land-use raster, PoIs, regions."""

import numpy as np
import pytest

from repro.geo import CitySpec, LocalFrame
from repro.world import (
    ENV_ATTRIBUTES,
    LAND_USE_CLASSES,
    N_ENV_ATTRIBUTES,
    N_LAND_USE,
    N_POI,
    POI_CLASSES,
    build_region,
    generate_land_use,
    generate_pois,
)


class TestAttributeSchema:
    def test_twenty_six_attributes(self):
        assert N_ENV_ATTRIBUTES == 26
        assert N_LAND_USE + N_POI == 26

    def test_no_duplicate_names(self):
        assert len(set(ENV_ATTRIBUTES)) == len(ENV_ATTRIBUTES)

    def test_paper_classes_present(self):
        assert "green_urban" in LAND_USE_CLASSES
        assert "continuous_urban" in LAND_USE_CLASSES
        assert "tram_stops" in POI_CLASSES
        assert "motorways" in POI_CLASSES


@pytest.fixture(scope="module")
def land_use():
    rng = np.random.default_rng(0)
    frame = LocalFrame(51.5, -0.1)
    city = CitySpec("c", 51.5, -0.1, half_extent_m=1000.0)
    return generate_land_use(frame, [city], extent_m=2000.0, rng=rng, pixel_m=100.0)


class TestLandUse:
    def test_fractions_sum_to_one(self, land_use):
        sums = land_use.fractions.sum(axis=-1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_fractions_nonnegative(self, land_use):
        assert np.all(land_use.fractions >= 0)

    def test_city_center_is_urban(self, land_use):
        center = land_use.fractions_at(51.5, -0.1)
        idx = {c: i for i, c in enumerate(LAND_USE_CLASSES)}
        urban = center[idx["continuous_urban"]] + center[idx["high_dense_urban"]]
        rural = center[idx["barren_lands"]]
        assert urban > rural

    def test_clutter_decays_from_center(self, land_use):
        center = float(land_use.clutter_at(51.5, -0.1))
        frame = land_use.frame
        edge_lat, edge_lon = frame.to_latlon(1900.0, 1900.0)
        edge = float(land_use.clutter_at(float(edge_lat), float(edge_lon)))
        assert center > edge

    def test_clutter_in_unit_range(self, land_use):
        lats = 51.5 + np.linspace(-0.015, 0.015, 20)
        lons = -0.1 + np.linspace(-0.02, 0.02, 20)
        clutter = land_use.clutter_at(lats, lons)
        assert np.all(clutter >= 0.0) and np.all(clutter <= 1.0)

    def test_fractions_within_averages(self, land_use):
        frac = land_use.fractions_within(51.5, -0.1, 500.0)
        assert frac.shape == (N_LAND_USE,)
        assert frac.sum() == pytest.approx(1.0, abs=1e-9)

    def test_query_outside_raster_clamps(self, land_use):
        out = land_use.fractions_at(52.5, 1.0)  # far outside
        assert out.shape == (N_LAND_USE,)
        assert np.isfinite(out).all()


class TestPois:
    @pytest.fixture(scope="class")
    def pois(self, land_use):
        rng = np.random.default_rng(1)
        return generate_pois(land_use, extent_m=2000.0, rng=rng)

    def test_counts_vector_shape(self, pois):
        counts = pois.counts_within(51.5, -0.1, 500.0)
        assert counts.shape == (N_POI,)
        assert np.all(counts >= 0)

    def test_counts_monotone_in_radius(self, pois):
        small = pois.counts_within(51.5, -0.1, 200.0)
        large = pois.counts_within(51.5, -0.1, 800.0)
        assert np.all(large >= small)

    def test_urban_core_has_more_pois(self, pois, land_use):
        center = pois.counts_within(51.5, -0.1, 500.0).sum()
        edge_lat, edge_lon = land_use.frame.to_latlon(1800.0, 1800.0)
        edge = pois.counts_within(float(edge_lat), float(edge_lon), 500.0).sum()
        assert center >= edge

    def test_total_points_consistent(self, pois):
        assert pois.total_points() == sum(
            pois.total_points(cls) for cls in POI_CLASSES
        )


class TestRegion:
    def test_region_builds(self, small_region):
        assert len(small_region.deployment) > 10
        assert small_region.land_use is not None
        assert small_region.pois is not None

    def test_two_city_region_has_highways(self, two_city_region):
        assert len(two_city_region.highway_polylines) >= 1

    def test_clutter_along(self, small_region, sample_trajectory):
        clutter = small_region.clutter_along(sample_trajectory.lat, sample_trajectory.lon)
        assert clutter.shape == (len(sample_trajectory),)
        assert np.all((clutter >= 0) & (clutter <= 1))

    def test_deterministic_given_seed(self):
        cities = [CitySpec("d", 51.5, -0.1, half_extent_m=800.0)]
        r1 = build_region(cities, np.random.default_rng(7))
        r2 = build_region(cities, np.random.default_rng(7))
        assert len(r1.deployment) == len(r2.deployment)
        np.testing.assert_allclose(
            r1.deployment.positions_xy(), r2.deployment.positions_xy()
        )
