"""Serving-cell selection, handover timing, dwell statistics."""

import numpy as np
import pytest

from repro.radio import (
    HandoverConfig,
    cell_dwell_times,
    handover_times,
    inter_handover_times,
    select_serving_cells,
)


def two_cell_crossover(n=20, margin=10.0):
    """Cell 0 strong first half, cell 1 strong second half."""
    rsrp = np.zeros((n, 2))
    rsrp[:, 0] = np.linspace(-70, -70 - margin, n)
    rsrp[:, 1] = np.linspace(-70 - margin, -70, n)
    return rsrp


class TestSelection:
    def test_starts_on_strongest(self):
        rsrp = np.array([[-80.0, -60.0], [-80.0, -60.0], [-80.0, -60.0]])
        serving = select_serving_cells(rsrp, HandoverConfig(3.0, 1))
        assert serving[0] == 1

    def test_handover_happens_after_crossover(self):
        rsrp = two_cell_crossover()
        serving = select_serving_cells(rsrp, HandoverConfig(3.0, 2))
        assert serving[0] == 0
        assert serving[-1] == 1

    def test_hysteresis_delays_handover(self):
        rsrp = two_cell_crossover()
        early = select_serving_cells(rsrp, HandoverConfig(1.0, 1))
        late = select_serving_cells(rsrp, HandoverConfig(8.0, 1))
        t_early = int(np.argmax(early == 1))
        t_late = int(np.argmax(late == 1))
        assert t_late > t_early

    def test_time_to_trigger_filters_flicker(self):
        # One-sample spike above hysteresis must not trigger with TTT=3.
        rsrp = np.full((10, 2), -80.0)
        rsrp[:, 0] = -70.0
        rsrp[5, 1] = -50.0  # single-sample spike
        serving = select_serving_cells(rsrp, HandoverConfig(3.0, 3))
        assert np.all(serving == 0)

    def test_sustained_advantage_triggers(self):
        rsrp = np.full((10, 2), -80.0)
        rsrp[:, 0] = -70.0
        rsrp[4:, 1] = -50.0
        serving = select_serving_cells(rsrp, HandoverConfig(3.0, 3))
        assert serving[-1] == 1

    def test_radio_link_failure_reselects(self):
        rsrp = np.full((6, 2), -80.0)
        rsrp[:, 0] = -70.0
        rsrp[3:, 0] = -np.inf  # serving cell vanishes
        serving = select_serving_cells(rsrp, HandoverConfig(3.0, 3))
        assert serving[2] == 0
        assert serving[3] == 1

    def test_initial_cell_override(self):
        rsrp = np.full((5, 2), -80.0)
        rsrp[:, 1] = -60.0
        serving = select_serving_cells(rsrp, HandoverConfig(30.0, 2), initial_cell=0)
        assert serving[0] == 0

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            select_serving_cells(np.zeros(5))
        with pytest.raises(ValueError):
            select_serving_cells(np.zeros((5, 0)))


class TestHandoverTiming:
    def test_handover_times(self):
        ids = np.array([0, 0, 1, 1, 2, 2])
        t = np.arange(6.0)
        np.testing.assert_allclose(handover_times(ids, t), [2.0, 4.0])

    def test_inter_handover_times(self):
        ids = np.array([0, 0, 1, 1, 1, 2])
        t = np.arange(6.0)
        np.testing.assert_allclose(inter_handover_times(ids, t), [3.0])

    def test_no_handover_empty(self):
        assert len(inter_handover_times(np.zeros(5, int), np.arange(5.0))) == 0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            handover_times(np.zeros(3, int), np.arange(4.0))

    def test_dwell_times_sum_to_duration(self):
        ids = np.array([0, 0, 1, 2, 2, 2])
        t = np.arange(6.0)
        dwell = cell_dwell_times(ids, t)
        assert len(dwell) == 3
        assert dwell.sum() == pytest.approx(6.0)

    def test_dwell_single_cell(self):
        dwell = cell_dwell_times(np.zeros(10, int), np.arange(10.0))
        assert len(dwell) == 1
        assert dwell[0] == pytest.approx(10.0)

    def test_dwell_empty(self):
        assert len(cell_dwell_times(np.zeros(0, int), np.zeros(0))) == 0
