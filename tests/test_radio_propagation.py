"""Propagation models: pathloss, shadowing correlation, antenna, fading."""

import numpy as np
import pytest

from repro.radio import (
    FastFadingModel,
    OmniAntenna,
    PathlossModel,
    SectorAntenna,
    ShadowingModel,
    wrap_angle_deg,
)


class TestPathloss:
    def test_monotone_in_distance(self):
        model = PathlossModel()
        d = np.array([50.0, 100.0, 500.0, 2000.0])
        pl = model.pathloss_db(d, np.zeros(4))
        assert np.all(np.diff(pl) > 0)

    def test_clutter_increases_loss(self):
        model = PathlossModel()
        open_field = model.pathloss_db(np.array([500.0]), np.array([0.0]))
        urban = model.pathloss_db(np.array([500.0]), np.array([1.0]))
        assert urban > open_field

    def test_minimum_distance_floor(self):
        model = PathlossModel()
        near = model.pathloss_db(np.array([1.0]), np.array([0.0]))
        at_floor = model.pathloss_db(np.array([model.d_min_m]), np.array([0.0]))
        assert near == pytest.approx(at_floor)

    def test_slope_matches_exponent(self):
        model = PathlossModel(base_exponent=3.0, clutter_exponent_scale=0.0)
        pl1 = model.pathloss_db(np.array([100.0]), np.array([0.0]))
        pl2 = model.pathloss_db(np.array([1000.0]), np.array([0.0]))
        assert (pl2 - pl1) == pytest.approx(30.0)  # 10*n per decade

    def test_broadcasting_matrix(self):
        model = PathlossModel()
        d = np.ones((5, 3)) * 200.0
        clutter = np.linspace(0, 1, 5)[:, None]
        pl = model.pathloss_db(d, clutter)
        assert pl.shape == (5, 3)
        assert np.all(np.diff(pl[:, 0]) > 0)  # more clutter, more loss


class TestShadowing:
    def test_trace_length(self, rng):
        model = ShadowingModel()
        steps = np.full(99, 10.0)
        trace = model.sample_along(steps, rng)
        assert trace.shape == (100,)

    def test_autocorrelation_decays_with_distance(self):
        model = ShadowingModel(sigma_db=6.0, decorrelation_m=50.0, clutter_sigma_scale=0.0)
        rng = np.random.default_rng(0)
        # Small steps -> high lag-1 correlation; huge steps -> none.
        small = np.stack([
            model.sample_along(np.full(400, 5.0), rng) for _ in range(20)
        ])
        large = np.stack([
            model.sample_along(np.full(400, 500.0), rng) for _ in range(20)
        ])

        def lag1(traces):
            a = traces[:, :-1].ravel()
            b = traces[:, 1:].ravel()
            return np.corrcoef(a, b)[0, 1]

        assert lag1(small) > 0.8
        assert abs(lag1(large)) < 0.15

    def test_stationary_variance(self):
        model = ShadowingModel(sigma_db=6.0, clutter_sigma_scale=0.0)
        rng = np.random.default_rng(1)
        traces = np.stack([
            model.sample_along(np.full(200, 50.0), rng) for _ in range(100)
        ])
        assert traces.std() == pytest.approx(6.0, rel=0.15)

    def test_multi_matches_single_statistics(self):
        model = ShadowingModel(clutter_sigma_scale=0.0)
        rng = np.random.default_rng(2)
        multi = model.sample_along_multi(np.full(300, 20.0), 50, rng)
        assert multi.shape == (301, 50)
        assert multi.std() == pytest.approx(model.sigma_db, rel=0.15)

    def test_multi_cells_independent(self):
        model = ShadowingModel(clutter_sigma_scale=0.0)
        rng = np.random.default_rng(3)
        multi = model.sample_along_multi(np.full(800, 10.0), 2, rng)
        corr = np.corrcoef(multi[:, 0], multi[:, 1])[0, 1]
        assert abs(corr) < 0.35  # long-run cross-cell correlation ~ 0

    def test_clutter_raises_sigma(self):
        model = ShadowingModel(sigma_db=4.0, clutter_sigma_scale=4.0)
        rng = np.random.default_rng(4)
        steps = np.full(500, 200.0)
        calm = np.stack([model.sample_along(steps, rng, clutter=np.zeros(501)) for _ in range(30)])
        rough = np.stack([model.sample_along(steps, rng, clutter=np.ones(501)) for _ in range(30)])
        assert rough.std() > calm.std()


class TestFastFading:
    def test_sample_shape(self, rng):
        fading = FastFadingModel()
        assert fading.sample(100, rng).shape == (100,)

    def test_speed_raises_sigma(self):
        fading = FastFadingModel(sigma_db=1.0, speed_scale=0.1)
        rng = np.random.default_rng(5)
        slow = np.concatenate([fading.sample(2000, rng, np.zeros(2000)) for _ in range(3)])
        fast = np.concatenate([fading.sample(2000, rng, np.full(2000, 30.0)) for _ in range(3)])
        assert fast.std() > slow.std() * 1.5

    def test_per_step_speed_padding(self, rng):
        fading = FastFadingModel()
        out = fading.sample(10, rng, speed_mps=np.ones(9))  # T-1 speeds OK
        assert out.shape == (10,)


class TestAntennas:
    def test_boresight_is_max_gain(self):
        ant = SectorAntenna(max_gain_dbi=15.0)
        assert ant.gain_dbi(0.0) == pytest.approx(15.0)

    def test_gain_decreases_off_axis(self):
        ant = SectorAntenna()
        gains = [float(ant.gain_dbi(a)) for a in (0, 30, 60, 120)]
        assert all(g1 > g2 for g1, g2 in zip(gains[:-1], gains[1:]))

    def test_3db_beamwidth(self):
        ant = SectorAntenna(beamwidth_deg=65.0)
        # At half the beamwidth off axis, attenuation is 12*(0.5)^2 = 3 dB.
        assert ant.gain_dbi(32.5) == pytest.approx(ant.max_gain_dbi - 3.0)

    def test_front_to_back_floor(self):
        ant = SectorAntenna(max_gain_dbi=15.0, front_to_back_db=25.0)
        assert ant.gain_dbi(180.0) == pytest.approx(-10.0)

    def test_symmetry(self):
        ant = SectorAntenna()
        assert ant.gain_dbi(40.0) == pytest.approx(float(ant.gain_dbi(-40.0)))

    def test_omni_constant(self):
        ant = OmniAntenna(max_gain_dbi=5.0)
        gains = ant.gain_dbi(np.array([0.0, 90.0, 180.0]))
        np.testing.assert_allclose(gains, 5.0)

    def test_wrap_angle(self):
        assert wrap_angle_deg(190.0) == pytest.approx(-170.0)
        assert wrap_angle_deg(-190.0) == pytest.approx(170.0)
        assert wrap_angle_deg(0.0) == pytest.approx(0.0)
