"""Baseline generation methods."""

import numpy as np
import pytest

from repro.baselines import (
    DoppelGANger,
    FDaS,
    LSTMGNNBaseline,
    MLPBaseline,
    fit_best_distribution,
)


class TestFDaS:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_split):
        model = FDaS(kpis=["rsrp", "rsrq"], seed=0)
        model.fit(tiny_split.train)
        return model

    def test_distribution_fit_recovers_normal(self, rng):
        data = rng.normal(-90.0, 8.0, size=5000)
        fit = fit_best_distribution(data)
        sample = fit.sample(5000, rng)
        assert sample.mean() == pytest.approx(-90.0, abs=1.0)
        assert sample.std() == pytest.approx(8.0, rel=0.1)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_best_distribution(np.zeros(5))

    def test_generate_shape(self, fitted, tiny_split):
        traj = tiny_split.test[0].trajectory
        out = fitted.generate(traj)
        assert out.shape == (len(traj), 2)

    def test_matches_training_distribution(self, fitted, tiny_split):
        from repro.metrics import hwd

        train_rsrp = np.concatenate([r.kpi["rsrp"] for r in tiny_split.train])
        gen = fitted.generate(tiny_split.train[0].trajectory)
        assert hwd(train_rsrp, gen[:, 0]) < 5.0

    def test_ignores_context(self, fitted, tiny_split):
        # Two different trajectories yield statistically identical outputs.
        a = fitted.generate(tiny_split.test[0].trajectory)
        b = fitted.generate(tiny_split.test[0].trajectory)
        assert abs(a[:, 0].mean() - b[:, 0].mean()) < 5.0

    def test_requires_fit(self, tiny_split):
        with pytest.raises(RuntimeError):
            FDaS().generate(tiny_split.test[0].trajectory)


class TestMLPBaseline:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset_a, tiny_split):
        model = MLPBaseline(
            tiny_dataset_a.region, kpis=["rsrp", "rsrq"], epochs=8, seed=0
        )
        model.fit(tiny_split.train)
        return model

    def test_generate_shape_and_range(self, fitted, tiny_split):
        traj = tiny_split.test[0].trajectory
        out = fitted.generate(traj)
        assert out.shape == (len(traj), 2)
        assert np.all((out[:, 0] >= -140) & (out[:, 0] <= -44))

    def test_deterministic_generation(self, fitted, tiny_split):
        traj = tiny_split.test[0].trajectory
        np.testing.assert_allclose(fitted.generate(traj), fitted.generate(traj))

    def test_competitive_on_training_route(self, fitted, tiny_split):
        # In-sample sanity: on a trajectory it was trained on, the MLP must
        # clearly beat predicting the global training mean everywhere.
        from repro.metrics import mae

        rec = tiny_split.train[0]
        out = fitted.generate(rec.trajectory)
        train_mean = fitted.target_normalizer.mean[0]
        err_model = mae(rec.kpi["rsrp"], out[:, 0])
        err_const = mae(rec.kpi["rsrp"], np.full(len(rec), train_mean))
        assert err_model < err_const

    def test_requires_fit(self, tiny_dataset_a, tiny_split):
        model = MLPBaseline(tiny_dataset_a.region)
        with pytest.raises(RuntimeError):
            model.generate(tiny_split.test[0].trajectory)


class TestLSTMGNN:
    @pytest.fixture(scope="class")
    def fitted(self, tiny_dataset_a, tiny_split):
        model = LSTMGNNBaseline(
            tiny_dataset_a.region, kpis=["rsrp", "rsrq"],
            hidden=12, epochs=2, max_train_len=80, seed=0,
        )
        model.fit(tiny_split.train[:3])
        return model

    def test_generate_shape(self, fitted, tiny_split):
        traj = tiny_split.test[0].trajectory
        out = fitted.generate(traj)
        assert out.shape == (len(traj), 2)
        assert np.all(np.isfinite(out))

    def test_deterministic(self, fitted, tiny_split):
        traj = tiny_split.test[0].trajectory
        np.testing.assert_allclose(fitted.generate(traj), fitted.generate(traj))


class TestDoppelGANger:
    @pytest.fixture(scope="class")
    def fitted_pair(self, tiny_dataset_a, tiny_split):
        orig = DoppelGANger(
            tiny_dataset_a.region, kpis=["rsrp", "rsrq"],
            real_context=False, window_len=20, hidden=10, epochs=2, seed=0,
        )
        orig.fit(tiny_split.train[:3])
        real = DoppelGANger(
            tiny_dataset_a.region, kpis=["rsrp", "rsrq"],
            real_context=True, window_len=20, hidden=10, epochs=2, seed=0,
        )
        real.fit(tiny_split.train[:3])
        return orig, real

    def test_names(self, fitted_pair):
        orig, real = fitted_pair
        assert orig.name == "orig_dg"
        assert real.name == "real_context_dg"

    def test_generate_shapes(self, fitted_pair, tiny_split):
        traj = tiny_split.test[0].trajectory
        for model in fitted_pair:
            out = model.generate(traj)
            assert out.shape == (len(traj), 2)
            assert np.all(np.isfinite(out))

    def test_orig_dg_stochastic_context(self, fitted_pair, tiny_split):
        orig, _ = fitted_pair
        traj = tiny_split.test[0].trajectory
        a = orig.generate(traj)
        b = orig.generate(traj)
        assert not np.allclose(a, b)

    def test_metadata_model_round_trip(self, rng):
        from repro.baselines import GaussianMetadataModel

        data = rng.normal(size=(500, 6)) @ np.diag([1, 2, 3, 1, 1, 0.5])
        model = GaussianMetadataModel()
        model.fit(data)
        sample = model.sample(2000, rng)
        np.testing.assert_allclose(sample.mean(axis=0), data.mean(axis=0), atol=0.3)
        np.testing.assert_allclose(sample.std(axis=0), data.std(axis=0), rtol=0.2)

    def test_metadata_requires_fit(self, rng):
        from repro.baselines import GaussianMetadataModel

        with pytest.raises(RuntimeError):
            GaussianMetadataModel().sample(1, rng)
