"""CLI on Dataset B + report entry points."""

import numpy as np
import pytest

from repro.cli import main


class TestCliDatasetB:
    def test_simulate_dataset_b(self, capsys):
        rc = main(["simulate", "--dataset", "b", "--samples", "150", "--seed", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "city_driving_1" in out
        assert "highway_2" in out

    def test_train_on_dataset_b(self, tmp_path):
        ckpt = str(tmp_path / "b.npz")
        rc = main([
            "train", "--dataset", "b", "--samples", "150", "--seed", "4",
            "--epochs", "1", "--hidden", "8", "--out", ckpt,
        ])
        assert rc == 0
        assert (tmp_path / "b.npz").exists()


class TestCliSeeding:
    def test_same_seed_same_stats(self, capsys):
        main(["simulate", "--samples", "120", "--seed", "11"])
        out1 = capsys.readouterr().out
        main(["simulate", "--samples", "120", "--seed", "11"])
        out2 = capsys.readouterr().out
        assert out1 == out2

    def test_different_seed_different_stats(self, capsys):
        main(["simulate", "--samples", "120", "--seed", "11"])
        out1 = capsys.readouterr().out
        main(["simulate", "--samples", "120", "--seed", "12"])
        out2 = capsys.readouterr().out
        assert out1 != out2


class TestModuleEntryPoints:
    def test_repro_main_module_importable(self):
        import importlib

        cli = importlib.import_module("repro.cli")
        assert hasattr(cli, "main")

    def test_eval_report_exports(self):
        from repro.eval import REPORT_SECTIONS, build_report

        assert len(REPORT_SECTIONS) >= 15
        assert callable(build_report)
