"""Dataset generation, statistics, and geographic splitting."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_A_SCENARIOS,
    DATASET_B_SCENARIOS,
    dataset_stats,
    make_active_learning_subsets,
    make_long_trajectory,
    scenario_stats,
    split_by_geography,
    split_per_scenario,
)


class TestDatasetA:
    def test_scenarios_present(self, tiny_dataset_a):
        assert tiny_dataset_a.scenarios() == ["walk", "bus", "tram"]

    def test_sample_counts_close_to_request(self, tiny_dataset_a):
        for scenario in tiny_dataset_a.scenarios():
            total = sum(len(r) for r in tiny_dataset_a.by_scenario(scenario))
            assert total == pytest.approx(360, rel=0.15)

    def test_one_second_granularity(self, tiny_dataset_a):
        for record in tiny_dataset_a.records:
            assert record.trajectory.sample_interval_s == pytest.approx(1.0)

    def test_speed_ordering(self, tiny_dataset_a):
        stats = {
            s.scenario: s
            for s in dataset_stats(
                {sc: tiny_dataset_a.by_scenario(sc) for sc in tiny_dataset_a.scenarios()}
            )
        }
        assert (
            stats["walk"].avg_velocity_mps
            < stats["bus"].avg_velocity_mps
            < stats["tram"].avg_velocity_mps
        )

    def test_walk_speed_near_paper(self, tiny_dataset_a):
        s = scenario_stats("walk", tiny_dataset_a.by_scenario("walk"))
        assert s.avg_velocity_mps == pytest.approx(1.4, rel=0.25)

    def test_rsrp_band_plausible(self, tiny_dataset_a):
        for scenario in tiny_dataset_a.scenarios():
            s = scenario_stats(scenario, tiny_dataset_a.by_scenario(scenario))
            assert -100 < s.avg_rsrp_dbm < -70
            assert 3 < s.std_rsrp_dbm < 20

    def test_qoe_attached(self, tiny_dataset_a):
        assert all(r.qoe for r in tiny_dataset_a.records)

    def test_deterministic(self):
        from repro.datasets import make_dataset_a

        a = make_dataset_a(seed=3, samples_per_scenario=120, trajectories_per_scenario=2)
        b = make_dataset_a(seed=3, samples_per_scenario=120, trajectories_per_scenario=2)
        np.testing.assert_allclose(a.records[0].kpi["rsrp"], b.records[0].kpi["rsrp"])


class TestDatasetB:
    def test_scenarios_present(self, tiny_dataset_b):
        assert tiny_dataset_b.scenarios() == [
            "city_driving_1", "city_driving_2", "highway_1", "highway_2",
        ]

    def test_highway_faster_than_city(self, tiny_dataset_b):
        city = scenario_stats("city_driving_1", tiny_dataset_b.by_scenario("city_driving_1"))
        highway = scenario_stats("highway_1", tiny_dataset_b.by_scenario("highway_1"))
        assert highway.avg_velocity_mps > 2 * city.avg_velocity_mps

    def test_coarser_granularity_than_a(self, tiny_dataset_b):
        for record in tiny_dataset_b.records:
            assert record.trajectory.sample_interval_s > 1.5

    def test_roc_computed(self, tiny_dataset_b):
        s = scenario_stats("highway_1", tiny_dataset_b.by_scenario("highway_1"))
        assert s.roc_rsrp > 0
        assert s.roc_rsrq > 0


class TestLongTrajectory:
    def test_long_trajectory_properties(self, tiny_dataset_b):
        traj = make_long_trajectory(tiny_dataset_b.region, target_duration_s=800.0)
        assert traj.duration_s <= 800.0
        assert traj.duration_s > 300.0
        assert traj.length_m() > 5000.0
        assert traj.scenario.startswith("long_complex")

    def test_subsets_distinct(self, tiny_dataset_b):
        subsets = make_active_learning_subsets(
            tiny_dataset_b.region, n_subsets=5, samples_per_subset=60
        )
        assert len(subsets) == 5
        scenarios = {r.scenario for r in subsets}
        assert len(scenarios) == 5


class TestSplitting:
    def test_split_fraction(self, tiny_dataset_a, rng):
        split = split_by_geography(tiny_dataset_a.records, 0.3, 100.0, rng)
        assert 1 <= len(split.test) <= len(tiny_dataset_a.records) // 2

    def test_geographic_separation_enforced(self, tiny_dataset_a, rng):
        min_d = 150.0
        split = split_by_geography(tiny_dataset_a.records, 0.3, min_d, rng)
        for test_rec in split.test:
            for train_rec in split.train:
                assert (
                    test_rec.trajectory.min_distance_to(train_rec.trajectory) >= min_d
                )

    def test_no_overlap(self, tiny_dataset_a, rng):
        split = split_by_geography(tiny_dataset_a.records, 0.25, 100.0, rng)
        assert len(split.train) + len(split.test) == len(tiny_dataset_a.records)
        assert not set(map(id, split.train)) & set(map(id, split.test))

    def test_per_scenario_keeps_all_scenarios(self, tiny_dataset_a, rng):
        split = split_per_scenario(tiny_dataset_a, 0.3, 100.0, rng)
        train_scenarios = {r.scenario for r in split.train}
        assert train_scenarios == set(tiny_dataset_a.scenarios())

    def test_invalid_fraction(self, tiny_dataset_a, rng):
        with pytest.raises(ValueError):
            split_by_geography(tiny_dataset_a.records, 1.5, 100.0, rng)

    def test_summary_string(self, tiny_split):
        text = tiny_split.summary()
        assert "train" in text and "test" in text


class TestStats:
    def test_stats_as_dict_keys(self, tiny_dataset_a):
        s = scenario_stats("walk", tiny_dataset_a.by_scenario("walk"))
        d = s.as_dict()
        for key in ("granularity_s", "velocity_mps", "cell_dwell_s", "rsrp_mean", "samples"):
            assert key in d

    def test_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            scenario_stats("x", [])

    def test_paper_scenario_constants(self):
        assert [s.name for s in DATASET_A_SCENARIOS] == ["walk", "bus", "tram"]
        assert [s.speed_mps for s in DATASET_A_SCENARIOS] == [1.4, 5.6, 11.5]
        assert [s.name for s in DATASET_B_SCENARIOS] == [
            "city_driving_1", "city_driving_2", "highway_1", "highway_2",
        ]
