"""LSTM cell/sequence module tests."""

import numpy as np
import pytest

from repro import nn


@pytest.fixture
def lstm_rng():
    return np.random.default_rng(3)


class TestLSTMCell:
    def test_step_shapes(self, lstm_rng):
        cell = nn.LSTMCell(4, 8, lstm_rng)
        h, c = cell.zero_state(3)
        h2, c2 = cell(nn.Tensor(np.ones((3, 4))), (h, c))
        assert h2.shape == (3, 8)
        assert c2.shape == (3, 8)

    def test_forget_bias_initialized_to_one(self, lstm_rng):
        cell = nn.LSTMCell(4, 8, lstm_rng)
        np.testing.assert_allclose(cell.bias.data[8:16], 1.0)

    def test_hidden_bounded_by_tanh(self, lstm_rng):
        cell = nn.LSTMCell(2, 4, lstm_rng)
        h, c = cell.zero_state(1)
        for _ in range(20):
            h, c = cell(nn.Tensor(np.full((1, 2), 10.0)), (h, c))
        assert np.all(np.abs(h.numpy()) <= 1.0)

    def test_zero_state_is_independent(self, lstm_rng):
        cell = nn.LSTMCell(2, 4, lstm_rng)
        h1, c1 = cell.zero_state(1)
        h1.data[:] = 5.0
        h2, _ = cell.zero_state(1)
        assert np.all(h2.numpy() == 0.0)


class TestLSTMSequence:
    def test_output_shape(self, lstm_rng):
        lstm = nn.LSTM(3, 6, lstm_rng)
        out, state = lstm(nn.Tensor(np.ones((2, 5, 3))))
        assert out.shape == (2, 5, 6)
        assert len(state) == 1
        assert state[0][0].shape == (2, 6)

    def test_stacked_layers(self, lstm_rng):
        lstm = nn.LSTM(3, 6, lstm_rng, num_layers=2)
        out, state = lstm(nn.Tensor(np.ones((2, 4, 3))))
        assert out.shape == (2, 4, 6)
        assert len(state) == 2

    def test_state_carries_information(self, lstm_rng):
        lstm = nn.LSTM(1, 4, lstm_rng)
        x1 = nn.Tensor(np.ones((1, 3, 1)))
        x2 = nn.Tensor(np.zeros((1, 3, 1)))
        _, state = lstm(x1)
        out_with_state, _ = lstm(x2, state)
        out_fresh, _ = lstm(x2)
        assert not np.allclose(out_with_state.numpy(), out_fresh.numpy())

    def test_gradients_reach_all_parameters(self, lstm_rng):
        lstm = nn.LSTM(2, 4, lstm_rng)
        out, _ = lstm(nn.Tensor(np.ones((1, 6, 2))))
        out.sum().backward()
        for name, param in lstm.named_parameters():
            assert param.grad is not None, name
            assert np.any(param.grad != 0), name


class TestLSTMLearning:
    def test_learns_running_mean(self, lstm_rng):
        model = nn.LSTMRegressor(1, 16, 1, lstm_rng)
        opt = nn.Adam(model.parameters(), lr=1e-2)
        x = lstm_rng.normal(size=(8, 15, 1))
        y = np.cumsum(x, axis=1) / np.arange(1, 16)[None, :, None]
        for _ in range(120):
            loss = nn.mse_loss(model(nn.Tensor(x)), nn.Tensor(y))
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.05

    def test_learns_lagged_copy(self, lstm_rng):
        # y_t = x_{t-1}: pure memory task.
        model = nn.LSTMRegressor(1, 16, 1, lstm_rng)
        opt = nn.Adam(model.parameters(), lr=1e-2)
        x = lstm_rng.normal(size=(16, 10, 1))
        y = np.concatenate([np.zeros((16, 1, 1)), x[:, :-1]], axis=1)
        for _ in range(150):
            loss = nn.mse_loss(model(nn.Tensor(x)), nn.Tensor(y))
            opt.zero_grad()
            loss.backward()
            opt.step()
        assert loss.item() < 0.1
