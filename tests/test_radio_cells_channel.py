"""Cell deployments and link-budget KPI derivation."""

import numpy as np
import pytest

from repro.geo import CitySpec, LocalFrame
from repro.radio import (
    Cell,
    CellDeployment,
    LinkBudget,
    LinkBudgetConfig,
    deploy_city,
    deploy_highway,
    select_serving_cells,
)


@pytest.fixture(scope="module")
def frame():
    return LocalFrame(51.5, -0.1)


@pytest.fixture(scope="module")
def city_cells(frame):
    rng = np.random.default_rng(0)
    city = CitySpec("c", 51.5, -0.1, half_extent_m=1000.0)
    return deploy_city(city, frame, rng, site_density_per_km2=6.0)


class TestDeployments:
    def test_city_density_close_to_request(self, city_cells):
        area_km2 = 4.0  # 2 km x 2 km
        sites = len({c.site_id for c in city_cells})
        assert sites == pytest.approx(6.0 * area_km2, rel=0.3)

    def test_three_sectors_per_site(self, city_cells):
        from collections import Counter

        counts = Counter(c.site_id for c in city_cells)
        assert set(counts.values()) == {3}

    def test_sector_directions_spread(self, city_cells):
        by_site = {}
        for cell in city_cells:
            by_site.setdefault(cell.site_id, []).append(cell.direction_deg)
        for directions in by_site.values():
            diffs = np.diff(sorted(directions))
            np.testing.assert_allclose(diffs, 120.0, atol=1.0)

    def test_unique_cell_ids(self, city_cells):
        ids = [c.cell_id for c in city_cells]
        assert len(set(ids)) == len(ids)

    def test_highway_deployment_follows_road(self, frame):
        rng = np.random.default_rng(1)
        waypoints = [(51.5, -0.1), (51.5, -0.02)]  # ~5.5 km east-west
        cells = deploy_highway(waypoints, frame, rng, site_spacing_m=1500.0)
        assert len(cells) >= 4
        lats = np.array([c.lat for c in cells])
        assert np.all(np.abs(lats - 51.5) < 0.01)

    def test_cell_context_features(self, city_cells):
        features = city_cells[0].context_features(distance_m=432.1)
        assert features.shape == (5,)
        assert features[4] == 432.1


class TestCellDeployment:
    @pytest.fixture(scope="class")
    def deployment(self, city_cells, frame):
        return CellDeployment(city_cells, frame)

    def test_rejects_empty(self, frame):
        with pytest.raises(ValueError):
            CellDeployment([], frame)

    def test_rejects_duplicate_ids(self, frame):
        cell = Cell(0, 51.5, -0.1, 43.0, 0.0)
        with pytest.raises(ValueError):
            CellDeployment([cell, cell], frame)

    def test_lookup_by_id(self, deployment, city_cells):
        assert deployment[city_cells[3].cell_id] is city_cells[3]

    def test_distances_shape(self, deployment):
        d = deployment.distances_m(51.5, -0.1)
        assert d.shape == (len(deployment),)
        assert np.all(d >= 0)

    def test_visible_cells_sorted_and_bounded(self, deployment):
        visible = deployment.visible_cells(51.5, -0.1, 800.0)
        dists = [d for _, d in visible]
        assert dists == sorted(dists)
        assert all(d <= 800.0 for d in dists)

    def test_visible_cells_grow_with_range(self, deployment):
        near = deployment.visible_cells(51.5, -0.1, 300.0)
        far = deployment.visible_cells(51.5, -0.1, 1500.0)
        assert len(far) >= len(near)


class TestLinkBudget:
    @pytest.fixture(scope="class")
    def setup(self, small_region, sample_trajectory):
        budget = LinkBudget(small_region.deployment)
        cells = list(small_region.deployment.cells[:20])
        clutter = small_region.clutter_along(
            sample_trajectory.lat, sample_trajectory.lon
        )
        rng = np.random.default_rng(7)
        rsrp = budget.per_cell_rsrp(sample_trajectory, cells, clutter, rng)
        return budget, cells, rsrp

    def test_rsrp_matrix_shape(self, setup, sample_trajectory):
        _, cells, rsrp = setup
        assert rsrp.shape == (len(sample_trajectory), len(cells))

    def test_rsrp_values_physical(self, setup):
        _, _, rsrp = setup
        assert np.all(rsrp < 0)     # dBm below 0 for macro distances
        assert np.all(rsrp > -200)  # not absurdly low

    def test_closer_cells_stronger_on_average(self, setup, small_region, sample_trajectory):
        budget, cells, rsrp = setup
        mid = len(sample_trajectory) // 2
        distances = small_region.deployment.frame
        lat, lon = sample_trajectory.lat[mid], sample_trajectory.lon[mid]
        d = np.array([
            float(distances.distance_m(lat, lon, c.lat, c.lon)) for c in cells
        ])
        # Spearman-ish check: correlation between distance and mean RSRP < 0.
        corr = np.corrcoef(d, rsrp[mid])[0, 1]
        assert corr < -0.3

    def test_loads_in_unit_range(self, setup):
        budget, cells, _ = setup
        loads = budget.sample_cell_loads(len(cells), 50, np.random.default_rng(0))
        assert loads.shape == (50, len(cells))
        assert np.all((loads >= 0.05) & (loads <= 0.95))

    def test_loads_slowly_varying(self, setup):
        budget, cells, _ = setup
        loads = budget.sample_cell_loads(3, 500, np.random.default_rng(1))
        step_change = np.abs(np.diff(loads, axis=0)).mean()
        assert step_change < 0.05

    def test_link_kpis_consistent(self, setup):
        budget, cells, rsrp = setup
        serving = select_serving_cells(rsrp)
        loads = budget.sample_cell_loads(len(cells), rsrp.shape[0], np.random.default_rng(2))
        kpis = budget.link_kpis(rsrp, serving, loads)
        t = np.arange(rsrp.shape[0])
        np.testing.assert_allclose(kpis["rsrp"], rsrp[t, serving])
        # RSSI must exceed the serving wideband power (it includes it).
        from repro.radio import rssi_from_rsrp
        assert np.all(kpis["rssi"] >= rssi_from_rsrp(kpis["rsrp"]) - 1e-9)
        assert np.all((kpis["rsrq"] >= -19.5) & (kpis["rsrq"] <= -3.0))
        assert np.all((kpis["cqi"] >= 1) & (kpis["cqi"] <= 15))

    def test_sinr_decreases_with_interference(self, setup):
        budget, cells, rsrp = setup
        serving = select_serving_cells(rsrp)
        t = rsrp.shape[0]
        quiet = budget.link_kpis(rsrp, serving, np.full((t, len(cells)), 0.05))
        busy = budget.link_kpis(rsrp, serving, np.full((t, len(cells)), 0.95))
        assert quiet["sinr"].mean() > busy["sinr"].mean()
