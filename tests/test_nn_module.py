"""Module container, parameter registration, state-dict round trips."""

import numpy as np
import pytest

from repro import nn


def make_rng():
    return np.random.default_rng(0)


class TwoLayer(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng)
        self.fc2 = nn.Linear(8, 2, rng)
        self.gain = nn.Parameter(np.ones(2))

    def forward(self, x):
        return self.fc2(self.fc1(x).tanh()) * self.gain


class TestParameterRegistration:
    def test_parameters_collected_recursively(self):
        model = TwoLayer(make_rng())
        names = dict(model.named_parameters())
        assert set(names) == {
            "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias", "gain",
        }

    def test_num_parameters(self):
        model = TwoLayer(make_rng())
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 2

    def test_parameter_always_requires_grad(self):
        param = nn.Parameter(np.zeros(3))
        assert param.requires_grad

    def test_modules_iteration(self):
        model = TwoLayer(make_rng())
        kinds = [type(m).__name__ for m in model.modules()]
        assert kinds.count("Linear") == 2


class TestModes:
    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2, make_rng()), nn.Dropout(0.5, make_rng()))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        model = TwoLayer(make_rng())
        out = model(nn.Tensor(np.ones((3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())


class TestStateDict:
    def test_round_trip(self):
        rng = make_rng()
        model_a = TwoLayer(rng)
        model_b = TwoLayer(np.random.default_rng(99))
        x = np.ones((2, 4))
        out_a = model_a(nn.Tensor(x)).numpy()
        model_b.load_state_dict(model_a.state_dict())
        np.testing.assert_allclose(model_b(nn.Tensor(x)).numpy(), out_a)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer(make_rng())
        state = model.state_dict()
        state["gain"][:] = 123.0
        assert not np.allclose(model.gain.data, 123.0)

    def test_missing_key_raises(self):
        model = TwoLayer(make_rng())
        state = model.state_dict()
        del state["gain"]
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_unexpected_key_raises(self):
        model = TwoLayer(make_rng())
        state = model.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        model = TwoLayer(make_rng())
        state = model.state_dict()
        state["gain"] = np.zeros(5)
        with pytest.raises(ValueError):
            model.load_state_dict(state)


class TestSerialization:
    def test_save_load_npz(self, tmp_path):
        model_a = TwoLayer(make_rng())
        model_b = TwoLayer(np.random.default_rng(1))
        path = tmp_path / "model.npz"
        nn.save_module(model_a, path, meta={"kpis": ["rsrp"]})
        meta = nn.load_module(model_b, path)
        assert meta == {"kpis": ["rsrp"]}
        x = np.ones((1, 4))
        np.testing.assert_allclose(
            model_b(nn.Tensor(x)).numpy(), model_a(nn.Tensor(x)).numpy()
        )

    def test_save_without_meta(self, tmp_path):
        model = TwoLayer(make_rng())
        path = tmp_path / "bare.npz"
        nn.save_module(model, path)
        assert nn.load_module(model, path) is None
