"""CLI fault-tolerance flags: --epochs 0, --checkpoint-every/--resume."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.runtime import read_checkpoint


COMMON = ["--samples", "120", "--seed", "3", "--hidden", "8"]


class TestEpochsZero:
    def test_zero_epochs_exits_cleanly(self, capsys):
        rc = main(["train", *COMMON, "--epochs", "0"])
        assert rc == 0
        assert "no epochs run" in capsys.readouterr().out

    def test_negative_epochs_exits_cleanly(self, capsys):
        rc = main(["train", *COMMON, "--epochs", "-2"])
        assert rc == 0
        assert "no epochs run" in capsys.readouterr().out


class TestParserFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.checkpoint_every == 0
        assert args.keep_last == 3
        assert not args.resume
        assert args.checkpoint_dir is None

    def test_resume_without_checkpointing_is_an_error(self, capsys):
        rc = main(["train", *COMMON, "--epochs", "1", "--resume"])
        assert rc == 2
        assert "--resume requires" in capsys.readouterr().out


class TestCheckpointedTraining:
    def test_checkpoints_written_with_rotation(self, tmp_path, capsys):
        out = str(tmp_path / "model.gendt")
        ckpt_dir = tmp_path / "ckpts"
        rc = main([
            "train", *COMMON, "--epochs", "4", "--out", out,
            "--checkpoint-every", "1", "--checkpoint-dir", str(ckpt_dir),
            "--keep-last", "2",
        ])
        assert rc == 0
        written = sorted(p.name for p in ckpt_dir.iterdir())
        assert written == ["ckpt-000002.gendt", "ckpt-000003.gendt"]

    def test_interrupt_and_resume_param_identical(self, tmp_path, capsys):
        """train --epochs 4 --checkpoint-every 1 interrupted after epoch 2,
        resumed with --resume, matches an uninterrupted 4-epoch run."""
        ckpt_dir = str(tmp_path / "ckpts")
        out_resumed = str(tmp_path / "resumed.gendt")
        out_full = str(tmp_path / "full.gendt")

        # "Interrupted" run: the first 2 epochs of the 4-epoch schedule.
        rc = main([
            "train", *COMMON, "--epochs", "2", "--out", str(tmp_path / "partial.gendt"),
            "--checkpoint-every", "1", "--checkpoint-dir", ckpt_dir, "--keep-last", "5",
        ])
        assert rc == 0

        rc = main([
            "train", *COMMON, "--epochs", "4", "--out", out_resumed, "--resume",
            "--checkpoint-every", "1", "--checkpoint-dir", ckpt_dir, "--keep-last", "5",
        ])
        assert rc == 0
        assert "resuming from" in capsys.readouterr().out

        rc = main(["train", *COMMON, "--epochs", "4", "--out", out_full])
        assert rc == 0

        resumed_arrays, _ = read_checkpoint(out_resumed)
        full_arrays, _ = read_checkpoint(out_full)
        assert set(resumed_arrays) == set(full_arrays)
        for key in full_arrays:
            np.testing.assert_array_equal(resumed_arrays[key], full_arrays[key])

    def test_resume_with_empty_dir_trains_from_scratch(self, tmp_path, capsys):
        ckpt_dir = tmp_path / "empty"
        ckpt_dir.mkdir()
        rc = main([
            "train", *COMMON, "--epochs", "1", "--out", str(tmp_path / "m.gendt"),
            "--checkpoint-every", "1", "--checkpoint-dir", str(ckpt_dir), "--resume",
        ])
        assert rc == 0
        assert "training from scratch" in capsys.readouterr().out

    def test_trained_checkpoint_generates(self, tmp_path):
        """A checksummed CLI checkpoint feeds generate unchanged."""
        out = str(tmp_path / "model.gendt")
        rc = main(["train", *COMMON, "--epochs", "1", "--out", out])
        assert rc == 0
        csv = str(tmp_path / "gen.csv")
        rc = main([
            "generate", *COMMON, "--checkpoint", out,
            "--route-length-m", "500", "--out", csv,
        ])
        assert rc == 0
        data = np.genfromtxt(csv, delimiter=",", names=True)
        assert len(data) > 10
