"""Trajectory invariants and editing operations."""

import numpy as np
import pytest

from repro.geo import Trajectory, from_waypoints


def straight_trajectory(n=10, dt=1.0):
    t = np.arange(n) * dt
    lat = 51.5 + np.arange(n) * 1e-4
    lon = np.full(n, -0.1)
    return Trajectory(t, lat, lon, scenario="test")


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(np.arange(3), np.zeros(4), np.zeros(3))

    def test_non_increasing_time_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(np.array([0.0, 1.0, 1.0]), np.zeros(3), np.zeros(3))

    def test_2d_arrays_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2)))

    def test_len_and_iter(self):
        traj = straight_trajectory(5)
        assert len(traj) == 5
        rows = list(traj)
        assert rows[0] == (0.0, pytest.approx(51.5), -0.1)


class TestGeometry:
    def test_duration(self):
        assert straight_trajectory(11).duration_s == pytest.approx(10.0)

    def test_sample_interval(self):
        assert straight_trajectory(10, dt=2.5).sample_interval_s == pytest.approx(2.5)

    def test_length_positive_for_moving(self):
        assert straight_trajectory().length_m() > 0

    def test_speed_consistency(self):
        traj = straight_trajectory()
        avg = traj.average_speed_mps()
        assert avg == pytest.approx(traj.length_m() / traj.duration_s)

    def test_speeds_array_length(self):
        traj = straight_trajectory(10)
        assert len(traj.speeds_mps()) == 9

    def test_bounding_box_contains_all(self):
        traj = straight_trajectory()
        lat_min, lat_max, lon_min, lon_max = traj.bounding_box()
        assert np.all((traj.lat >= lat_min) & (traj.lat <= lat_max))
        assert np.all((traj.lon >= lon_min) & (traj.lon <= lon_max))

    def test_min_distance_to_self_is_zero(self):
        traj = straight_trajectory()
        assert traj.min_distance_to(traj) == pytest.approx(0.0, abs=1e-6)

    def test_min_distance_to_shifted(self):
        a = straight_trajectory()
        b = Trajectory(a.t, a.lat, a.lon + 0.01, "other")  # ~700 m east
        assert 500 < a.min_distance_to(b) < 900


class TestEditing:
    def test_slice_rebases_time(self):
        traj = straight_trajectory(10)
        part = traj.slice(3, 7)
        assert len(part) == 4
        assert part.t[0] == 0.0
        assert part.scenario == "test"

    def test_resample_uniform(self):
        traj = straight_trajectory(10, dt=1.0)
        dense = traj.resample(0.5)
        assert dense.sample_interval_s == pytest.approx(0.5)
        assert len(dense) == 19

    def test_resample_preserves_endpoints(self):
        traj = straight_trajectory(10)
        dense = traj.resample(0.5)
        assert dense.lat[0] == pytest.approx(traj.lat[0])
        assert dense.lat[-1] == pytest.approx(traj.lat[-1])

    def test_resample_invalid_interval(self):
        with pytest.raises(ValueError):
            straight_trajectory().resample(0.0)

    def test_concat_monotone_time(self):
        a = straight_trajectory(5)
        b = straight_trajectory(5)
        joined = a.concat(b)
        assert len(joined) == 10
        assert np.all(np.diff(joined.t) > 0)

    def test_concat_scenario_merge(self):
        a = straight_trajectory(3)
        b = Trajectory(np.arange(3.0), np.full(3, 51.0), np.full(3, 0.0), "other")
        assert a.concat(b).scenario == "test+other"
        assert a.concat(straight_trajectory(3)).scenario == "test"


class TestFromWaypoints:
    def test_speed_respected(self, rng):
        traj = from_waypoints(
            [(51.5, -0.1), (51.51, -0.1)], speed_mps=10.0, interval_s=1.0
        )
        assert traj.average_speed_mps() == pytest.approx(10.0, rel=0.05)

    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            from_waypoints([(51.5, -0.1)], 1.0, 1.0)

    def test_jitter_requires_rng(self):
        with pytest.raises(ValueError):
            from_waypoints(
                [(51.5, -0.1), (51.51, -0.1)], 10.0, 1.0, speed_jitter=0.2
            )

    def test_jitter_changes_timing(self, rng):
        wp = [(51.5, -0.1), (51.51, -0.1), (51.52, -0.1)]
        plain = from_waypoints(wp, 10.0, 1.0)
        jittered = from_waypoints(wp, 10.0, 1.0, speed_jitter=0.3, rng=rng)
        assert len(plain) != len(jittered) or not np.allclose(
            plain.lat[: len(jittered)], jittered.lat[: len(plain)]
        )

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            from_waypoints([(51.5, -0.1), (51.51, -0.1)], 0.0, 1.0)
