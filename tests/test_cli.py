"""CLI smoke tests (tiny scale, real subprocess-free invocation)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.dataset == "a"
        assert args.seed == 7

    def test_generate_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestCommands:
    def test_simulate_prints_stats(self, capsys):
        rc = main(["simulate", "--samples", "150", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "walk" in out and "tram" in out
        assert "rsrp_mean" in out

    def test_train_generate_evaluate_round_trip(self, tmp_path, capsys):
        ckpt = str(tmp_path / "model.npz")
        rc = main([
            "train", "--samples", "150", "--seed", "3",
            "--epochs", "1", "--hidden", "10", "--out", ckpt,
        ])
        assert rc == 0
        assert (tmp_path / "model.npz").exists()

        csv = str(tmp_path / "gen.csv")
        rc = main([
            "generate", "--samples", "150", "--seed", "3", "--hidden", "10",
            "--checkpoint", ckpt, "--route-length-m", "500",
            "--out", csv,
        ])
        assert rc == 0
        data = np.genfromtxt(csv, delimiter=",", names=True)
        assert {"t_s", "lat", "lon", "rsrp", "rsrq"} <= set(data.dtype.names)
        assert len(data) > 10
        assert np.all(data["rsrp"] <= -44) and np.all(data["rsrp"] >= -140)

        rc = main([
            "evaluate", "--samples", "150", "--seed", "3", "--hidden", "10",
            "--checkpoint", ckpt,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fidelity" in out
