"""CLI smoke tests (tiny scale, real subprocess-free invocation)."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.dataset == "a"
        assert args.seed == 7

    def test_generate_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate"])


class TestCommands:
    def test_simulate_prints_stats(self, capsys):
        rc = main(["simulate", "--samples", "150", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "walk" in out and "tram" in out
        assert "rsrp_mean" in out

    def test_train_generate_evaluate_round_trip(self, tmp_path, capsys):
        ckpt = str(tmp_path / "model.npz")
        rc = main([
            "train", "--samples", "150", "--seed", "3",
            "--epochs", "1", "--hidden", "10", "--out", ckpt,
        ])
        assert rc == 0
        assert (tmp_path / "model.npz").exists()

        csv = str(tmp_path / "gen.csv")
        rc = main([
            "generate", "--samples", "150", "--seed", "3", "--hidden", "10",
            "--checkpoint", ckpt, "--route-length-m", "500",
            "--out", csv,
        ])
        assert rc == 0
        data = np.genfromtxt(csv, delimiter=",", names=True)
        assert {"t_s", "lat", "lon", "rsrp", "rsrq"} <= set(data.dtype.names)
        assert len(data) > 10
        assert np.all(data["rsrp"] <= -44) and np.all(data["rsrp"] >= -140)

        rc = main([
            "evaluate", "--samples", "150", "--seed", "3", "--hidden", "10",
            "--checkpoint", ckpt,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fidelity" in out


class TestGenerateCampaign:
    def test_parser_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate-campaign"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["generate-campaign", "--checkpoint", "m.npz"]
        )
        assert args.routes == 8
        assert args.trajectory_deadline == 0.0
        assert args.max_resamples == 1
        assert not args.no_fdas

    def test_campaign_round_trip(self, tmp_path, capsys):
        import json

        ckpt = str(tmp_path / "model.npz")
        rc = main([
            "train", "--samples", "150", "--seed", "3",
            "--epochs", "1", "--hidden", "10", "--out", ckpt,
        ])
        assert rc == 0

        out = str(tmp_path / "campaign.jsonl")
        rc = main([
            "generate-campaign", "--samples", "150", "--seed", "3",
            "--hidden", "10", "--checkpoint", ckpt,
            "--routes", "2", "--route-length-m", "400",
            "--out", out,
        ])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "campaign: 2 trajectories" in printed

        lines = [json.loads(line) for line in open(out, encoding="utf-8")]
        envelopes, trailer = lines[:-1], lines[-1]
        assert len(envelopes) == 2
        assert all(e["record"] == "envelope" for e in envelopes)
        assert trailer["record"] == "summary"
        assert trailer["status_counts"]["ok"] >= 1
