"""Property-based tests on the extended substrates (video QoE, maps, MDT)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.datasets import SparseMeasurements, build_coverage_map
from repro.usecases import handover_indicator, simulate_session
from repro.usecases.video_qoe import PlayerConfig

throughput_series = arrays(
    np.float64,
    st.integers(min_value=20, max_value=120),
    elements=st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
)


class TestVideoSessionProperties:
    @given(throughput_series)
    @settings(max_examples=40, deadline=None)
    def test_score_always_in_range(self, series):
        score = simulate_session(series).qoe_score()
        assert 1.0 <= score <= 5.0

    @given(throughput_series)
    @settings(max_examples=40, deadline=None)
    def test_bitrates_on_ladder(self, series):
        session = simulate_session(series)
        ladder = set(PlayerConfig().ladder_mbps)
        assert set(np.unique(session.bitrates_mbps)).issubset(ladder)

    @given(throughput_series)
    @settings(max_examples=40, deadline=None)
    def test_buffer_never_negative(self, series):
        session = simulate_session(series)
        assert np.all(session.buffer_s >= 0.0)

    @given(
        throughput_series,
        st.floats(min_value=0.5, max_value=5.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_uniform_scaling_never_hurts(self, series, scale):
        """More throughput everywhere cannot reduce the QoE score by much.

        (Not strictly monotone because bitrate switching interacts with the
        ladder, hence the small tolerance.)
        """
        base = simulate_session(series).qoe_score()
        boosted = simulate_session(series * scale).qoe_score()
        if scale >= 1.0:
            assert boosted >= base - 0.6


class TestHandoverIndicatorProperties:
    @given(
        arrays(
            np.int64,
            st.integers(min_value=2, max_value=80),
            elements=st.integers(min_value=0, max_value=5),
        ),
        st.integers(min_value=0, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_indicator_binary_and_covers_changes(self, ids, window):
        indicator = handover_indicator(ids, window=window)
        assert set(np.unique(indicator)).issubset({0.0, 1.0})
        changes = np.nonzero(np.diff(ids) != 0)[0] + 1
        for point in changes:
            assert indicator[point] == 1.0


def test_coverage_counts_conserved(small_region, rng):
    n = 300
    lat = 51.5 + rng.uniform(-0.008, 0.008, n)
    lon = -0.1 + rng.uniform(-0.012, 0.012, n)
    samples = SparseMeasurements(lat, lon, rng.normal(-85, 5, n))
    cmap = build_coverage_map(small_region, samples, pixel_m=200.0, extent_m=1500.0)
    assert cmap.counts.sum() == n  # every sample lands in exactly one pixel


def test_coverage_mean_within_sample_range(small_region, rng):
    n = 200
    lat = 51.5 + rng.uniform(-0.005, 0.005, n)
    lon = -0.1 + rng.uniform(-0.008, 0.008, n)
    values = rng.normal(-85, 5, n)
    samples = SparseMeasurements(lat, lon, values)
    cmap = build_coverage_map(small_region, samples, pixel_m=250.0, extent_m=1200.0)
    filled = cmap.counts > 0
    assert cmap.mean[filled].min() >= values.min() - 1e-9
    assert cmap.mean[filled].max() <= values.max() + 1e-9
