"""Multi-city / highway code paths: intercity routes, highway deployments."""

import numpy as np
import pytest

from repro.radio import DriveTestSimulator, cell_dwell_times


@pytest.fixture(scope="module")
def highway_record(two_city_region):
    rng = np.random.default_rng(0)
    route = two_city_region.roads.intercity_route("west", "east", rng, city_detour_m=300.0)
    trajectory = two_city_region.roads.route_to_trajectory(
        route, speed_mps=25.0, interval_s=2.0, scenario="highway", rng=rng
    )
    simulator = DriveTestSimulator(two_city_region, candidate_range_m=4500.0)
    return simulator.simulate(trajectory, rng)


class TestHighwayScenario:
    def test_highway_cells_deployed(self, two_city_region):
        highway_sites = {
            c.site_id for c in two_city_region.deployment.cells
            if c.antenna.beamwidth_deg == 45.0  # highway sector profile
        }
        assert len(highway_sites) >= 2

    def test_highway_drive_simulates(self, highway_record):
        assert len(highway_record) > 50
        assert np.isfinite(highway_record.kpi["rsrp"]).all()

    def test_highway_handovers_frequent(self, highway_record):
        dwell = cell_dwell_times(
            highway_record.serving_cell_id, highway_record.trajectory.t
        )
        # At 25 m/s with ~1.8 km site spacing, several handovers must occur.
        assert len(dwell) >= 3

    def test_serving_cells_include_highway_cells(self, highway_record, two_city_region):
        highway_cell_ids = {
            c.cell_id for c in two_city_region.deployment.cells
            if c.antenna.beamwidth_deg == 45.0
        }
        used = set(np.unique(highway_record.serving_cell_id))
        assert used & highway_cell_ids  # at least one highway cell served

    def test_context_covers_highway_stretch(self, two_city_region, highway_record):
        from repro.context import ContextBuilder, ContextConfig

        builder = ContextBuilder(two_city_region, ContextConfig(d_s_m=4500.0, max_cells=6))
        windows = builder.generation_windows(highway_record.trajectory, 25)
        assert all(w.n_cells >= 1 for w in windows)

    def test_gendt_trains_on_multi_city(self, two_city_region, highway_record):
        from repro.core import GenDT, small_config

        config = small_config(epochs=1, hidden_size=8, batch_len=15, train_step=15)
        model = GenDT(two_city_region, kpis=["rsrp"], config=config, seed=0)
        model.fit([highway_record])
        out = model.generate(highway_record.trajectory)
        assert out.shape == (len(highway_record), 1)


class TestEnvironmentConsistency:
    def test_highway_corridor_low_density(self, two_city_region):
        # Mid-point between the cities should be less urban than a centre.
        west = two_city_region.cities[0]
        east = two_city_region.cities[1]
        mid_lat = (west.center_lat + east.center_lat) / 2
        mid_lon = (west.center_lon + east.center_lon) / 2
        centre_clutter = float(
            two_city_region.land_use.clutter_at(west.center_lat, west.center_lon)
        )
        mid_clutter = float(two_city_region.land_use.clutter_at(mid_lat, mid_lon))
        assert mid_clutter < centre_clutter

    def test_env_extractor_deterministic(self, two_city_region, highway_record):
        from repro.context import EnvironmentContextExtractor

        e1 = EnvironmentContextExtractor(two_city_region)
        e2 = EnvironmentContextExtractor(two_city_region)
        traj = highway_record.trajectory.slice(0, 20)
        np.testing.assert_allclose(e1.features(traj), e2.features(traj))
