"""GenDT core components: config, stochastic LSTM, networks, features."""

import numpy as np
import pytest

from repro.context.normalize import N_CELL_FEATURES
from repro.core import (
    GenDTConfig,
    ModelBatch,
    StochasticLSTM,
    recent_values_matrix,
    small_config,
)
from repro.core.networks import AggregationNetwork, Discriminator, GnnNodeNetwork, ResGen
from repro import nn


class TestConfig:
    def test_paper_defaults(self):
        config = GenDTConfig()
        assert config.batch_len == 50
        assert config.train_step == 5
        assert config.hidden_size == 100
        assert config.noise_intensity_h == 2.0
        assert config.lambda_adv == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            GenDTConfig(batch_len=1).validate()
        with pytest.raises(ValueError):
            GenDTConfig(train_step=0).validate()
        with pytest.raises(ValueError):
            GenDTConfig(lambda_adv=-1.0).validate()
        with pytest.raises(ValueError):
            GenDTConfig(resgen_dropout=1.0).validate()

    def test_one_shot_allowed(self):
        GenDTConfig(batch_len=None).validate()

    def test_small_config_overrides(self):
        config = small_config(epochs=2, hidden_size=10)
        assert config.epochs == 2
        assert config.hidden_size == 10

    def test_small_config_rejects_unknown(self):
        with pytest.raises(AttributeError):
            small_config(bogus=1)


class TestStochasticLSTM:
    def test_shapes(self, rng):
        lstm = StochasticLSTM(3, 8, rng)
        out, (h, c) = lstm(nn.Tensor(np.ones((2, 5, 3))))
        assert out.shape == (2, 5, 8)
        assert h.shape == (2, 8)

    def test_stochastic_runs_differ(self):
        rng = np.random.default_rng(0)
        lstm = StochasticLSTM(2, 6, rng, stochastic=True)
        x = nn.Tensor(np.ones((1, 10, 2)))
        out1, _ = lstm(x)
        out2, _ = lstm(x)
        assert not np.allclose(out1.numpy(), out2.numpy())

    def test_deterministic_when_disabled(self):
        rng = np.random.default_rng(0)
        lstm = StochasticLSTM(2, 6, rng, stochastic=False)
        x = nn.Tensor(np.ones((1, 10, 2)))
        out1, _ = lstm(x)
        out2, _ = lstm(x)
        np.testing.assert_allclose(out1.numpy(), out2.numpy())

    def test_override_flag(self):
        rng = np.random.default_rng(0)
        lstm = StochasticLSTM(2, 6, rng, stochastic=True)
        x = nn.Tensor(np.ones((1, 10, 2)))
        out1, _ = lstm(x, stochastic=False)
        out2, _ = lstm(x, stochastic=False)
        np.testing.assert_allclose(out1.numpy(), out2.numpy())

    def test_gradients_flow_through_noise(self):
        rng = np.random.default_rng(0)
        lstm = StochasticLSTM(2, 4, rng, stochastic=True)
        out, _ = lstm(nn.Tensor(np.ones((1, 5, 2))))
        out.sum().backward()
        for name, param in lstm.named_parameters():
            assert param.grad is not None, name

    def test_intensity_zero_close_to_plain(self):
        rng = np.random.default_rng(0)
        lstm = StochasticLSTM(2, 4, rng, intensity_h=0.0, intensity_c=0.0, stochastic=True)
        x = nn.Tensor(np.ones((1, 8, 2)))
        noisy, _ = lstm(x)
        plain, _ = lstm(x, stochastic=False)
        np.testing.assert_allclose(noisy.numpy(), plain.numpy(), atol=1e-9)


def _config(**kw):
    return small_config(hidden_size=10, **kw)


class TestNetworks:
    def test_gnn_node_shapes(self, rng):
        net = GnnNodeNetwork(N_CELL_FEATURES, _config(), rng)
        out = net(nn.Tensor(np.ones((6, 12, N_CELL_FEATURES))))
        assert out.shape == (6, 12, 10)

    def test_aggregation_shapes(self, rng):
        net = AggregationNetwork(3, _config(), rng)
        out = net(nn.Tensor(np.ones((2, 12, 10))))
        assert out.shape == (2, 12, 3)

    def test_resgen_distribution_shapes(self, rng):
        config = _config()
        net = ResGen(26, 2, config, rng)
        env = nn.Tensor(np.ones((4, 26)))
        recent = nn.Tensor(np.ones((4, config.resgen_ar_window * 2)))
        mu, log_sigma = net.distribution(env, recent)
        assert mu.shape == (4, 2)
        assert log_sigma.shape == (4, 2)
        assert np.all(log_sigma.numpy() <= 2.0)

    def test_resgen_sample_stochastic(self, rng):
        config = _config()
        net = ResGen(26, 2, config, rng)
        env = nn.Tensor(np.ones((4, 26)))
        recent = nn.Tensor(np.zeros((4, config.resgen_ar_window * 2)))
        r1, _, _ = net.sample(env, recent)
        r2, _, _ = net.sample(env, recent)
        assert not np.allclose(r1.numpy(), r2.numpy())

    def test_resgen_force_dropout(self, rng):
        net = ResGen(26, 1, _config(), rng)
        net.eval()
        net.force_dropout(True)
        assert all(layer.force_active for layer in net.mlp.dropout_layers)
        net.force_dropout(False)
        assert not any(layer.force_active for layer in net.mlp.dropout_layers)

    def test_discriminator_logit_shape(self, rng):
        config = _config()
        net = Discriminator(2, config, rng)
        logits = net(nn.Tensor(np.ones((3, 12, 2))), nn.Tensor(np.ones((3, 12, 10))))
        assert logits.shape == (3, 1)


class TestRecentValuesMatrix:
    def test_teacher_forcing_layout(self):
        series = np.arange(12, dtype=float).reshape(1, 6, 2)
        out = recent_values_matrix(series, ar_window=2)
        assert out.shape == (1, 6, 4)
        # t=0 sees only the zero initial state.
        np.testing.assert_allclose(out[0, 0], 0.0)
        # t=2 sees x[0], x[1].
        np.testing.assert_allclose(out[0, 2], [0.0, 1.0, 2.0, 3.0])

    def test_initial_state_used(self):
        series = np.zeros((1, 3, 1))
        initial = np.array([[[7.0], [8.0]]])
        out = recent_values_matrix(series, 2, initial=initial)
        np.testing.assert_allclose(out[0, 0], [7.0, 8.0])
        np.testing.assert_allclose(out[0, 1], [8.0, 0.0])

    def test_bad_initial_shape(self):
        with pytest.raises(ValueError):
            recent_values_matrix(np.zeros((1, 3, 1)), 2, initial=np.zeros((1, 3, 1)))
