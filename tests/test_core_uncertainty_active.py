"""MC-dropout uncertainty and the active-learning selection loop."""

import numpy as np
import pytest

from repro.core import (
    GenDT,
    mc_dropout_uncertainty,
    run_active_learning,
    small_config,
    subset_uncertainties,
)


class TestUncertainty:
    def test_estimate_fields(self, trained_gendt, tiny_split):
        traj = tiny_split.test[0].trajectory
        est = mc_dropout_uncertainty(trained_gendt, traj, n_passes=3)
        assert est.model_uncertainty > 0
        assert est.data_uncertainty > 0
        assert est.n_passes == 3

    def test_needs_two_passes(self, trained_gendt, tiny_split):
        with pytest.raises(ValueError):
            mc_dropout_uncertainty(trained_gendt, tiny_split.test[0].trajectory, n_passes=1)

    def test_dropout_restored_after_probe(self, trained_gendt, tiny_split):
        mc_dropout_uncertainty(trained_gendt, tiny_split.test[0].trajectory, n_passes=2)
        assert not any(
            layer.force_active
            for layer in trained_gendt.generator.resgen.mlp.dropout_layers
        )

    def test_requires_resgen(self, tiny_dataset_a, tiny_split):
        config = small_config(epochs=1, hidden_size=8, use_resgen=False, batch_len=15)
        model = GenDT(tiny_dataset_a.region, kpis=["rsrp"], config=config, seed=0)
        model.fit(tiny_split.train[:2])
        with pytest.raises(RuntimeError):
            mc_dropout_uncertainty(model, tiny_split.test[0].trajectory)

    def test_subset_scores(self, trained_gendt, tiny_split):
        subsets = [[r] for r in tiny_split.test[:2]]
        scores = subset_uncertainties(trained_gendt, subsets, n_passes=2)
        assert len(scores) == 2
        assert all(s > 0 for s in scores)


class TestActiveLearning:
    @pytest.fixture(scope="class")
    def setup(self, tiny_dataset_a, tiny_split):
        region = tiny_dataset_a.region
        subsets = [[r] for r in tiny_split.train[:4]]
        eval_rec = tiny_split.test[0]

        def factory():
            config = small_config(epochs=1, hidden_size=8, batch_len=15, train_step=15)
            return GenDT(region, kpis=["rsrp"], config=config, seed=2)

        def evaluate(model):
            from repro.metrics import mae

            gen = model.generate(eval_rec.trajectory)
            return {"mae": mae(eval_rec.kpi["rsrp"], gen[:, 0])}

        return factory, subsets, evaluate

    def test_uncertainty_strategy_runs(self, setup):
        factory, subsets, evaluate = setup
        result = run_active_learning(
            factory, subsets, evaluate, n_steps=2,
            strategy="uncertainty", epochs_per_step=1, mc_passes=2,
        )
        assert result.strategy == "uncertainty"
        assert len(result.steps) == 3
        fractions = result.fractions()
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(3 / 4)
        assert all(np.isfinite(v) for v in result.metric_series("mae"))

    def test_random_strategy_runs(self, setup):
        factory, subsets, evaluate = setup
        result = run_active_learning(
            factory, subsets, evaluate, n_steps=2,
            strategy="random", rng=np.random.default_rng(0), epochs_per_step=1,
        )
        assert len(result.steps) == 3

    def test_random_requires_rng(self, setup):
        factory, subsets, evaluate = setup
        with pytest.raises(ValueError):
            run_active_learning(factory, subsets, evaluate, 1, strategy="random")

    def test_unknown_strategy(self, setup):
        factory, subsets, evaluate = setup
        with pytest.raises(ValueError):
            run_active_learning(factory, subsets, evaluate, 1, strategy="greedy")

    def test_no_repeat_selection(self, setup):
        factory, subsets, evaluate = setup
        result = run_active_learning(
            factory, subsets, evaluate, n_steps=3,
            strategy="random", rng=np.random.default_rng(1), epochs_per_step=1,
        )
        chosen = [s.chosen_subset for s in result.steps]
        assert len(set(chosen)) == len(chosen)
