"""Atomic checkpoint container: round trips, corruption detection, rotation,
optimizer state serialization, and bit-exact training resume."""

import numpy as np
import pytest

from repro import nn
from repro.core import GenDT, small_config
from repro.runtime import (
    CheckpointManager,
    CheckpointCorruptError,
    SCHEMA_VERSION,
    is_checkpoint,
    read_checkpoint,
    resolve_checkpoint,
    write_checkpoint,
)


def _arrays():
    rng = np.random.default_rng(0)
    return {"a": rng.normal(size=(4, 3)), "b": np.arange(7.0), "nested.name": rng.normal(size=2)}


class TestContainer:
    def test_round_trip(self, tmp_path):
        arrays = _arrays()
        path = write_checkpoint(tmp_path / "x.gendt", arrays, {"epoch": 3, "tag": "t"})
        loaded, meta = read_checkpoint(path)
        assert meta == {"epoch": 3, "tag": "t"}
        assert set(loaded) == set(arrays)
        for key in arrays:
            np.testing.assert_array_equal(loaded[key], arrays[key])

    def test_is_checkpoint_sniff(self, tmp_path):
        path = write_checkpoint(tmp_path / "x.gendt", _arrays(), {})
        assert is_checkpoint(path)
        other = tmp_path / "plain.npz"
        np.savez(other, a=np.arange(3))
        assert not is_checkpoint(other)
        assert not is_checkpoint(tmp_path / "missing")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            read_checkpoint(tmp_path / "nope.gendt")

    def test_corrupt_any_single_byte_detected(self, tmp_path):
        """Property-style: flipping one byte anywhere must be detected."""
        path = write_checkpoint(tmp_path / "x.gendt", _arrays(), {"epoch": 1})
        raw = path.read_bytes()
        rng = np.random.default_rng(42)
        # Sample positions across the whole file (magic, header, digest,
        # payload) plus the boundaries.
        positions = sorted(
            set(rng.integers(0, len(raw), size=40).tolist()) | {0, 7, 8, 20, len(raw) - 1}
        )
        for pos in positions:
            corrupted = bytearray(raw)
            corrupted[pos] ^= 0xFF
            path.write_bytes(bytes(corrupted))
            with pytest.raises(CheckpointCorruptError):
                read_checkpoint(path)
        path.write_bytes(raw)
        read_checkpoint(path)  # pristine copy still loads

    def test_truncation_detected(self, tmp_path):
        path = write_checkpoint(tmp_path / "x.gendt", _arrays(), {})
        raw = path.read_bytes()
        for cut in (4, 12, len(raw) // 2, len(raw) - 1):
            path.write_bytes(raw[:cut])
            with pytest.raises(CheckpointCorruptError):
                read_checkpoint(path)

    def test_unknown_schema_rejected(self, tmp_path, monkeypatch):
        import repro.runtime.checkpoint as ckpt

        path = write_checkpoint(tmp_path / "x.gendt", _arrays(), {})
        monkeypatch.setattr(ckpt, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        with pytest.raises(CheckpointCorruptError, match="schema version"):
            ckpt.read_checkpoint(path)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        write_checkpoint(tmp_path / "x.gendt", _arrays(), {})
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []


class TestManager:
    def test_rotation_keeps_last_n(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=2)
        for epoch in range(5):
            manager.save({"w": np.full(3, float(epoch))}, {"kind": "trainer", "epoch": epoch}, epoch)
        epochs = [e for e, _ in manager.checkpoints()]
        assert epochs == [3, 4]
        assert manager.latest().name.endswith("000004.gendt")

    def test_resolve_directory_and_file(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=3)
        path = manager.save({"w": np.zeros(1)}, {}, 7)
        assert resolve_checkpoint(tmp_path) == path
        assert resolve_checkpoint(path) == path

    def test_resolve_empty_directory_raises(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            resolve_checkpoint(tmp_path)


class TestOptimizerState:
    def _stepped_adam(self):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        opt = nn.Adam(layer.parameters(), lr=0.05)
        x = nn.Tensor(np.random.default_rng(1).normal(size=(4, 3)))
        for _ in range(3):
            loss = nn.mse_loss(layer(x), nn.Tensor(np.zeros((4, 2))))
            opt.zero_grad()
            loss.backward()
            opt.step()
        return layer, opt, x

    def test_adam_state_round_trip(self):
        layer, opt, x = self._stepped_adam()
        state = opt.state_dict()
        assert int(state["t"][0]) == 3

        clone_layer = nn.Linear(3, 2, rng=np.random.default_rng(9))
        clone_layer.load_state_dict(layer.state_dict())
        clone_opt = nn.Adam(clone_layer.parameters(), lr=999.0)
        clone_opt.load_state_dict(state)
        assert clone_opt.lr == opt.lr

        # One more identical step on both must produce identical parameters.
        for optimizer, module in ((opt, layer), (clone_opt, clone_layer)):
            loss = nn.mse_loss(module(x), nn.Tensor(np.zeros((4, 2))))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        for (_, a), (_, b) in zip(layer.named_parameters(), clone_layer.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_sgd_momentum_state_round_trip(self):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(0))
        opt = nn.SGD(layer.parameters(), lr=0.1, momentum=0.9)
        x = nn.Tensor(np.ones((2, 2)))
        loss = nn.mse_loss(layer(x), nn.Tensor(np.zeros((2, 2))))
        opt.zero_grad()
        loss.backward()
        opt.step()
        state = opt.state_dict()
        assert any(key.startswith("velocity.") for key in state)
        fresh = nn.SGD(layer.parameters(), lr=0.1, momentum=0.9)
        fresh.load_state_dict(state)
        assert fresh._velocity  # restored


class TestSerializationSuffix:
    """The np.savez suffix trap: save/load must agree on the real filename."""

    def test_suffixless_path_round_trips(self, tmp_path):
        layer = nn.Linear(3, 2, rng=np.random.default_rng(0))
        bare = tmp_path / "ckpt"  # no .npz
        nn.save_module(layer, bare, meta={"n": 1})
        assert (tmp_path / "ckpt.npz").exists()
        clone = nn.Linear(3, 2, rng=np.random.default_rng(1))
        meta = nn.load_module(clone, bare)  # same bare path now loads
        assert meta == {"n": 1}
        for (_, a), (_, b) in zip(layer.named_parameters(), clone.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_explicit_npz_unchanged(self, tmp_path):
        layer = nn.Linear(2, 2, rng=np.random.default_rng(0))
        nn.save_module(layer, tmp_path / "m.npz")
        assert (tmp_path / "m.npz").exists()
        assert nn.load_module(layer, tmp_path / "m.npz") is None


class TestTrainingResume:
    """save -> resume-from-epoch-k reproduces an uninterrupted run bit-exactly."""

    CFG = dict(epochs=3, hidden_size=8, batch_len=20, train_step=10, minibatch_windows=16)

    def _model(self, dataset):
        return GenDT(dataset.region, kpis=["rsrp"], config=small_config(**self.CFG), seed=5)

    def test_resume_bit_exact(self, tiny_dataset_a, tiny_split, tmp_path):
        full = self._model(tiny_dataset_a)
        full_history = full.fit(
            tiny_split.train, checkpoint_every=1, checkpoint_dir=tmp_path / "full", keep_last=5
        )

        # "Interrupted" run: stop after epoch 2, then resume to completion.
        part = self._model(tiny_dataset_a)
        part.fit(tiny_split.train, epochs=2, checkpoint_every=1,
                 checkpoint_dir=tmp_path / "part", keep_last=5)
        resumed = self._model(tiny_dataset_a)
        resumed_history = resumed.fit(
            tiny_split.train, checkpoint_every=1, checkpoint_dir=tmp_path / "part",
            keep_last=5, resume_from=tmp_path / "part",
        )

        full_state = full.generator.state_dict()
        resumed_state = resumed.generator.state_dict()
        assert set(full_state) == set(resumed_state)
        for key in full_state:
            np.testing.assert_array_equal(full_state[key], resumed_state[key])
        np.testing.assert_array_equal(full_history.mse, resumed_history.mse)
        np.testing.assert_array_equal(full_history.total, resumed_history.total)

    def test_resume_restores_history_and_rng(self, tiny_dataset_a, tiny_split, tmp_path):
        model = self._model(tiny_dataset_a)
        model.fit(tiny_split.train, epochs=2, checkpoint_every=1,
                  checkpoint_dir=tmp_path / "c", keep_last=5)
        resumed = self._model(tiny_dataset_a)
        history = resumed.fit(tiny_split.train, resume_from=tmp_path / "c")
        # 2 restored epochs + 1 new one.
        assert len(history.mse) == 3

    def test_trainer_checkpoint_carries_model_meta(self, tiny_dataset_a, tiny_split, tmp_path):
        model = self._model(tiny_dataset_a)
        model.fit(tiny_split.train, epochs=1, checkpoint_every=1,
                  checkpoint_dir=tmp_path / "c")
        _, meta = read_checkpoint(resolve_checkpoint(tmp_path / "c"))
        assert meta["kind"] == "trainer"
        assert meta["kpis"] == ["rsrp"]
        assert "rng_state" in meta and "target_normalizer" in meta


class TestModelPersistenceFormat:
    def test_model_save_is_checksummed_checkpoint(self, trained_gendt, tmp_path):
        path = tmp_path / "model.gendt"
        trained_gendt.save(path)
        assert is_checkpoint(path)
        _, meta = read_checkpoint(path)
        assert meta["kind"] == "model"
        assert meta["kpis"] == ["rsrp", "rsrq"]

    def test_corrupted_model_checkpoint_rejected(self, trained_gendt, tmp_path):
        path = tmp_path / "model.gendt"
        trained_gendt.save(path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        clone = GenDT(
            trained_gendt.region, kpis=["rsrp", "rsrq"],
            config=trained_gendt.config, seed=0,
        )
        with pytest.raises(CheckpointCorruptError):
            clone.load(path)

    def test_legacy_npz_still_loads(self, trained_gendt, tmp_path):
        """Old-format archives written by save_module stay loadable."""
        from repro import nn as nn_mod

        path = tmp_path / "legacy.npz"
        meta = trained_gendt._checkpoint_meta()
        meta.pop("n_env")
        nn_mod.save_module(trained_gendt.generator, path, meta=meta)
        clone = GenDT(
            trained_gendt.region, kpis=["rsrp", "rsrq"],
            config=trained_gendt.config, seed=0,
        )
        clone.load(path)
        np.testing.assert_allclose(
            clone.target_normalizer.mean, trained_gendt.target_normalizer.mean
        )
