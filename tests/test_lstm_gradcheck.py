"""Numerical gradient checks through recurrent structures.

The elementwise ops are grad-checked in test_nn_tensor; these tests verify
the *composed* recurrent graphs (LSTM cell, stochastic LSTM with noise off,
masked mean-pooling) against finite differences — the structures GenDT's
training actually differentiates through.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.stochastic_lstm import StochasticLSTM
from repro.nn.tensor import Tensor


def numerical_grad_param(loss_fn, param, eps=1e-6):
    grad = np.zeros_like(param.data)
    for idx in np.ndindex(*param.data.shape):
        original = param.data[idx]
        param.data[idx] = original + eps
        up = loss_fn()
        param.data[idx] = original - eps
        down = loss_fn()
        param.data[idx] = original
        grad[idx] = (up - down) / (2 * eps)
    return grad


class TestLSTMCellGradients:
    def test_weight_ih_grad(self):
        rng = np.random.default_rng(0)
        cell = nn.LSTMCell(2, 3, rng)
        x = rng.normal(size=(2, 2))

        def loss_fn():
            h, c = cell.zero_state(2)
            h, c = cell(Tensor(x), (h, c))
            h, c = cell(Tensor(x * 0.5), (h, c))
            return (h * h).sum().item()

        cell.zero_grad()
        h, c = cell.zero_state(2)
        h, c = cell(Tensor(x), (h, c))
        h, c = cell(Tensor(x * 0.5), (h, c))
        (h * h).sum().backward()
        numeric = numerical_grad_param(loss_fn, cell.weight_ih)
        np.testing.assert_allclose(cell.weight_ih.grad, numeric, atol=1e-5)

    def test_bias_grad(self):
        rng = np.random.default_rng(1)
        cell = nn.LSTMCell(2, 3, rng)
        x = rng.normal(size=(1, 2))

        def loss_fn():
            h, c = cell.zero_state(1)
            h, _ = cell(Tensor(x), (h, c))
            return h.sum().item()

        cell.zero_grad()
        h, c = cell.zero_state(1)
        h, _ = cell(Tensor(x), (h, c))
        h.sum().backward()
        numeric = numerical_grad_param(loss_fn, cell.bias)
        np.testing.assert_allclose(cell.bias.grad, numeric, atol=1e-5)


class TestStochasticLSTMGradients:
    def test_gradcheck_with_noise_disabled(self):
        rng = np.random.default_rng(2)
        lstm = StochasticLSTM(2, 3, rng, stochastic=False)
        x = rng.normal(size=(1, 4, 2))

        def loss_fn():
            out, _ = lstm(Tensor(x), stochastic=False)
            return (out * out).mean().item()

        lstm.zero_grad()
        out, _ = lstm(Tensor(x), stochastic=False)
        (out * out).mean().backward()
        param = lstm.cell.weight_hh
        numeric = numerical_grad_param(loss_fn, param)
        np.testing.assert_allclose(param.grad, numeric, atol=1e-5)


class TestMaskedMeanGradients:
    def test_masked_pool_grad_matches_manual(self):
        # The h_avg computation: masked sum over cells / count.
        rng = np.random.default_rng(3)
        h = Tensor(rng.normal(size=(2, 3, 4, 5)), requires_grad=True)  # [B,N,L,H]
        mask = np.array([[1.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        counts = np.maximum(mask.sum(axis=1), 1.0)[:, None, None]
        pooled = (h * Tensor(mask[:, :, None, None])).sum(axis=1) * Tensor(1.0 / counts)
        pooled.sum().backward()
        # Each unmasked cell's grad = 1/count; masked cells get zero.
        np.testing.assert_allclose(h.grad[0, 0], 0.5)
        np.testing.assert_allclose(h.grad[0, 2], 0.0)
        np.testing.assert_allclose(h.grad[1, 0], 1.0)
        np.testing.assert_allclose(h.grad[1, 1], 0.0)


class TestResGenGradients:
    def test_gains_head_gradient_flows(self):
        from repro.core import small_config
        from repro.core.networks import ResGen

        rng = np.random.default_rng(4)
        config = small_config(hidden_size=8)
        resgen = ResGen(26, 2, config, rng)
        resgen.eval()  # dropout off for determinism
        env = Tensor(np.ones((3, 26)))
        recent = Tensor(rng.normal(size=(3, config.resgen_ar_window * 2)))
        residual, mu, log_sigma = resgen.sample(env, recent)
        (residual * residual).mean().backward()
        grads = [p.grad for _, p in resgen.named_parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)
