"""Edge cases and failure injection for the nn engine and serialization."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor, concat, stack


class TestNumericalRobustness:
    def test_softplus_extremes_finite(self):
        t = Tensor(np.array([-1e4, 0.0, 1e4]), requires_grad=True)
        out = t.softplus()
        assert np.all(np.isfinite(out.numpy()))
        out.sum().backward()
        assert np.all(np.isfinite(t.grad))

    def test_log_of_tiny_values(self):
        t = Tensor(np.array([1e-300]))
        assert np.isfinite(t.log().numpy()).all()

    def test_division_by_small_grad(self):
        t = Tensor(np.array([1e-8]), requires_grad=True)
        (1.0 / t).backward()
        assert np.isfinite(t.grad).all()

    def test_gaussian_nll_clips_log_sigma(self):
        mu = Tensor(np.zeros(4))
        log_sigma = Tensor(np.full(4, -100.0))  # would explode unclipped
        target = Tensor(np.ones(4))
        loss = nn.gaussian_nll(mu, log_sigma, target)
        assert np.isfinite(loss.item())

    def test_empty_gradient_accumulation_roundtrip(self):
        # Multiple backward passes accumulate into leaf grads.
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2.0).backward()
        (t * 3.0).backward()
        np.testing.assert_allclose(t.grad, [5.0])


class TestGraphMechanics:
    def test_no_grad_blocks_graph_inside_module(self):
        rng = np.random.default_rng(0)
        layer = nn.Linear(3, 2, rng)
        with nn.no_grad():
            out = layer(Tensor(np.ones((1, 3))))
        assert not out.requires_grad
        assert out._parents == ()

    def test_graph_released_after_backward(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        mid = t * 3.0
        out = mid * 4.0
        out.backward()
        # Intermediate nodes dropped their closures (memory hygiene).
        assert mid._backward is None
        assert out._parents == ()

    def test_shared_subexpression(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        shared = t * 2.0
        out = shared * shared  # d/dt (2t)^2 = 8t = 24
        out.backward()
        np.testing.assert_allclose(t.grad, [24.0])

    def test_concat_mixed_grad_flags(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 2)))  # constant
        out = concat([a, b], axis=1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)))
        assert b.grad is None

    def test_stack_single_element(self):
        a = Tensor(np.ones(3), requires_grad=True)
        out = stack([a], axis=0)
        assert out.shape == (1, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))


class TestOptimizerEdgeCases:
    def test_adam_bias_correction_first_step(self):
        # After one step from zero state, Adam moves by ~lr regardless of
        # gradient magnitude (scale invariance).
        for scale in (1e-3, 1.0, 1e3):
            w = nn.Parameter(np.zeros(1))
            opt = nn.Adam([w], lr=0.1)
            w.grad = np.array([scale])
            opt.step()
            assert w.data[0] == pytest.approx(-0.1, rel=1e-4)

    def test_clip_with_all_none_grads(self):
        w = nn.Parameter(np.zeros(2))
        opt = nn.SGD([w], lr=0.1)
        assert opt.clip_grad_norm(1.0) == 0.0


class TestSerializationEdgeCases:
    def test_meta_with_nested_structures(self, tmp_path):
        rng = np.random.default_rng(0)
        layer = nn.Linear(2, 2, rng)
        meta = {"kpis": ["rsrp", "rsrq"], "norm": {"mean": [1.0, 2.0]}, "n": 3}
        path = tmp_path / "m.npz"
        nn.save_module(layer, path, meta=meta)
        loaded = nn.load_module(layer, path)
        assert loaded == meta

    def test_creates_parent_directories(self, tmp_path):
        rng = np.random.default_rng(0)
        layer = nn.Linear(2, 2, rng)
        path = tmp_path / "deep" / "nested" / "m.npz"
        nn.save_module(layer, path)
        assert path.exists()

    def test_load_into_wrong_architecture_fails(self, tmp_path):
        rng = np.random.default_rng(0)
        src = nn.Linear(2, 2, rng)
        dst = nn.Linear(3, 2, rng)
        path = tmp_path / "m.npz"
        nn.save_module(src, path)
        with pytest.raises(ValueError):
            nn.load_module(dst, path)


class TestLSTMEdgeCases:
    def test_single_step_sequence(self):
        rng = np.random.default_rng(0)
        lstm = nn.LSTM(2, 4, rng)
        out, state = lstm(Tensor(np.ones((1, 1, 2))))
        assert out.shape == (1, 1, 4)

    def test_large_batch(self):
        rng = np.random.default_rng(0)
        lstm = nn.LSTM(2, 4, rng)
        out, _ = lstm(Tensor(np.ones((64, 3, 2))))
        assert out.shape == (64, 3, 4)

    def test_state_not_shared_between_calls(self):
        rng = np.random.default_rng(0)
        lstm = nn.LSTM(1, 3, rng)
        x = Tensor(np.ones((1, 4, 1)))
        out1, _ = lstm(x)
        out2, _ = lstm(x)
        np.testing.assert_allclose(out1.numpy(), out2.numpy())
