"""Shared fixtures.

Expensive objects (regions, datasets, trained models) are session-scoped so
the suite amortizes their construction across test modules.  Everything is
seeded; no test touches global random state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GenDT, small_config
from repro.datasets import (
    DriveTestDataset,
    make_dataset_a,
    make_dataset_b,
    split_per_scenario,
)
from repro.geo import CitySpec
from repro.radio import DriveTestSimulator
from repro.world import Region, build_region


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng() -> np.random.Generator:
    return np.random.default_rng(999)


@pytest.fixture(scope="session")
def small_region() -> Region:
    """One small city region shared by substrate tests."""
    rng = np.random.default_rng(42)
    city = CitySpec("testcity", 51.5, -0.1, half_extent_m=1200.0, street_spacing_m=300.0)
    return build_region([city], rng, city_site_density_per_km2=7.0)


@pytest.fixture(scope="session")
def two_city_region() -> Region:
    """Two cities joined by a highway (exercises highway code paths)."""
    rng = np.random.default_rng(43)
    cities = [
        CitySpec("west", 51.50, -0.10, half_extent_m=1000.0, street_spacing_m=300.0),
        CitySpec("east", 51.47, -0.02, half_extent_m=1000.0, street_spacing_m=300.0),
    ]
    return build_region(cities, rng, city_site_density_per_km2=6.0)


@pytest.fixture(scope="session")
def small_simulator(small_region) -> DriveTestSimulator:
    return DriveTestSimulator(small_region, candidate_range_m=2500.0)


@pytest.fixture(scope="session")
def tiny_dataset_a() -> DriveTestDataset:
    """A fast Dataset A (few hundred samples per scenario)."""
    return make_dataset_a(seed=7, samples_per_scenario=360, trajectories_per_scenario=3)


@pytest.fixture(scope="session")
def tiny_dataset_b() -> DriveTestDataset:
    return make_dataset_b(seed=11, samples_per_scenario=360, trajectories_per_scenario=3)


@pytest.fixture(scope="session")
def tiny_split(tiny_dataset_a):
    rng = np.random.default_rng(77)
    return split_per_scenario(tiny_dataset_a, 0.3, 200.0, rng)


@pytest.fixture(scope="session")
def trained_gendt(tiny_dataset_a, tiny_split) -> GenDT:
    """A tiny trained GenDT shared by model/uncertainty/use-case tests."""
    config = small_config(epochs=3, hidden_size=12, batch_len=20, train_step=10)
    model = GenDT(tiny_dataset_a.region, kpis=["rsrp", "rsrq"], config=config, seed=3)
    model.fit(tiny_split.train)
    return model


@pytest.fixture(scope="session")
def sample_trajectory(small_region):
    rng = np.random.default_rng(5)
    route = small_region.roads.random_walk_route(rng, 1500.0, city="testcity")
    return small_region.roads.route_to_trajectory(
        route, speed_mps=8.0, interval_s=1.0, scenario="test", rng=rng
    )


@pytest.fixture(scope="session")
def sample_record(small_simulator, sample_trajectory, session_rng):
    return small_simulator.simulate(sample_trajectory, np.random.default_rng(17), with_qoe=True)
