"""retry(): backoff semantics; validate: generation-boundary input checks."""

import numpy as np
import pytest

from repro.geo.trajectory import Trajectory
from repro.runtime import (
    ContextValidationError,
    backoff_schedule,
    retry,
    validate_route,
    validate_trajectory,
    validate_windows,
)


class TestRetry:
    def test_success_first_try_no_sleep(self):
        slept = []
        assert retry(lambda: 7, retries=3, sleep=slept.append) == 7
        assert slept == []

    def test_fails_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise RuntimeError("transient")
            return "ok"

        slept = []
        assert retry(flaky, retries=2, backoff=0.1, sleep=slept.append) == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2
        assert slept[1] > slept[0]  # exponential growth dominates jitter

    def test_budget_exhausted_reraises_last(self):
        def always_fails():
            raise KeyError("nope")

        with pytest.raises(KeyError):
            retry(always_fails, retries=2, sleep=None)

    def test_retry_on_filters_exception_types(self):
        def raises_type_error():
            raise TypeError("not retryable here")

        calls = {"n": 0}

        def counting():
            calls["n"] += 1
            raise TypeError("x")

        with pytest.raises(TypeError):
            retry(counting, retries=5, retry_on=(ValueError,), sleep=None)
        assert calls["n"] == 1  # no retries for a non-matching type

    def test_jitter_deterministic_per_seed(self):
        a = backoff_schedule(4, backoff=0.5, seed=13)
        b = backoff_schedule(4, backoff=0.5, seed=13)
        c = backoff_schedule(4, backoff=0.5, seed=14)
        assert a == b
        assert a != c
        # Exponential envelope with 25% jitter.
        for k, delay in enumerate(a):
            assert 0.75 * 0.5 * 2**k <= delay <= 1.25 * 0.5 * 2**k

    def test_on_retry_callback_sees_schedule(self):
        seen = []

        def fails():
            raise RuntimeError("x")

        with pytest.raises(RuntimeError):
            retry(
                fails, retries=2, backoff=1.0, jitter=0.0, sleep=None,
                on_retry=lambda attempt, exc, delay: seen.append((attempt, delay)),
            )
        assert seen == [(0, 1.0), (1, 2.0)]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            retry(lambda: 1, retries=-1)
        with pytest.raises(ValueError):
            retry(lambda: 1, backoff=-0.1)
        with pytest.raises(ValueError):
            retry(lambda: 1, jitter=1.5)


def _trajectory(t, lat, lon):
    traj = Trajectory.__new__(Trajectory)
    traj.t = np.asarray(t, dtype=float)
    traj.lat = np.asarray(lat, dtype=float)
    traj.lon = np.asarray(lon, dtype=float)
    traj.scenario = "test"
    return traj


class TestValidateTrajectory:
    def test_valid_passes(self):
        validate_trajectory(_trajectory([0, 1, 2], [51.5, 51.5, 51.5], [-0.1, -0.1, -0.1]))

    def test_empty_rejected(self):
        with pytest.raises(ContextValidationError) as excinfo:
            validate_trajectory(_trajectory([], [], []))
        assert excinfo.value.index == -1

    def test_nan_coordinate_reports_index(self):
        with pytest.raises(ContextValidationError) as excinfo:
            validate_trajectory(
                _trajectory([0, 1, 2], [51.5, np.nan, 51.5], [-0.1, -0.1, -0.1])
            )
        assert excinfo.value.index == 1

    def test_non_monotonic_timestamps_report_index(self):
        with pytest.raises(ContextValidationError) as excinfo:
            validate_trajectory(
                _trajectory([0, 2, 1], [51.5, 51.5, 51.5], [-0.1, -0.1, -0.1])
            )
        assert excinfo.value.index == 2

    def test_out_of_range_coordinates_rejected(self):
        with pytest.raises(ContextValidationError) as excinfo:
            validate_trajectory(
                _trajectory([0, 1], [51.5, 123.0], [-0.1, -0.1])
            )
        assert excinfo.value.index == 1

    def test_generation_boundary_rejects_bad_trajectory(self, trained_gendt):
        bad = _trajectory([0, 1, 2], [51.5, np.inf, 51.5], [-0.1, -0.1, -0.1])
        with pytest.raises(ContextValidationError):
            trained_gendt.generate(bad)


class TestValidateRoute:
    def test_empty_route_rejected(self):
        with pytest.raises(ContextValidationError):
            validate_route([])

    def test_nan_waypoint_reports_index(self):
        with pytest.raises(ContextValidationError) as excinfo:
            validate_route([(51.5, -0.1), (np.nan, -0.1)])
        assert excinfo.value.index == 1

    def test_valid_route_passes(self):
        validate_route([(51.5, -0.1), (51.6, -0.2)])


class TestValidateWindows:
    def test_zero_cell_window_tolerated_and_reported(self, trained_gendt, tiny_split):
        windows = trained_gendt.build_training_windows(tiny_split.train[:1])[:2]
        # Simulate a total coverage hole in window 1.
        hole = windows[1]
        hole.cell_features = hole.cell_features[:, :0, :]
        hole.cell_ids = []
        empty = validate_windows(windows)
        assert empty == [1]

    def test_nonfinite_env_features_fatal(self, trained_gendt, tiny_split):
        windows = trained_gendt.build_training_windows(tiny_split.train[:1])[:1]
        windows[0].env_features = windows[0].env_features.copy()
        windows[0].env_features[0, 0] = np.nan
        with pytest.raises(ContextValidationError) as excinfo:
            validate_windows(windows)
        assert excinfo.value.index == 0

    def test_zero_cell_generation_degrades_not_crashes(self, trained_gendt, tiny_split):
        """The documented fallback: an all-padding batch mean-pools to zeros
        and generation still returns finite values."""
        windows = trained_gendt.build_training_windows(tiny_split.train[:1])[:1]
        hole = windows[0]
        hole.cell_features = hole.cell_features[:, :0, :]
        hole.cell_ids = []
        batch = trained_gendt._assembler().assemble([hole], with_target=True)
        assert batch.cell_mask.sum() == 0
        out, _, _ = trained_gendt.generator.generate_batch(batch)
        assert np.all(np.isfinite(out))
